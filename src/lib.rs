//! Workspace facade for the SMAT (PLDI 2013) reproduction.
//!
//! This crate re-exports the public surface of every workspace crate so
//! the examples and cross-crate integration tests live at the repository
//! root, as laid out in `DESIGN.md`. Library users should depend on the
//! individual crates:
//!
//! * [`smat`] — the auto-tuner (train + runtime, unified CSR interface);
//! * [`smat_matrix`] — sparse formats, Matrix Market I/O, generators;
//! * [`smat_kernels`] — SpMV kernel library, scoreboard search, MKL-style
//!   reference baselines;
//! * [`smat_features`] — the 11 structural feature parameters;
//! * [`smat_learn`] — the C5.0-style decision tree / ruleset learner;
//! * [`smat_amg`] — the algebraic multigrid substrate.

pub use smat;
pub use smat_amg;
pub use smat_features;
pub use smat_kernels;
pub use smat_learn;
pub use smat_matrix;

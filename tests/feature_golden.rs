//! Golden-value tests for the 11 Table-2 feature parameters: every
//! value asserted here is computed by hand from the matrix definition,
//! so a regression in any extraction formula fails loudly instead of
//! shifting model behavior silently.

use smat_features::{
    extract_features, extract_structure, fit_power_law_of_degrees, ATTRIBUTE_NAMES,
    R_NOT_SCALE_FREE,
};
use smat_matrix::Csr;

/// 4 x 6, 7 nonzeros:
///
/// ```text
///   c0 c1 c2 c3 c4 c5
/// r0  x  x  .  .  .  .      degree 2
/// r1  .  x  .  .  .  .      degree 1
/// r2  .  .  x  .  x  x      degree 3
/// r3  .  .  .  x  .  .      degree 1
/// ```
///
/// Occupied diagonals (offset = c - r): 0 (4 entries), +1, +2, +3 (one
/// each).
fn wide_example() -> Csr<f64> {
    Csr::from_triplets(
        4,
        6,
        &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (2, 4, 5.0),
            (2, 5, 6.0),
            (3, 3, 7.0),
        ],
    )
    .unwrap()
}

#[test]
fn all_eleven_parameters_on_the_wide_example() {
    let f = extract_features(&wide_example());
    assert_eq!(f.m, 4.0); // M
    assert_eq!(f.n, 6.0); // N
    assert_eq!(f.nnz, 7.0); // NNZ
    assert_eq!(f.aver_rd, 7.0 / 4.0); // aver_RD
    assert_eq!(f.max_rd, 3.0); // max_RD
                               // var_RD: degrees {2,1,3,1}, mean 1.75:
                               // (0.25^2 + 0.75^2 + 1.25^2 + 0.75^2) / 4 = 2.75 / 4.
    assert_eq!(f.var_rd, 0.6875);
    assert_eq!(f.ndiags, 4.0); // Ndiags: offsets {0, +1, +2, +3}
                               // NTdiags_ratio: offset 0 is fully occupied (4 of length
                               // min(4, 6) = 4); offsets +1 (1/4), +2 (1/4) and +3 (1 of length
                               // min(4, 6-3) = 3) all fall below 90% occupancy.
    assert_eq!(f.ntdiags_ratio, 0.25);
    assert_eq!(f.er_dia, 7.0 / (4.0 * 4.0)); // ER_DIA = NNZ / (Ndiags * M)
    assert_eq!(f.er_ell, 7.0 / (3.0 * 4.0)); // ER_ELL = NNZ / (max_RD * M)
                                             // R: only 3 distinct degrees {1, 2, 3} — below the scale-free
                                             // minimum of 4, so the sentinel is returned.
    assert_eq!(f.r, R_NOT_SCALE_FREE);
}

#[test]
fn attribute_array_order_matches_table2() {
    let f = extract_features(&wide_example());
    let a = f.as_array();
    assert_eq!(ATTRIBUTE_NAMES.len(), 11);
    let expected: [(&str, f64); 11] = [
        ("M", 4.0),
        ("N", 6.0),
        ("NNZ", 7.0),
        ("aver_RD", 1.75),
        ("max_RD", 3.0),
        ("var_RD", 0.6875),
        ("Ndiags", 4.0),
        ("NTdiags_ratio", 0.25),
        ("ER_DIA", 7.0 / 16.0),
        ("ER_ELL", 7.0 / 12.0),
        ("R", R_NOT_SCALE_FREE),
    ];
    for (i, (name, value)) in expected.iter().enumerate() {
        assert_eq!(ATTRIBUTE_NAMES[i], *name, "attribute {i} name");
        assert_eq!(a[i], *value, "attribute {i} ({name}) value");
    }
}

#[test]
fn true_diagonal_threshold_is_exactly_ninety_percent() {
    // 10 x 10. Main diagonal: 9 of 10 entries — exactly 90%, counts as
    // true. Superdiagonal: 8 of 9 entries — 88.9%, does not.
    let mut t: Vec<(usize, usize, f64)> =
        (0..10).filter(|&r| r != 4).map(|r| (r, r, 1.0)).collect();
    t.extend((0..9).filter(|&r| r != 7).map(|r| (r, r + 1, 1.0)));
    let m = Csr::<f64>::from_triplets(10, 10, &t).unwrap();
    let f = extract_structure(&m).features;
    assert_eq!(f.ndiags, 2.0);
    assert_eq!(
        f.ntdiags_ratio, 0.5,
        "only the 90%-occupied diagonal is true"
    );
}

#[test]
fn exact_power_law_recovers_the_exponent() {
    // Degree histogram count(k) = 512 * k^-3 at k = 1, 2, 4, 8: the
    // log-log points are exactly collinear, so the weighted
    // least-squares fit must return R = 3 to machine precision.
    let degrees = [(1usize, 512usize), (2, 64), (4, 8), (8, 1)];
    let it = degrees
        .iter()
        .flat_map(|&(k, count)| std::iter::repeat_n(k, count));
    let r = fit_power_law_of_degrees(it);
    assert!((r - 3.0).abs() < 1e-12, "fitted R = {r}");

    // The same distribution built as an actual matrix (row i gets its
    // histogram degree, entries packed at the row start) extracts the
    // same R through the public two-step pipeline.
    let mut triplets = Vec::new();
    let mut row = 0usize;
    for &(k, count) in &degrees {
        for _ in 0..count {
            for c in 0..k {
                triplets.push((row, c, 1.0));
            }
            row += 1;
        }
    }
    let m = Csr::<f64>::from_triplets(row, 8, &triplets).unwrap();
    let f = extract_features(&m);
    assert!((f.r - 3.0).abs() < 1e-12, "matrix-extracted R = {}", f.r);
    assert_eq!(f.m, 585.0);
    assert_eq!(f.nnz, (512 + 2 * 64 + 4 * 8 + 8) as f64);
    assert_eq!(f.max_rd, 8.0);
}

#[test]
fn lazy_r_is_a_faithful_second_step() {
    // The two-step split (structure first, R on demand) must agree with
    // the one-shot extraction on every parameter.
    let m = wide_example();
    let s = extract_structure(&m);
    assert_eq!(s.row_degrees, vec![2, 1, 3, 1]);
    let full = extract_features(&m);
    let stepped = s.with_power_law();
    assert_eq!(full, stepped);
}

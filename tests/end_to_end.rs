//! End-to-end integration: the full off-line + on-line pipeline across
//! crates, as a downstream user would drive it.

use smat::{DecisionPath, Smat, SmatConfig, Trainer};
use smat_matrix::gen::{
    banded, fixed_degree, generate_corpus, power_law, random_uniform, CorpusSpec,
};
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{Csr, Format};

fn train_engine(seed: u64) -> Smat<f64> {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(160, seed));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    Smat::with_config(out.model, SmatConfig::fast()).expect("precision matches")
}

#[test]
fn trained_engine_is_correct_on_every_archetype() {
    let engine = train_engine(1);
    let cases: Vec<(&str, Csr<f64>)> = vec![
        ("banded", banded(3_000, &[-16, -1, 0, 1, 16], 1.0, 2)),
        ("uniform", fixed_degree(2_500, 2_500, 7, 0, 3)),
        ("random", random_uniform(2_500, 2_000, 9, 4)),
        ("powerlaw", power_law(3_000, 400, 2.0, 5)),
    ];
    for (name, m) in &cases {
        let tuned = engine.prepare(m);
        let x: Vec<f64> = (0..m.cols())
            .map(|i| ((i % 13) as f64) * 0.5 - 3.0)
            .collect();
        let mut y = vec![0.0; m.rows()];
        engine.spmv(&tuned, &x, &mut y).unwrap();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        assert!(
            max_abs_diff(&y, &expect) < 1e-9,
            "{name}: tuned result diverges (format {})",
            tuned.format()
        );
    }
}

#[test]
fn tuner_tracks_structure() {
    // The model is data-dependent, but gross structure must be
    // respected: a dense multiband matrix should never be stored as ELL
    // with huge padding, and a power-law graph should never end up DIA.
    let engine = train_engine(2);

    let diag_friendly = banded::<f64>(4_000, &[-2, -1, 0, 1, 2], 1.0, 7);
    let tuned = engine.prepare(&diag_friendly);
    // A *rule prediction* routing a dense multiband matrix to COO would
    // be pathological. The execute-and-measure fallback, however, is
    // entitled to pick whatever it actually measured fastest — in
    // unoptimized test builds COO occasionally wins by timing noise —
    // so COO is only rejected when measurement did not crown it.
    if tuned.format() == Format::Coo {
        match tuned.decision().source() {
            DecisionPath::Measured { candidates, .. } => {
                let coo = candidates
                    .iter()
                    .find(|&&(f, _)| f == Format::Coo)
                    .map(|&(_, g)| g)
                    .expect("chosen format must have been measured");
                assert!(
                    candidates.iter().all(|&(_, g)| g <= coo),
                    "COO chosen without winning the measurement: {candidates:?}"
                );
            }
            other => panic!("banded matrix routed to COO by {other:?}"),
        }
    }

    let graph = power_law::<f64>(4_000, 1_000, 1.8, 8);
    let tuned = engine.prepare(&graph);
    assert_ne!(
        tuned.format(),
        Format::Dia,
        "power-law graph as DIA is impossible (fill explosion)"
    );
    assert_ne!(
        tuned.format(),
        Format::Ell,
        "power-law graph as ELL would pad catastrophically"
    );
}

#[test]
fn decision_paths_report_what_happened() {
    let engine = train_engine(3);
    let suite = [
        banded::<f64>(2_000, &[-8, 0, 8], 1.0, 1),
        random_uniform::<f64>(2_000, 2_000, 6, 2),
    ];
    for m in &suite {
        let tuned = engine.prepare(m);
        // First sight of each structure: never a cache replay.
        assert!(!tuned.decision().is_cached());
        match tuned.decision().source() {
            DecisionPath::Predicted { confidence } => {
                assert!(*confidence >= engine.config().confidence_threshold);
            }
            DecisionPath::Measured { candidates, .. } => {
                assert!(!candidates.is_empty());
                // The chosen format must be among the measured ones.
                assert!(candidates.iter().any(|&(f, _)| f == tuned.format()));
            }
            DecisionPath::Degraded { reason } => {
                panic!("healthy input must not degrade: {reason}")
            }
            DecisionPath::Cached { .. } => unreachable!("source() unwraps Cached"),
        }
    }
}

#[test]
fn repeated_structure_is_served_from_the_cache() {
    let engine = train_engine(7);
    let a = banded::<f64>(2_000, &[-4, 0, 4], 1.0, 1);
    // Same sparsity pattern, different values.
    let mut b = a.clone();
    for v in b.values_mut() {
        *v *= -2.5;
    }

    let cold = engine.prepare(&a);
    assert!(!cold.decision().is_cached());
    let warm = engine.prepare(&b);
    assert!(
        warm.decision().is_cached(),
        "second prepare on the same structure must replay the cache"
    );
    // The replay reproduces the original decision and kernel...
    assert_eq!(warm.format(), cold.format());
    assert_eq!(warm.kernel(), cold.kernel());
    assert_eq!(warm.decision().source(), cold.decision().source());
    // ...but converts the *new* values.
    let x: Vec<f64> = (0..b.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut y = vec![0.0; b.rows()];
    engine.spmv(&warm, &x, &mut y).unwrap();
    let mut expect = vec![0.0; b.rows()];
    b.spmv(&x, &mut expect).unwrap();
    assert!(max_abs_diff(&y, &expect) < 1e-9);

    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.entries, 1);

    // Clearing the cache forces a fresh tuning pass.
    engine.clear_cache();
    assert!(!engine.prepare(&a).decision().is_cached());
}

#[test]
fn engine_is_shareable_across_threads() {
    // Compile-time Send + Sync assertion plus a live concurrent run.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Smat<f64>>();
    assert_send_sync::<Smat<f32>>();

    let engine = std::sync::Arc::new(train_engine(8));
    let m = std::sync::Arc::new(random_uniform::<f64>(1_500, 1_500, 6, 3));
    let mut expect = vec![0.0; m.rows()];
    let x: Vec<f64> = (0..m.cols()).map(|i| (i % 5) as f64).collect();
    m.spmv(&x, &mut expect).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let engine = engine.clone();
            let m = m.clone();
            let x = x.clone();
            let expect = expect.clone();
            std::thread::spawn(move || {
                let tuned = engine.prepare(&m);
                let mut y = vec![0.0; m.rows()];
                engine.spmv(&tuned, &x, &mut y).unwrap();
                assert!(max_abs_diff(&y, &expect) < 1e-9);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 4);
    assert!(stats.misses >= 1);
    assert_eq!(stats.entries, 1, "all threads share one structure");
}

#[test]
fn single_and_double_precision_models_coexist() {
    let corpus32 = generate_corpus::<f32>(&CorpusSpec::small(80, 4));
    let m32: Vec<&Csr<f32>> = corpus32.iter().map(|e| &e.matrix).collect();
    let out32 = Trainer::new(SmatConfig::fast()).train(&m32).unwrap();
    assert_eq!(out32.model.precision, "single");
    let engine32 = Smat::<f32>::with_config(out32.model.clone(), SmatConfig::fast()).unwrap();

    // A single-precision model must not bind to a double engine.
    assert!(Smat::<f64>::new(out32.model).is_err());

    let m = fixed_degree::<f32>(1_000, 1_000, 5, 0, 9);
    let tuned = engine32.prepare(&m);
    let x = vec![1.0f32; 1_000];
    let mut y = vec![0.0f32; 1_000];
    engine32.spmv(&tuned, &x, &mut y).unwrap();
    assert!(y.iter().all(|v| v.is_finite()));
}

#[test]
fn hyb_extension_participates_end_to_end() {
    use smat_matrix::gen::random_skewed;
    use smat_matrix::{AnyMatrix, Hyb};

    // The extension format is a first-class citizen: conversion,
    // kernels, exhaustive labeling and engine execution all include it.
    let engine = train_engine(6);
    let m = random_skewed::<f64>(3_000, 3_000, 6, 0.05, 14, 11);

    // Exhaustive measurement covers HYB.
    let (_, perf) = smat::label_best_format(
        engine.library(),
        &engine.model().kernel_choice,
        &m,
        std::time::Duration::from_micros(300),
    );
    assert!(perf[Format::Hyb.index()] > 0.0, "HYB must be measurable");

    // The engine can execute a HYB-stored matrix correctly through every
    // registered variant.
    let any = AnyMatrix::Hyb(Hyb::from_csr(&m));
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).unwrap();
    for v in 0..engine.library().variant_count(Format::Hyb) {
        let mut y = vec![f64::NAN; m.rows()];
        engine.library().run(&any, v, &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-9, "HYB variant {v} diverges");
    }

    // Whatever the tuner picks on a skewed matrix, the product is right.
    let tuned = engine.prepare(&m);
    let mut y = vec![0.0; m.rows()];
    engine.spmv(&tuned, &x, &mut y).unwrap();
    assert!(max_abs_diff(&y, &expect) < 1e-9);
}

#[test]
fn kernel_choice_survives_training() {
    let engine = train_engine(5);
    let lib = engine.library();
    for f in Format::ALL {
        let v = engine.model().kernel_choice.kernel(f).variant;
        assert!(v < lib.variant_count(f), "{f} kernel out of range");
    }
    // The library advertises the paper-scale variant count.
    assert!(lib.total_variants() >= 16);
}

//! Fault-injection suite: every failure mode the tuning pipeline is
//! supposed to absorb, injected deliberately. The common contract under
//! test is *graceful degradation* — a poisoned input, a sabotaged
//! kernel, a tripped resource budget, or a corrupt artifact must yield
//! a usable (possibly untuned) SpMV or a clean error, never a panic or
//! a silently wrong tuned result.

use smat::{DecisionPath, Installation, Smat, SmatConfig, SmatError, Trainer};
use smat_kernels::{KernelLibrary, StrategySet};
use smat_matrix::gen::{generate_corpus, random_uniform, tridiagonal, CorpusSpec};
use smat_matrix::io::read_matrix_market;
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{Csr, Format, MatrixError};

fn train_engine_with(seed: u64, config: SmatConfig) -> Smat<f64> {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, seed));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    Smat::with_config(out.model, config).expect("precision matches")
}

/// Degraded SpMV must equal the reference CSR result bit-for-bit (the
/// degraded path IS the reference kernel).
fn assert_usable(engine: &Smat<f64>, tuned: &smat::TunedSpmv<f64>, m: &Csr<f64>) {
    let x: Vec<f64> = (0..m.cols())
        .map(|i| 0.25 * ((i % 7) as f64) - 1.0)
        .collect();
    let mut y = vec![0.0; m.rows()];
    engine.spmv(tuned, &x, &mut y).expect("degraded SpMV runs");
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    assert!(
        max_abs_diff(&y, &expect) < 1e-12,
        "degraded result diverges from reference"
    );
}

#[test]
fn nan_matrix_degrades_to_usable_reference_spmv() {
    let engine = train_engine_with(1, SmatConfig::fast());
    let mut m = tridiagonal::<f64>(400);
    m.values_mut()[11] = f64::NAN;
    let tuned = engine.prepare(&m);
    assert!(tuned.decision().is_degraded());
    assert_eq!(tuned.format(), Format::Csr);
    // Still runs end to end (NaN propagates arithmetically, no panic).
    let x = vec![1.0; 400];
    let mut y = vec![0.0; 400];
    engine.spmv(&tuned, &x, &mut y).unwrap();
    assert!(
        y.iter().any(|v| v.is_nan()),
        "poison must propagate, not vanish"
    );
}

#[test]
fn inf_matrix_degrades_and_reports_the_location() {
    let engine = train_engine_with(2, SmatConfig::fast());
    let mut m = random_uniform::<f64>(200, 200, 5, 3);
    m.values_mut()[0] = f64::NEG_INFINITY;
    let tuned = engine.prepare(&m);
    match tuned.decision() {
        DecisionPath::Degraded { reason } => {
            assert!(reason.contains("non-finite"), "reason: {reason}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
}

#[test]
fn panicking_registered_kernel_prunes_the_candidate() {
    // Sabotage COO: the fallback then selects among the survivors.
    fn bad_coo(_: &smat_matrix::Coo<f64>, _: &[f64], _: &mut [f64]) {
        panic!("injected COO fault");
    }
    let bad_variant = KernelLibrary::<f64>::new().variant_count(Format::Coo);
    let cfg = SmatConfig {
        confidence_threshold: 1.1, // force execute-and-measure
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(3, cfg);
    let mut model = engine.model().clone();
    model.kernel_choice.set(Format::Coo, bad_variant);
    let mut engine =
        Smat::<f64>::with_config(model, engine.config().clone()).expect("precision matches");
    engine
        .library_mut()
        .register_coo("coo_injected_fault", StrategySet::default(), bad_coo);
    let m = random_uniform::<f64>(300, 300, 6, 5);
    let tuned = engine.prepare(&m);
    match tuned.decision() {
        DecisionPath::Measured {
            candidates,
            failures,
        } => {
            assert!(
                candidates.iter().all(|&(f, _)| f != Format::Coo),
                "a panicking candidate must never be selectable"
            );
            assert!(
                failures
                    .iter()
                    .any(|(f, why)| *f == Format::Coo && why.contains("panicked")),
                "failures: {failures:?}"
            );
        }
        other => panic!("expected Measured with COO pruned, got {other:?}"),
    }
    assert_usable(&engine, &tuned, &m);
}

#[test]
fn all_candidates_panicking_degrades_not_aborts() {
    fn bad_csr(_: &Csr<f64>, _: &[f64], _: &mut [f64]) {
        panic!("injected CSR fault");
    }
    let bad_variant = KernelLibrary::<f64>::new().variant_count(Format::Csr);
    let cfg = SmatConfig {
        confidence_threshold: 1.1,
        fallback_formats: vec![Format::Csr], // single candidate, sabotaged
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(4, cfg);
    let mut model = engine.model().clone();
    model.kernel_choice.set(Format::Csr, bad_variant);
    let mut engine =
        Smat::<f64>::with_config(model, engine.config().clone()).expect("precision matches");
    engine
        .library_mut()
        .register_csr("csr_injected_fault", StrategySet::default(), bad_csr);
    let m = random_uniform::<f64>(250, 250, 5, 7);
    let tuned = engine.prepare(&m);
    assert!(tuned.decision().is_degraded());
    assert_usable(&engine, &tuned, &m);
}

#[test]
fn one_dense_row_trips_the_ell_budget_and_is_pruned() {
    // One dense row makes ELL's slab rows × max_RD: for n = 512 that is
    // 512 × 512 slots. A 64 KiB budget refuses it up front.
    let n = 512;
    let mut triplets: Vec<(usize, usize, f64)> = (0..n).map(|c| (0, c, 1.0)).collect();
    triplets.extend((1..n).map(|r| (r, r, 2.0)));
    let m = Csr::<f64>::from_triplets(n, n, &triplets).unwrap();
    let cfg = SmatConfig {
        confidence_threshold: 1.1,
        conversion_budget_bytes: Some(64 * 1024),
        fallback_formats: vec![Format::Csr, Format::Coo, Format::Ell],
        ell_fill_limit: usize::MAX, // isolate the byte budget from the fill cap
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(5, cfg);
    let tuned = engine.prepare(&m);
    match tuned.decision() {
        DecisionPath::Measured {
            candidates,
            failures,
        } => {
            assert!(candidates.iter().any(|&(f, _)| f == Format::Csr));
            assert!(
                failures
                    .iter()
                    .any(|(f, why)| *f == Format::Ell && why.contains("budget")),
                "failures: {failures:?}"
            );
        }
        other => panic!("expected Measured with ELL pruned, got {other:?}"),
    }
    assert_ne!(tuned.format(), Format::Ell);
    assert_usable(&engine, &tuned, &m);
}

#[test]
fn truncated_and_garbage_mtx_files_error_cleanly() {
    // Garbage header.
    let err = read_matrix_market::<f64, _>("not a matrix market file".as_bytes()).unwrap_err();
    assert!(matches!(err, MatrixError::Parse { .. }), "got {err:?}");
    // Truncated entry list: header promises 3 entries, file holds 1.
    let truncated = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n";
    let err = read_matrix_market::<f64, _>(truncated.as_bytes()).unwrap_err();
    assert!(matches!(err, MatrixError::Parse { .. }), "got {err:?}");
    // Garbage numeric payload.
    let garbage = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 banana\n";
    let err = read_matrix_market::<f64, _>(garbage.as_bytes()).unwrap_err();
    assert!(matches!(err, MatrixError::Parse { .. }), "got {err:?}");
}

#[test]
fn corrupt_install_artifact_is_rejected_then_regenerated() {
    let dir = std::env::temp_dir().join("smat_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("install_corrupt.json");
    std::fs::remove_file(&path).ok();

    let cfg = SmatConfig::fast();
    let install = Installation::run::<f64>(&cfg);
    install.save(&path).unwrap();
    assert!(Installation::load(&path).is_ok());

    // Bit-flip inside the payload (keeping the JSON parsable): nudge the
    // recorded probe dimension by one digit.
    let text = std::fs::read_to_string(&path).unwrap();
    let idx = text
        .find("\"probe_dim\"")
        .expect("payload carries probe_dim");
    let digit = text[idx..]
        .find(|c: char| c.is_ascii_digit())
        .map(|off| idx + off)
        .expect("a digit follows");
    let mut bytes = text.clone().into_bytes();
    bytes[digit] = if bytes[digit] == b'9' {
        b'1'
    } else {
        bytes[digit] + 1
    };
    let tampered = String::from_utf8(bytes).unwrap();
    assert_ne!(text, tampered);
    std::fs::write(&path, &tampered).unwrap();

    let err = Installation::load(&path).unwrap_err();
    assert!(matches!(err, SmatError::Corrupt { .. }), "got {err:?}");
    assert!(err.to_string().contains("checksum"), "got: {err}");

    // An engine pointed at the corrupt artifact regenerates it and
    // still prepares matrices normally.
    let engine_cfg = SmatConfig {
        install_path: Some(path.clone()),
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(6, engine_cfg);
    assert!(
        !engine.installation_from_disk(),
        "corrupt artifact must not be adopted"
    );
    let m = tridiagonal::<f64>(300);
    let tuned = engine.prepare(&m);
    assert!(!tuned.decision().is_degraded());
    assert_usable(&engine, &tuned, &m);
    // The regenerated file verifies again.
    assert!(Installation::load(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_install_artifact_regenerates() {
    let dir = std::env::temp_dir().join("smat_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("install_truncated.json");
    std::fs::remove_file(&path).ok();
    Installation::run::<f64>(&SmatConfig::fast())
        .save(&path)
        .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(Installation::load(&path).is_err());
    let (fresh, from_disk) = Installation::load_or_run::<f64>(&path, &SmatConfig::fast()).unwrap();
    assert!(!from_disk);
    assert_eq!(fresh.precision, "double");
    assert!(Installation::load(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn degraded_decisions_never_poison_the_cache() {
    let engine = train_engine_with(7, SmatConfig::fast());
    let mut poisoned = tridiagonal::<f64>(350);
    poisoned.values_mut()[5] = f64::INFINITY;
    let healthy = tridiagonal::<f64>(350); // same structure, clean values
    assert!(engine.prepare(&poisoned).decision().is_degraded());
    let tuned = engine.prepare(&healthy);
    assert!(
        !tuned.decision().is_cached(),
        "a degraded decision must not be replayed"
    );
    assert!(!tuned.decision().is_degraded());
    // And the healthy decision does get cached for the next call.
    assert!(engine.prepare(&healthy).decision().is_cached());
}

//! Bitwise differential suite for the batched multi-RHS (SpMM) tier:
//! `spmm` at batch width `k` must equal `k` independent serial SpMV
//! calls *bit for bit* on exactly-representable (dyadic) inputs, for
//! every registered SpMM variant of every format, planned and
//! unplanned, in both precisions.
//!
//! The register-tiled inner loops sum each row's products per RHS
//! column in the same left-to-right order as the basic SpMV kernel, so
//! on dyadic rationals — where every partial sum is exact — any
//! reassociation, FMA contraction, or tile/tail mix-up would show up
//! as a bitwise divergence. The sweep pins the interesting widths:
//! `k = 1` (degenerate batch), the tile widths themselves (2, 4, 8),
//! and tails where `k % tile != 0` (3, 5, 7, 9).

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use smat_kernels::{KernelId, KernelLibrary, Op};
use smat_matrix::gen::{banded, block_sparse, fixed_degree, power_law, random_uniform};
use smat_matrix::{AnyMatrix, Csr, Format, Scalar};

/// Quantizes values to multiples of 0.25 (see `plan_differential.rs`):
/// with a dyadic `x`, every product and partial sum is exactly
/// representable in both precisions, making `==` the right comparison.
fn dyadic<T: Scalar>(mut m: Csr<T>) -> Csr<T> {
    for v in m.values_mut() {
        let q = (v.to_f64() * 4.0).round().clamp(-32.0, 32.0) / 4.0;
        *v = T::from_f64(if q == 0.0 { 0.25 } else { q });
    }
    m
}

/// A row-major dyadic RHS block: element (c, j) at `c * k + j`, varying
/// in both the column index and the RHS index so a kernel that swapped
/// or duplicated RHS lanes cannot pass by accident.
fn dyadic_block<T: Scalar>(cols: usize, k: usize) -> Vec<T> {
    (0..cols * k)
        .map(|i| {
            let (c, j) = (i / k, i % k);
            T::from_f64(((c % 9) as f64 - 4.0) * 0.5 + (j as f64) * 0.25)
        })
        .collect()
}

/// `k` independent serial reference SpMV calls, gathered back into the
/// row-major block layout — the arbiter every tiled variant must match.
fn per_column_reference<T: Scalar>(m: &Csr<T>, x: &[T], k: usize) -> Vec<T> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut out = vec![T::from_f64(f64::NAN); rows * k];
    let mut xj = vec![T::ZERO; cols];
    let mut yj = vec![T::from_f64(f64::NAN); rows];
    for j in 0..k {
        for c in 0..cols {
            xj[c] = x[c * k + j];
        }
        smat_kernels::reference::csrgemv_seq(m, &xj, &mut yj);
        for r in 0..rows {
            out[r * k + j] = yj[r];
        }
    }
    out
}

/// Shapes that stress the batched tier: empty rows (the tile loop must
/// still zero all k outputs), single-row / single-column degenerates,
/// nnz tails that break the unrolled inner loops, block formats, and a
/// completely empty matrix.
fn shapes<T: Scalar>() -> Vec<(&'static str, Csr<T>)> {
    vec![
        ("banded", dyadic(banded(120, &[-5, -1, 0, 1, 5], 0.9, 51))),
        ("fixed_degree", dyadic(fixed_degree(96, 90, 5, 1, 52))),
        ("tail_3", dyadic(fixed_degree(64, 64, 3, 0, 53))),
        ("tail_7", dyadic(fixed_degree(64, 64, 7, 0, 54))),
        ("random", dyadic(random_uniform(130, 130, 6, 55))),
        ("power_law", dyadic(power_law(150, 40, 2.0, 56))),
        ("block2", dyadic(block_sparse(96, 2, 6, 57))),
        ("block4", dyadic(block_sparse(96, 4, 3, 58))),
        ("one_by_n", dyadic(fixed_degree(1, 300, 11, 0, 59))),
        (
            "n_by_one",
            dyadic(
                Csr::from_triplets(
                    300,
                    1,
                    &[
                        (0, 0, T::from_f64(1.0)),
                        (7, 0, T::from_f64(1.0)),
                        (299, 0, T::from_f64(1.0)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
        (
            "empty_rows",
            dyadic(
                Csr::from_triplets(
                    50,
                    50,
                    &[
                        (0, 3, T::from_f64(1.0)),
                        (10, 10, T::from_f64(2.0)),
                        (10, 40, T::from_f64(1.5)),
                        (49, 0, T::from_f64(0.5)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
        ("empty", Csr::from_triplets(8, 8, &[]).expect("empty")),
    ]
}

/// Every SpMM variant of every format, at every interesting width,
/// planned and unplanned, bitwise against k independent SpMV calls.
fn sweep_spmm_equals_k_spmv<T: Scalar>() {
    let lib = KernelLibrary::<T>::new();
    let mut tiled_checked = 0usize;
    for (name, m) in shapes::<T>() {
        for format in Format::ALL {
            if lib.spmm_variant_count(format) == 0 {
                continue; // COO/DIA/HYB: the runtime serves these per-column
            }
            let Ok(any) = AnyMatrix::convert_from_csr_with(
                &m,
                format,
                &smat_matrix::ConversionLimits::unlimited(),
            ) else {
                continue;
            };
            for k in [1usize, 2, 3, 4, 5, 7, 8, 9] {
                let x = dyadic_block::<T>(m.cols(), k);
                let expect = per_column_reference(&m, &x, k);
                for (v, info) in lib.spmm_variants(format).into_iter().enumerate() {
                    // NaN canary: every output element must be written,
                    // including all k lanes of empty rows.
                    let mut y = vec![T::from_f64(f64::NAN); m.rows() * k];
                    lib.run_spmm(&any, v, &x, &mut y, k);
                    assert!(
                        y == expect,
                        "{name}: {} at k={k} not bitwise-equal to k x spmv",
                        info.name
                    );
                    let plan = lib.plan_for(
                        &any,
                        KernelId {
                            op: Op::Spmm,
                            format,
                            variant: v,
                        },
                    );
                    let mut planned = vec![T::from_f64(f64::NAN); m.rows() * k];
                    lib.run_spmm_planned(&any, v, &plan, &x, &mut planned, k);
                    assert!(
                        planned == expect,
                        "{name}: {} planned at k={k} diverges from k x spmv",
                        info.name
                    );
                    tiled_checked += 1;
                }
            }
        }
    }
    assert!(
        tiled_checked >= 500,
        "the sweep must cover the whole SpMM tier, got {tiled_checked}"
    );
}

#[test]
fn spmm_equals_k_independent_spmv_bitwise_f64() {
    sweep_spmm_equals_k_spmv::<f64>();
}

#[test]
fn spmm_equals_k_independent_spmv_bitwise_f32() {
    sweep_spmm_equals_k_spmv::<f32>();
}

/// The AVX2 SpMM backend must be bit-identical to the portable
/// register-tiled fallback on *arbitrary* values — the same
/// reduction-order contract as SpMV's SIMD tier (mul+add, no FMA,
/// identical tile and tail order). Without AVX2 both paths coincide
/// and the guarantee is a tautology, which is exactly what callers get.
#[test]
fn spmm_simd_backend_is_bit_identical_to_portable() {
    use smat_kernels::{simd, SimdBackend, Strategy};
    let lib = KernelLibrary::<f64>::new();
    let m = random_uniform::<f64>(200, 180, 7, 60);
    let any = AnyMatrix::Csr(m.clone());
    for k in [1usize, 3, 4, 8, 9] {
        let x: Vec<f64> = (0..m.cols() * k)
            .map(|i| (i as f64 * 0.7312).sin() * 3.0)
            .collect();
        for (v, info) in lib.spmm_variants(Format::Csr).into_iter().enumerate() {
            if !info.strategies.contains(Strategy::Simd) {
                continue;
            }
            simd::set_backend(SimdBackend::Portable);
            let mut portable = vec![f64::NAN; m.rows() * k];
            lib.run_spmm(&any, v, &x, &mut portable, k);
            simd::set_backend(SimdBackend::Auto);
            let mut auto = vec![f64::NAN; m.rows() * k];
            lib.run_spmm(&any, v, &x, &mut auto, k);
            assert!(
                auto == portable,
                "{} at k={k} diverges between AVX2 and portable (active: {})",
                info.name,
                simd::active_backend()
            );
        }
    }
}

/// Strategy: an arbitrary small sparse matrix (same shape distribution
/// as `plan_differential.rs`, so proptest hunts the same degenerate
/// corners: empty rows, 1xN, Nx1, tails).
fn arb_matrix() -> impl PropStrategy<Value = Csr<f64>> {
    (1usize..36, 1usize..36).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -90i32..90).prop_map(|(r, c, v)| (r, c, v as f64 / 11.0));
        proptest::collection::vec(entry, 0..100).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary dyadic matrices and arbitrary widths: every SpMM
    /// variant stays bitwise equal to k independent reference SpMV
    /// calls, planned and unplanned.
    #[test]
    fn spmm_matches_k_spmv_on_arbitrary_matrices(m in arb_matrix(), k in 1usize..10) {
        let lib = KernelLibrary::<f64>::new();
        let m = dyadic(m);
        let x = dyadic_block::<f64>(m.cols(), k);
        let expect = per_column_reference(&m, &x, k);
        for format in Format::ALL {
            if lib.spmm_variant_count(format) == 0 {
                continue;
            }
            let Ok(any) = AnyMatrix::convert_from_csr_with(
                &m,
                format,
                &smat_matrix::ConversionLimits::unlimited(),
            ) else { continue };
            for v in 0..lib.spmm_variant_count(format) {
                let mut y = vec![f64::NAN; m.rows() * k];
                lib.run_spmm(&any, v, &x, &mut y, k);
                prop_assert!(
                    y == expect,
                    "{format} spmm variant {v} diverges at k={k} on {}x{} nnz={}",
                    m.rows(), m.cols(), m.nnz()
                );
                let plan = lib.plan_for(&any, KernelId { op: Op::Spmm, format, variant: v });
                let mut planned = vec![f64::NAN; m.rows() * k];
                lib.run_spmm_planned(&any, v, &plan, &x, &mut planned, k);
                prop_assert!(
                    planned == expect,
                    "{format} spmm variant {v} planned diverges at k={k}"
                );
            }
        }
    }
}

//! Chaos suite for the tuning service: scripted `service.*` (and
//! tuning-path) failpoints while real clients hammer a live server
//! over TCP. The contract mirrors the workspace-wide one — graceful
//! degradation, never a wedged thread, never a silently wrong result —
//! plus the serving-layer acceptance criteria: a 16-client stampede on
//! one structural fingerprint performs exactly one tuning run, queue
//! depth stays bounded, and every request is answered with Ok, a
//! shed/retry-after, or a correct degraded product.
//!
//! Requires `--features failpoints`; without it the binary compiles to
//! nothing, as the production build carries only inert no-op sites.
#![cfg(feature = "failpoints")]

use serde::Value;
use smat::{Smat, SmatConfig, TrainedModel, Trainer};
use smat_matrix::gen::{generate_corpus, random_uniform, CorpusSpec};
use smat_matrix::Csr;
use smat_service::server::DrainSummary;
use smat_service::{ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// The failpoint registry is process-global; tests scripting sites
/// must not overlap in time.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn exclusive_failpoints() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner);
    smat_failpoints::reset();
    guard
}

fn model() -> &'static TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 0x5EC1));
        let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
        Trainer::new(SmatConfig::fast())
            .train(&matrices)
            .expect("training succeeds")
            .model
    })
}

fn engine() -> Arc<Smat<f64>> {
    let mut config = SmatConfig::default();
    // Followers must outlast a failpoint-stretched leader so the
    // stampede coalesces instead of timing out into degradation.
    config.single_flight_wait = Duration::from_secs(60);
    // An impossible confidence bar forces every tuning run through the
    // execute-and-measure fallback, whose measurements pass the
    // `search.measure` failpoint — the lever the stampede test uses to
    // stretch the leader's run. The predicted path measures nothing,
    // so in release it can publish before any follower even starts.
    config.confidence_threshold = 1.1;
    Arc::new(Smat::with_config(model().clone(), config).expect("engine builds"))
}

struct Running {
    addr: SocketAddr,
    handle: ServerHandle,
    join: thread::JoinHandle<DrainSummary>,
}

fn start(config: ServeConfig) -> Running {
    let server = Server::bind_tcp("127.0.0.1:0", engine(), config).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("run"));
    Running { addr, handle, join }
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(10),
        frame_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

fn request(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("read response");
    assert!(n > 0, "server closed the connection unexpectedly");
    serde_json::parse(&reply).expect("response is JSON")
}

/// Like [`request`], but tolerates the server dropping the connection
/// without a reply (injected transport faults).
fn request_allowing_close(addr: SocketAddr, line: &str) -> Option<Value> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    match reader.read_line(&mut reply) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(serde_json::parse(&reply).expect("response is JSON")),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, val)| val))
        .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
}

fn status_of(v: &Value) -> &str {
    match field(v, "status") {
        Value::Str(s) => s.as_str(),
        other => panic!("status is not a string: {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("not a u64: {other:?}"),
    }
}

fn floats(v: &Value) -> Vec<f64> {
    v.as_array()
        .expect("array")
        .iter()
        .map(|item| match item {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            other => panic!("not a number: {other:?}"),
        })
        .collect()
}

fn matrix_fixture(dim: usize, seed: u64) -> (String, Vec<f64>, Vec<f64>) {
    let m = random_uniform::<f64>(dim, dim, 6, seed);
    let x: Vec<f64> = (0..dim).map(|i| 0.5 * ((i % 5) as f64) - 1.0).collect();
    let mut y = vec![0.0; dim];
    m.spmv(&x, &mut y).expect("reference SpMV");
    let entries: Vec<String> = m
        .iter()
        .map(|(r, c, v)| format!("[{r},{c},{v:?}]"))
        .collect();
    let json = format!(
        "{{\"rows\":{dim},\"cols\":{dim},\"entries\":[{}]}}",
        entries.join(",")
    );
    let items: Vec<String> = x.iter().map(|v| format!("{v:?}")).collect();
    let frame = format!(
        "{{\"op\":\"spmv\",\"matrix\":{json},\"x\":[{}]}}",
        items.join(",")
    );
    (frame, x, y)
}

fn shutdown_and_join(running: Running) -> DrainSummary {
    let resp = request(running.addr, "{\"op\":\"shutdown\"}");
    assert_eq!(status_of(&resp), "ok");
    running.join.join().expect("server thread")
}

/// Acceptance: 16 clients stampede one structural fingerprint while a
/// scripted delay stretches every tuning measurement. Exactly one
/// tuning run happens (the rest coalesce through single-flight or hit
/// the cache), queue depth stays within its bound, and every request
/// is answered with an ok, a correct degraded product, a
/// shed/retry-after, or a deadline miss — nothing hangs, nothing is
/// dropped.
#[test]
fn stampede_on_one_fingerprint_tunes_once_and_answers_everyone() {
    let _guard = exclusive_failpoints();
    const CLIENTS: usize = 16;
    // Every measured repetition sleeps, so the leader's fallback run
    // (forced by the impossible confidence bar in `engine()`) is long
    // enough for the whole stampede to pile up behind it.
    let _fp = smat_failpoints::scoped("search.measure", "delay(10)").unwrap();
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 4,
        degrade_watermark: 4,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, expect) = matrix_fixture(140, 21);
    // A generous explicit deadline: the stretched tuning run must never
    // race the default budget, or the leader's Ok would turn into a
    // nondeterministic deadline miss.
    let frame = format!(
        "{},\"deadline_ms\":20000}}",
        frame.strip_suffix('}').expect("frame ends with a brace")
    );
    let frame = Arc::new(frame);
    let expect = Arc::new(expect);
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = running.addr;
            let frame = Arc::clone(&frame);
            let expect = Arc::clone(&expect);
            thread::spawn(move || {
                let resp = request(addr, &frame);
                let status = status_of(&resp).to_string();
                match status.as_str() {
                    "ok" | "degraded" => {
                        // Tuned or degraded, the product must be right.
                        let y = floats(field(&resp, "y"));
                        for (i, (got, want)) in y.iter().zip(expect.iter()).enumerate() {
                            assert!(
                                (got - want).abs() < 1e-9,
                                "y[{i}] = {got}, reference {want}"
                            );
                        }
                    }
                    "shed" => {
                        assert!(as_u64(field(&resp, "retry_after_ms")) > 0);
                    }
                    "deadline_miss" => {}
                    other => panic!("unexpected status {other} in {resp:?}"),
                }
                status
            })
        })
        .collect();
    let statuses: Vec<String> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread answered"))
        .collect();
    assert_eq!(
        statuses.len(),
        CLIENTS,
        "every request got exactly one answer"
    );
    assert!(
        statuses.iter().any(|s| s == "ok"),
        "at least the leader is served a tuned result: {statuses:?}"
    );

    let metrics = request(running.addr, "{\"op\":\"metrics\"}");
    let service = field(&metrics, "service");
    let engine = field(&metrics, "engine");
    assert_eq!(as_u64(field(service, "requests_total")), CLIENTS as u64);
    let outcomes = as_u64(field(service, "requests_ok"))
        + as_u64(field(service, "requests_degraded"))
        + as_u64(field(service, "requests_shed"))
        + as_u64(field(service, "deadline_misses"))
        + as_u64(field(service, "requests_handle_miss"))
        + as_u64(field(service, "requests_error"));
    assert_eq!(
        outcomes, CLIENTS as u64,
        "every request counted exactly once"
    );
    assert_eq!(
        as_u64(field(engine, "cache_misses")),
        1,
        "one fingerprint, one tuning run"
    );
    assert!(
        as_u64(field(engine, "coalesced_waits")) >= 1,
        "concurrent workers coalesced onto the in-flight run"
    );
    let capacity = as_u64(field(service, "queue_capacity"));
    assert!(
        as_u64(field(service, "queue_high_watermark")) <= capacity,
        "queue depth bounded by its capacity"
    );
    assert_eq!(as_u64(field(service, "queue_depth")), 0, "quiesced");

    let summary = shutdown_and_join(running);
    assert_eq!(summary.requests_total, CLIENTS as u64);
}

/// Scripted worker faults become error *responses*; the worker thread
/// survives and the next request succeeds.
#[test]
fn injected_worker_faults_answer_errors_and_recover() {
    let _guard = exclusive_failpoints();
    let _fp =
        smat_failpoints::scoped("service.worker", "2*fail(injected worker fault)->off").unwrap();
    let config = ServeConfig {
        workers: 1,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, _) = matrix_fixture(90, 22);
    let first = request(running.addr, &frame);
    assert_eq!(status_of(&first), "error");
    let second = request(running.addr, &frame);
    assert_eq!(status_of(&second), "error");
    let third = request(running.addr, &frame);
    assert!(matches!(status_of(&third), "ok" | "degraded"));
    let summary = shutdown_and_join(running);
    assert_eq!(summary.requests_error, 2);
    assert_eq!(summary.requests_total, 3);
}

/// A worker panic mid-job is contained to an error response — the
/// single worker thread is still alive to serve the next request.
#[test]
fn worker_panic_does_not_wedge_the_pool() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.worker", "1*panic(poisoned request)->off").unwrap();
    let config = ServeConfig {
        workers: 1,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, _) = matrix_fixture(90, 23);
    let first = request(running.addr, &frame);
    assert_eq!(status_of(&first), "error");
    match field(&first, "message") {
        Value::Str(m) => assert!(m.contains("panicked"), "message: {m}"),
        other => panic!("message is not a string: {other:?}"),
    }
    let second = request(running.addr, &frame);
    assert!(
        matches!(status_of(&second), "ok" | "degraded"),
        "the sole worker survived the panic: {second:?}"
    );
    shutdown_and_join(running);
}

/// An injected transport fault while reading drops that connection —
/// counted as torn — without touching the listener or other clients.
#[test]
fn injected_frame_faults_drop_only_their_connection() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.frame", "1*fail(torn transport)->off").unwrap();
    let running = start(base_config());
    assert!(
        request_allowing_close(running.addr, "{\"op\":\"ping\"}").is_none(),
        "the faulted connection closes without a reply"
    );
    let pong = request(running.addr, "{\"op\":\"ping\"}");
    assert_eq!(status_of(&pong), "ok");
    let metrics = request(running.addr, "{\"op\":\"metrics\"}");
    assert_eq!(as_u64(field(field(&metrics, "service"), "torn_frames")), 1);
    shutdown_and_join(running);
}

/// An injected accept fault drops the handshake; the next connection
/// is served normally.
#[test]
fn injected_accept_faults_are_counted_and_transient() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.accept", "1*fail(handshake died)->off").unwrap();
    let running = start(base_config());
    assert!(
        request_allowing_close(running.addr, "{\"op\":\"ping\"}").is_none(),
        "the faulted accept closes the socket"
    );
    let pong = request(running.addr, "{\"op\":\"ping\"}");
    assert_eq!(status_of(&pong), "ok");
    let metrics = request(running.addr, "{\"op\":\"metrics\"}");
    assert_eq!(
        as_u64(field(field(&metrics, "service"), "accept_faults")),
        1
    );
    shutdown_and_join(running);
}

/// A response-write fault (client vanished between admission and
/// answer) must not disturb the outcome accounting: the request is
/// counted by its outcome even though the bytes never arrived.
#[test]
fn respond_faults_keep_outcome_accounting_consistent() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.respond", "1*fail(client gone)->off").unwrap();
    let config = ServeConfig {
        workers: 1,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, _) = matrix_fixture(90, 24);
    assert!(
        request_allowing_close(running.addr, &frame).is_none(),
        "the faulted response write closes the connection"
    );
    let metrics = request(running.addr, "{\"op\":\"metrics\"}");
    let service = field(&metrics, "service");
    assert_eq!(as_u64(field(service, "respond_faults")), 1);
    assert_eq!(as_u64(field(service, "requests_total")), 1);
    let outcomes = as_u64(field(service, "requests_ok"))
        + as_u64(field(service, "requests_degraded"))
        + as_u64(field(service, "requests_shed"))
        + as_u64(field(service, "deadline_misses"))
        + as_u64(field(service, "requests_handle_miss"))
        + as_u64(field(service, "requests_error"));
    assert_eq!(outcomes, 1, "outcome counted despite the lost write");
    shutdown_and_join(running);
}

/// With the sole worker stalled by a scripted delay, backlog at the
/// watermark flips new requests onto the immediate degraded path: a
/// correct product now instead of a queued answer late.
#[test]
fn deep_backlog_degrades_immediately_with_a_correct_product() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.worker", "delay(1500)").unwrap();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        degrade_watermark: 2,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, expect) = matrix_fixture(120, 25);
    // Background senders carry a long explicit deadline: with every job
    // stalled 1.5 s by the failpoint, the default budget would turn the
    // tail of the backlog into deadline misses.
    let slow = Arc::new(format!(
        "{},\"deadline_ms\":15000}}",
        frame.strip_suffix('}').expect("frame ends with a brace")
    ));
    // Three slow requests, staggered so each is admitted while the
    // queue is below the watermark: the first occupies the sole worker
    // (popped immediately), the next two sit queued behind it.
    let background: Vec<_> = (0..3)
        .map(|i| {
            let addr = running.addr;
            let slow = Arc::clone(&slow);
            let h = thread::spawn(move || {
                let resp = request(addr, &slow);
                assert!(
                    matches!(status_of(&resp), "ok" | "degraded"),
                    "background client {i}: {resp:?}"
                );
            });
            thread::sleep(Duration::from_millis(150));
            h
        })
        .collect();
    // The worker is now mid-delay on the first job, so the backlog is
    // static at the watermark for over a second.
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.handle.queue_depth() < 2 {
        assert!(Instant::now() < deadline, "backlog never formed");
        thread::sleep(Duration::from_millis(5));
    }
    let resp = request(running.addr, &frame);
    assert_eq!(
        status_of(&resp),
        "degraded",
        "served past the queue: {resp:?}"
    );
    match field(&resp, "reason") {
        Value::Str(r) => assert!(r.contains("backlog"), "reason: {r}"),
        other => panic!("reason is not a string: {other:?}"),
    }
    let y = floats(field(&resp, "y"));
    for (got, want) in y.iter().zip(expect.iter()) {
        assert!((got - want).abs() < 1e-9, "degraded product is correct");
    }
    for h in background {
        h.join().expect("background client answered");
    }
    let summary = shutdown_and_join(running);
    assert_eq!(summary.requests_total, 4);
    assert!(summary.requests_degraded >= 1);
}

/// The warm handle path never crosses the tuning queue: with the sole
/// worker stalled by a scripted delay and inline work piling up behind
/// it, handle requests are still answered promptly from the connection
/// thread.
#[test]
fn warm_handles_bypass_a_stalled_worker_pool() {
    let _guard = exclusive_failpoints();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..base_config()
    };
    let running = start(config);
    let (frame, _, expect) = matrix_fixture(110, 27);
    // Tune while the pool is healthy to mint the handle.
    let tuned = request(running.addr, &frame);
    assert_eq!(status_of(&tuned), "ok", "resp: {tuned:?}");
    let handle = match field(&tuned, "handle") {
        Value::Str(s) => s.clone(),
        other => panic!("handle is not a string: {other:?}"),
    };
    // Now stall every queued job and occupy the sole worker with a
    // fresh structural fingerprint (a different seed).
    let _fp = smat_failpoints::scoped("service.worker", "delay(1500)").unwrap();
    let (slow_frame, _, _) = matrix_fixture(115, 28);
    let slow = Arc::new(format!(
        "{},\"deadline_ms\":15000}}",
        slow_frame
            .strip_suffix('}')
            .expect("frame ends with a brace")
    ));
    let background = {
        let addr = running.addr;
        let slow = Arc::clone(&slow);
        thread::spawn(move || {
            let resp = request(addr, &slow);
            assert!(matches!(status_of(&resp), "ok" | "degraded"), "{resp:?}");
        })
    };
    thread::sleep(Duration::from_millis(100));
    // The worker is mid-delay; a warm call answers anyway, fast.
    let items: Vec<String> = (0..110)
        .map(|i| format!("{:?}", 0.5 * ((i % 5) as f64) - 1.0))
        .collect();
    let warm_frame = format!(
        "{{\"op\":\"spmv\",\"handle\":\"{handle}\",\"x\":[{}]}}",
        items.join(",")
    );
    let t0 = Instant::now();
    let warm = request(running.addr, &warm_frame);
    let elapsed = t0.elapsed();
    assert_eq!(status_of(&warm), "ok", "resp: {warm:?}");
    assert_eq!(field(&warm, "warm"), &Value::Bool(true));
    let y = floats(field(&warm, "y"));
    for (got, want) in y.iter().zip(expect.iter()) {
        assert!((got - want).abs() < 1e-9);
    }
    assert!(
        elapsed < Duration::from_millis(1000),
        "warm call waited on the stalled queue: {elapsed:?}"
    );
    background.join().expect("background client answered");
    let summary = shutdown_and_join(running);
    assert_eq!(summary.requests_total, 3);
    assert_eq!(summary.requests_handle_miss, 0);
}

/// Pipelined frames during a drain: the in-flight request is answered,
/// the follow-up is shed with a retry hint, and the drain persists the
/// cache snapshot before exiting.
#[test]
fn drain_answers_inflight_sheds_new_work_and_persists_snapshot() {
    let _guard = exclusive_failpoints();
    let _fp = smat_failpoints::scoped("service.worker", "delay(300)").unwrap();
    let dir = std::env::temp_dir().join("smat_service_chaos");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snapshot = dir.join(format!("drain_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let config = ServeConfig {
        workers: 1,
        cache_snapshot: Some(snapshot.clone()),
        ..base_config()
    };
    let running = start(config);
    let (frame, _, _) = matrix_fixture(100, 26);
    // Pipeline two requests in one write: the first is in flight when
    // the drain begins; the second is read afterwards and shed.
    let mut stream = TcpStream::connect(running.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let two = format!("{frame}\n{frame}\n");
    stream.write_all(two.as_bytes()).expect("write both");
    // Give the connection thread time to start job 1, then drain.
    thread::sleep(Duration::from_millis(100));
    running.handle.begin_drain();
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("first reply");
    let first = serde_json::parse(&first).expect("json");
    assert!(
        matches!(status_of(&first), "ok" | "degraded"),
        "in-flight request answered through the drain: {first:?}"
    );
    let mut second = String::new();
    reader.read_line(&mut second).expect("second reply");
    let second = serde_json::parse(&second).expect("json");
    assert_eq!(
        status_of(&second),
        "shed",
        "post-drain request shed: {second:?}"
    );
    assert!(as_u64(field(&second, "retry_after_ms")) > 0);

    let summary = running.join.join().expect("server thread");
    assert_eq!(summary.requests_total, 2);
    assert_eq!(summary.requests_shed, 1);
    assert_eq!(
        summary.cache_snapshot_entries,
        Some(1),
        "tuned decision persisted on drain"
    );
    assert!(snapshot.exists());
    std::fs::remove_file(&snapshot).ok();
}

//! Property tests for the structural fingerprint behind the tuning
//! cache: matrices with identical sparsity structure must collide (that
//! is what makes the cache useful), and any structural mutation —
//! different shape, a moved, added or removed entry — must separate
//! (that is what makes the cache sound).

use proptest::prelude::*;
use smat_matrix::{Csr, StructuralFingerprint};

fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -100i32..100).prop_map(|(r, c, v)| (r, c, v as f64 / 7.0));
        proptest::collection::vec(entry, 1..120).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

fn rebuild(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Csr<f64> {
    Csr::from_triplets(rows, cols, triplets).expect("in-bounds triplets")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_structure_means_identical_key(m in arb_matrix()) {
        // Same pattern with rewritten values: the key must not look at
        // the numerics at all (features are structure-only, so a cached
        // decision replays across value updates).
        let mut twin = m.clone();
        for v in twin.values_mut() {
            *v = v.mul_add(-3.0, 1.25);
        }
        prop_assert_eq!(twin.fingerprint(), m.fingerprint());
        // And the key is a pure function: recomputing never drifts.
        prop_assert_eq!(m.fingerprint(), m.fingerprint());
    }

    #[test]
    fn shape_changes_change_the_key(m in arb_matrix()) {
        let fp = m.fingerprint();
        let triplets: Vec<_> = m.iter().collect();
        // One extra (empty) row, then one extra (empty) column: same
        // entries, different shape.
        let taller = rebuild(m.rows() + 1, m.cols(), &triplets);
        prop_assert_ne!(taller.fingerprint(), fp);
        let wider = rebuild(m.rows(), m.cols() + 1, &triplets);
        prop_assert_ne!(wider.fingerprint(), fp);
    }

    #[test]
    fn moving_an_entry_changes_the_key(
        (m, pick) in arb_matrix().prop_flat_map(|m| {
            let nnz = m.nnz();
            (Just(m), 0..nnz)
        })
    ) {
        let fp = m.fingerprint();
        let triplets: Vec<_> = m.iter().collect();
        let (r, c, v) = triplets[pick];
        // Move the picked entry to the next free column in its row
        // (wrapping); skip the rare fully-dense row where it can't move.
        let mut dest = None;
        for step in 1..m.cols() {
            let cand = (c + step) % m.cols();
            if m.get(r, cand).is_none() {
                dest = Some(cand);
                break;
            }
        }
        if let Some(dest) = dest {
            let mut moved = triplets.clone();
            moved[pick] = (r, dest, v);
            prop_assert_ne!(rebuild(m.rows(), m.cols(), &moved).fingerprint(), fp);
        }
    }

    #[test]
    fn dropping_or_adding_an_entry_changes_the_key(
        (m, pick) in arb_matrix().prop_flat_map(|m| {
            let nnz = m.nnz();
            (Just(m), 0..nnz)
        })
    ) {
        let fp = m.fingerprint();
        let mut triplets: Vec<_> = m.iter().collect();
        let (r, c, _) = triplets.remove(pick);
        prop_assert_ne!(rebuild(m.rows(), m.cols(), &triplets).fingerprint(), fp);
        // Put a structurally new entry where none was.
        triplets.push((r, c, 9.0));
        let mut extra = None;
        'scan: for rr in 0..m.rows() {
            for cc in 0..m.cols() {
                if m.get(rr, cc).is_none() {
                    extra = Some((rr, cc, 1.0));
                    break 'scan;
                }
            }
        }
        if let Some(e) = extra {
            triplets.push(e);
            prop_assert_ne!(rebuild(m.rows(), m.cols(), &triplets).fingerprint(), fp);
        }
    }

    #[test]
    fn key_is_stable_across_clone_and_rebuild(m in arb_matrix()) {
        // Rebuilding the same logical matrix from its own triplets (a
        // fresh allocation, same structure) reproduces the key, so the
        // cache works across independently-constructed instances.
        let triplets: Vec<_> = m.iter().collect();
        let rebuilt = rebuild(m.rows(), m.cols(), &triplets);
        prop_assert_eq!(rebuilt.fingerprint(), m.fingerprint());
        prop_assert_eq!(m.clone().fingerprint(), m.fingerprint());
    }
}

#[test]
fn fingerprints_rarely_collide_across_a_family() {
    // 5000 distinct structures; the 128-bit key must separate them all.
    let mut seen = std::collections::HashSet::<StructuralFingerprint>::new();
    for n in 2..102usize {
        for shift in 0..50usize {
            let t = [(0usize, shift % n, 1.0f64), (n - 1, (shift + 1) % n, 1.0)];
            let m = Csr::from_triplets(n, n + shift, &t).unwrap();
            seen.insert(m.fingerprint());
        }
    }
    assert_eq!(
        seen.len(),
        100 * 50,
        "every distinct structure got a distinct key"
    );
}

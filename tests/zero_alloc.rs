//! Steady-state allocation audit: once a kernel plan (or a prepared
//! engine handle) is warm, repeated SpMV calls must perform **zero**
//! heap allocations and spawn **zero** threads — the contract of the
//! persistent-pool + precomputed-plan redesign.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! whole audit lives in a single `#[test]` so no sibling test thread
//! can allocate inside the measurement window.

use smat::{Smat, SmatConfig, Trainer};
use smat_kernels::{KernelId, KernelLibrary, Strategy};
use smat_matrix::gen::{generate_corpus, random_uniform, CorpusSpec};
use smat_matrix::{AnyMatrix, Csr, Format};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation entry point; frees are not interesting here.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `calls` SpMV invocations of `f` after `warmup` warm-up calls,
/// returning (allocation delta, spawn delta) over the measured window.
fn audit(warmup: usize, calls: usize, mut f: impl FnMut()) -> (u64, u64) {
    for _ in 0..warmup {
        f();
    }
    let (a0, s0) = (allocations(), smat_kernels::exec::spawn_count());
    for _ in 0..calls {
        f();
    }
    (allocations() - a0, smat_kernels::exec::spawn_count() - s0)
}

#[test]
fn warm_planned_spmv_allocates_nothing_and_spawns_nothing() {
    // --- Kernel level: every builtin parallel variant through its plan.
    let lib = KernelLibrary::<f64>::new();
    let m = random_uniform::<f64>(500, 500, 9, 41);
    let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut y = vec![0.0f64; m.rows()];
    for format in Format::ALL {
        let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
            continue;
        };
        for (v, info) in lib.variants(format).into_iter().enumerate() {
            if !info.strategies.contains(Strategy::Parallel) {
                continue;
            }
            let plan = lib.plan_for(
                &any,
                KernelId {
                    op: smat_kernels::Op::Spmv,
                    format,
                    variant: v,
                },
            );
            assert!(
                !plan.is_stale(),
                "a freshly built plan must match the live backend"
            );
            // Warm-up initializes the pool, the cached thread count and
            // any lazy statics; the measured window must then be silent.
            let (allocs, spawns) = audit(5, 100, || lib.run_planned(&any, v, &plan, &x, &mut y));
            assert_eq!(
                allocs, 0,
                "{}: heap allocations in warm planned dispatch",
                info.name
            );
            assert_eq!(spawns, 0, "{}: thread spawns in warm dispatch", info.name);
        }
    }

    // --- Serial fast path: a single-chunk plan must never touch the
    // pool. `run_planned` calls the kernel directly (no wake/park
    // handshake), so the pool's fan-out counter stays flat across the
    // whole sweep — for every variant of every format.
    let serial_probe = random_uniform::<f64>(300, 300, 7, 43);
    let xs: Vec<f64> = (0..serial_probe.cols())
        .map(|i| (i % 7) as f64 * 0.25)
        .collect();
    let mut ys = vec![0.0f64; serial_probe.rows()];
    for format in Format::ALL {
        let Ok(any) = AnyMatrix::convert_from_csr_with(
            &serial_probe,
            format,
            &smat_matrix::ConversionLimits::unlimited(),
        ) else {
            continue;
        };
        let serial = smat_kernels::ExecPlan::serial(serial_probe.rows());
        for (v, info) in lib.variants(format).into_iter().enumerate() {
            let d0 = smat_kernels::exec::dispatch_count();
            let (allocs, spawns) = audit(2, 20, || lib.run_planned(&any, v, &serial, &xs, &mut ys));
            assert_eq!(allocs, 0, "{}: allocations under a serial plan", info.name);
            assert_eq!(spawns, 0, "{}: spawns under a serial plan", info.name);
            assert_eq!(
                smat_kernels::exec::dispatch_count() - d0,
                0,
                "{}: pool dispatches under a serial plan",
                info.name
            );
        }
    }

    // --- Skewed tier: the nnz-balanced and merge-path plans that the
    // plan search hands out on power-law matrices. Both must replay
    // with the same silence as the uniform plans above — the merge
    // kernel's per-chunk carries live in a fixed stack array, and the
    // nnz-balanced bounds were frozen at build time.
    let skew = smat_matrix::gen::power_law::<f64>(2_000, 400, 2.0, 47);
    let skew_any = AnyMatrix::Csr(skew.clone());
    let xk: Vec<f64> = (0..skew.cols()).map(|i| (i % 11) as f64 * 0.125).collect();
    let mut yk = vec![0.0f64; skew.rows()];
    for (policy, name) in [
        (
            smat_kernels::ChunkPolicy::NnzBalanced,
            "csr_parallel_balanced",
        ),
        (smat_kernels::ChunkPolicy::MergePath, "csr_merge"),
    ] {
        let v = lib
            .variants(Format::Csr)
            .iter()
            .position(|info| info.name == name)
            .expect("builtin CSR variant");
        let plan = lib.build_plan_sized(&skew_any, policy, 4);
        assert_eq!(plan.policy, policy);
        let (allocs, spawns) = audit(5, 100, || {
            lib.run_planned(&skew_any, v, &plan, &xk, &mut yk)
        });
        assert_eq!(
            allocs, 0,
            "{name} under {policy}: allocations in warm replay"
        );
        assert_eq!(spawns, 0, "{name} under {policy}: spawns in warm replay");
    }

    // --- Engine level: a prepared handle replayed through `Smat::spmv`.
    // This path now crosses the execution-time containment boundary
    // (`catch_unwind`, the health call clock, the breaker attention
    // gate, the pool-ladder check): on the happy path all of it must
    // cost only relaxed atomics — zero allocations, zero spawns.
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 31));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    let engine =
        Smat::<f64>::with_config(out.model.clone(), SmatConfig::fast()).expect("precision ok");
    let m = random_uniform::<f64>(400, 400, 8, 42);
    let tuned = engine.prepare(&m);
    let x: Vec<f64> = (0..m.cols())
        .map(|i| 0.5 - (i % 5) as f64 * 0.125)
        .collect();
    let mut y = vec![0.0f64; m.rows()];
    let (allocs, spawns) = audit(5, 100, || {
        engine.spmv(&tuned, &x, &mut y).expect("prepared SpMV runs");
    });
    assert_eq!(allocs, 0, "heap allocations in warm prepared-engine SpMV");
    assert_eq!(spawns, 0, "thread spawns in warm prepared-engine SpMV");
    let report = engine.health_report();
    assert!(
        report.calls >= 105,
        "the containment boundary counted calls"
    );
    assert_eq!(report.exec_faults, 0, "no incident on the happy path");

    // --- Batched tier: warm `Smat::spmm` replays the frozen SpMM pick
    // borrowed straight from the handle — no clone of the plan, no
    // per-call gather buffers on the tiled path — through the same
    // containment boundary as SpMV. Forced onto the measured CSR path
    // (threshold above 1.0 disables rule shortcuts) so the pick is a
    // real tiled kernel, not the allocating per-column fallback.
    let spmm_engine = Smat::<f64>::with_config(
        out.model.clone(),
        SmatConfig {
            confidence_threshold: 1.1,
            fallback_formats: vec![Format::Csr],
            ..SmatConfig::fast()
        },
    )
    .expect("precision ok");
    let tuned = spmm_engine.prepare(&m);
    let k = 4;
    let xb: Vec<f64> = (0..m.cols() * k)
        .map(|i| 0.5 - (i % 9) as f64 * 0.0625)
        .collect();
    let mut yb = vec![0.0f64; m.rows() * k];
    let (allocs, spawns) = audit(5, 100, || {
        spmm_engine
            .spmm(&tuned, &xb, &mut yb, k)
            .expect("prepared SpMM runs");
    });
    assert_eq!(allocs, 0, "heap allocations in warm prepared-engine SpMM");
    assert_eq!(spawns, 0, "thread spawns in warm prepared-engine SpMM");
    assert!(
        tuned.spmm_kernel().is_some(),
        "the CSR pick is a tiled SpMM kernel, not the per-column fallback"
    );
    assert!(
        spmm_engine.health_report().spmm_calls >= 105,
        "the op-labeled call clock counted the batched calls"
    );

    // --- Output screening enabled: the non-finite scan is a pure read
    // over `y` and must not change the zero-allocation contract.
    let screening = Smat::<f64>::with_config(
        out.model,
        SmatConfig {
            screen_outputs: true,
            ..SmatConfig::fast()
        },
    )
    .expect("precision ok");
    let tuned = screening.prepare(&m);
    let (allocs, spawns) = audit(5, 100, || {
        screening
            .spmv(&tuned, &x, &mut y)
            .expect("screened SpMV runs");
    });
    assert_eq!(allocs, 0, "heap allocations in warm screened SpMV");
    assert_eq!(spawns, 0, "thread spawns in warm screened SpMV");
    assert_eq!(screening.health_report().exec_faults, 0);

    // The audit is honest about its environment: record what actually
    // executed so a 1-core CI box (inline fallback, no fan-out) is
    // distinguishable from a real parallel run in the test log.
    eprintln!(
        "zero-alloc audit: backend threads = {}, total spawns = {}",
        smat_kernels::exec::num_threads(),
        smat_kernels::exec::spawn_count()
    );
}

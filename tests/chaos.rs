//! Chaos suite: multi-threaded soak runs under scripted failpoint
//! schedules. The contract is the same as the fault-injection suite's —
//! graceful degradation, never a panic, never a silently wrong result —
//! but here the failures are injected *inside* the pipeline (allocation,
//! measurement, cache critical sections, artifact I/O) while sixteen
//! threads hammer the engine.
//!
//! Requires `--features failpoints`; without it the whole binary
//! compiles to nothing, which is itself part of the contract (the
//! production build carries only inert no-op sites).
#![cfg(feature = "failpoints")]

use smat::{BreakerState, DecisionPath, FaultKind, Installation, Smat, SmatConfig, Trainer};
use smat_kernels::{KernelId, KernelLibrary, Strategy};
use smat_matrix::gen::{generate_corpus, power_law, random_uniform, tridiagonal, CorpusSpec};
use smat_matrix::io::read_matrix_market;
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{AnyMatrix, Csr, Format, MatrixError};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

const THREADS: usize = 16;

/// The failpoint registry is process-global, so tests scripting sites
/// must not overlap in time. Every test takes this lock first and
/// starts from a clean registry.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn exclusive_failpoints() -> MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner);
    smat_failpoints::reset();
    guard
}

fn train_engine_with(seed: u64, config: SmatConfig) -> Smat<f64> {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, seed));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    Smat::with_config(out.model, config).expect("precision matches")
}

fn assert_usable(engine: &Smat<f64>, tuned: &smat::TunedSpmv<f64>, m: &Csr<f64>) {
    let x: Vec<f64> = (0..m.cols())
        .map(|i| 0.25 * ((i % 7) as f64) - 1.0)
        .collect();
    let mut y = vec![0.0; m.rows()];
    engine.spmv(tuned, &x, &mut y).expect("SpMV runs");
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    assert!(
        max_abs_diff(&y, &expect) < 1e-10,
        "result diverges from reference"
    );
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("smat_chaos_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The soak: sixteen threads loop `prepare` + `spmv` over a mixed bag
/// of structures while conversion allocation, candidate measurement and
/// cache insertion are all failing or stalling on scripted schedules.
/// Every outcome must be one of the four documented [`DecisionPath`]
/// variants, every product must match the reference kernel, and no
/// thread may panic.
#[test]
fn soak_under_scripted_faults_never_panics_or_corrupts_results() {
    let _serial = exclusive_failpoints();
    let engine = Arc::new(train_engine_with(51, SmatConfig::fast()));
    let matrices: Vec<Arc<Csr<f64>>> = vec![
        Arc::new(tridiagonal::<f64>(400)),
        Arc::new(random_uniform::<f64>(350, 350, 9, 13)),
        Arc::new(power_law::<f64>(1500, 300, 2.0, 7)),
    ];

    // Schedules mix hard failures and stalls, then exhaust to `off`, so
    // the soak crosses faulty and healthy phases. `panic` is deliberately
    // absent: the zero-panic assertion below is the point of the test.
    let _g1 = smat_failpoints::scoped(
        "convert.alloc",
        "6*fail(allocation refused)->4*delay(1)->off",
    )
    .unwrap();
    let _g2 = smat_failpoints::scoped("search.measure", "4*fail(probe exploded)->2*delay(2)->off")
        .unwrap();
    let _g3 = smat_failpoints::scoped("cache.insert", "3*fail(insert vetoed)->off").unwrap();

    const ITERS: usize = 6;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let matrices = matrices.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // [predicted, measured, cached, degraded] seen by this thread.
                let mut counts = [0u64; 4];
                for i in 0..ITERS {
                    let m = &matrices[(t + i) % matrices.len()];
                    let tuned = engine.prepare(m);
                    // Exhaustive over the documented taxonomy: a fifth
                    // variant would fail to compile here.
                    match tuned.decision() {
                        DecisionPath::Predicted { .. } => counts[0] += 1,
                        DecisionPath::Measured { .. } => counts[1] += 1,
                        DecisionPath::Cached { .. } => counts[2] += 1,
                        DecisionPath::Degraded { .. } => counts[3] += 1,
                    }
                    assert_usable(&engine, &tuned, m);
                }
                counts
            })
        })
        .collect();

    let mut totals = [0u64; 4];
    for h in handles {
        let counts = h.join().expect("no soak thread may panic");
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }
    assert_eq!(
        totals.iter().sum::<u64>(),
        (THREADS * ITERS) as u64,
        "every prepare call must land on a documented decision path"
    );
    // The schedules actually fired: the sites were exercised.
    assert!(smat_failpoints::hits("convert.alloc") > 0);
    assert!(smat_failpoints::hits("search.measure") > 0);
    // After the schedules exhausted, healthy tuning resumed — the cache
    // holds entries and later rounds replayed them.
    assert!(totals[2] > 0, "healthy phase must produce cache hits");
    let stats = engine.cache_stats();
    assert!(stats.entries > 0, "schedules exhausted, cache repopulated");
    assert_eq!(stats.poison_recoveries, 0, "no panic ever touched a lock");
}

/// A scripted panic inside the cache's lock-held critical section
/// poisons the mutex. The engine must recover on the next access —
/// counted, not fatal — instead of aborting every later `prepare`.
#[test]
fn poisoned_cache_lock_recovers_and_the_engine_stays_usable() {
    let _serial = exclusive_failpoints();
    let engine = train_engine_with(52, SmatConfig::fast());
    let m = tridiagonal::<f64>(250);
    {
        let _g = smat_failpoints::scoped("cache.insert", "1*panic(lock holder dies)->off").unwrap();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.prepare(&m)));
        assert!(
            unwound.is_err(),
            "the scripted panic must unwind out of prepare"
        );
    }
    // The next prepare walks into the poisoned lock, recovers (dropping
    // the resident entries), re-tunes and publishes normally.
    let tuned = engine.prepare(&m);
    assert!(
        !tuned.decision().is_degraded(),
        "got {:?}",
        tuned.decision()
    );
    assert!(!tuned.decision().is_cached());
    let stats = engine.cache_stats();
    assert_eq!(stats.poison_recoveries, 1, "recovery must be counted");
    assert_usable(&engine, &tuned, &m);
    // The cache is fully functional again: the republished entry replays.
    assert!(engine.prepare(&m).decision().is_cached());
    assert_eq!(
        engine.cache_stats().poison_recoveries,
        1,
        "the poison flag was cleared, so recovery fires exactly once"
    );
}

/// A follower that waits out `single_flight_wait` on a stalled leader
/// degrades to the reference kernel instead of blocking forever.
#[test]
fn follower_degrades_when_the_leader_outlives_the_wait_deadline() {
    let _serial = exclusive_failpoints();
    let cfg = SmatConfig {
        confidence_threshold: 1.1, // force the (stallable) measured path
        single_flight_wait: Duration::from_millis(100),
        ..SmatConfig::fast()
    };
    let engine = Arc::new(train_engine_with(53, cfg));
    let m = random_uniform::<f64>(300, 300, 8, 33);

    // Every measurement probe stalls well past the candidate deadline,
    // so the leader's tuning run takes far longer than the follower is
    // willing to wait.
    let _g = smat_failpoints::scoped("search.measure", "delay(400)").unwrap();

    let leader = {
        let engine = Arc::clone(&engine);
        let m = m.clone();
        thread::spawn(move || engine.prepare(&m))
    };
    // Give the leader time to claim the in-flight marker.
    thread::sleep(Duration::from_millis(30));
    let follower = engine.prepare(&m);
    match follower.decision() {
        DecisionPath::Degraded { reason } => {
            assert!(
                reason.contains("single-flight wait"),
                "degrade must name the wait deadline, got: {reason}"
            );
        }
        other => panic!("expected a wait-deadline degrade, got {other:?}"),
    }
    assert_usable(&engine, &follower, &m);

    let leader_tuned = leader.join().expect("the stalled leader must not panic");
    // Every candidate blew its deadline, so the leader degraded too —
    // and published nothing.
    assert!(leader_tuned.decision().is_degraded());
    assert_usable(&engine, &leader_tuned, &m);
    let stats = engine.cache_stats();
    assert!(stats.coalesced_waits >= 1, "the follower joined the flight");
    assert_eq!(stats.entries, 0, "degraded decisions are never published");
}

/// Transient cache-snapshot I/O failures are retried until the schedule
/// clears; the hit counter proves the retry loop ran exactly as
/// configured.
#[test]
fn cache_snapshot_io_is_retried_through_transient_failures() {
    let _serial = exclusive_failpoints();
    let cfg = SmatConfig {
        persist_retries: 3,
        persist_backoff: Duration::from_millis(1),
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(54, cfg);
    engine.prepare(&tridiagonal::<f64>(200));
    let path = tmp("cache_retry.json");
    std::fs::remove_file(&path).ok();

    {
        let _g = smat_failpoints::scoped("cache.persist", "2*fail(disk full)->off").unwrap();
        let written = engine
            .save_cache(&path)
            .expect("retries must absorb the failures");
        assert_eq!(written, 1);
        assert_eq!(
            smat_failpoints::hits("cache.persist"),
            3,
            "two scripted failures, then the successful attempt"
        );
    }
    {
        let _g = smat_failpoints::scoped("cache.load", "1*fail(mount dropped)->off").unwrap();
        engine.clear_cache();
        assert_eq!(engine.load_cache(&path).expect("retry must absorb it"), 1);
        assert_eq!(smat_failpoints::hits("cache.load"), 2);
    }
    // A warm-started entry replays.
    assert!(engine
        .prepare(&tridiagonal::<f64>(200))
        .decision()
        .is_cached());

    // An unyielding failure exhausts the budget and surfaces as a
    // transient persist error: 1 attempt + 3 retries, then give up.
    {
        let _g = smat_failpoints::scoped("cache.persist", "fail(disk gone)").unwrap();
        let err = engine.save_cache(&path).unwrap_err();
        assert_eq!(err.taxonomy(), "persist");
        assert!(err.is_transient());
        assert_eq!(smat_failpoints::hits("cache.persist"), 4);
    }
    // The exhausted save never touched the valid artifact.
    engine.clear_cache();
    assert_eq!(engine.load_cache(&path).unwrap(), 1);
    std::fs::remove_file(&path).ok();
}

/// Installation artifacts under scripted I/O faults: writes are retried
/// by `load_or_run`, unreadable artifacts regenerate, and an exhausted
/// write budget surfaces a named persist error.
#[test]
fn install_artifacts_survive_scripted_io_faults() {
    let _serial = exclusive_failpoints();
    let cfg = SmatConfig {
        persist_retries: 2,
        persist_backoff: Duration::from_millis(1),
        ..SmatConfig::fast()
    };
    let path = tmp("install_chaos.json");
    std::fs::remove_file(&path).ok();

    // load_or_run retries the save through a transient schedule.
    {
        let _g = smat_failpoints::scoped("install.save", "2*fail(flaky mount)->off").unwrap();
        let (_, from_disk) = Installation::load_or_run::<f64>(&path, &cfg).unwrap();
        assert!(!from_disk);
        assert_eq!(smat_failpoints::hits("install.save"), 3);
    }
    assert!(Installation::load(&path).is_ok(), "the retried save landed");

    // A scripted read failure makes the existing artifact unreadable;
    // load_or_run regenerates instead of trusting nothing.
    {
        let _g = smat_failpoints::scoped("install.load", "fail(vanished)").unwrap();
        let (_, from_disk) = Installation::load_or_run::<f64>(&path, &cfg).unwrap();
        assert!(!from_disk, "an unreadable artifact must regenerate");
    }

    // An unyielding write failure exhausts the retry budget: a clean,
    // taxonomy-named error, not a panic. 1 attempt + 2 retries.
    std::fs::remove_file(&path).ok();
    {
        let _g = smat_failpoints::scoped("install.save", "fail(disk gone)").unwrap();
        let err = Installation::load_or_run::<f64>(&path, &cfg).unwrap_err();
        assert_eq!(err.taxonomy(), "persist");
        assert!(err.is_transient());
        assert_eq!(smat_failpoints::hits("install.save"), 3);
        assert!(!path.exists(), "no torn artifact may be left behind");
    }
    std::fs::remove_file(&path).ok();
}

/// The worker pool's `pool.dispatch` site sits at fan-out entry: a
/// scripted `fail` forces the inline-serial fallback, a `delay` stalls
/// the dispatcher. Sixteen threads stampede one shared plan through
/// both phases and the exhausted-to-healthy transition; no product may
/// change and no thread may panic. A second phase runs the full engine
/// pipeline (`prepare` + `spmv`) under a fresh schedule.
#[test]
fn pool_dispatch_faults_fall_back_inline_without_corrupting_results() {
    let _serial = exclusive_failpoints();
    let lib = Arc::new(KernelLibrary::<f64>::new());
    let m = random_uniform::<f64>(400, 400, 8, 99);
    let v = lib
        .variants(Format::Csr)
        .iter()
        .position(|i| i.strategies.contains(Strategy::Parallel))
        .expect("a parallel CSR variant exists");
    let any = Arc::new(AnyMatrix::Csr(m.clone()));
    let plan = Arc::new(lib.plan_for(
        &any,
        KernelId {
            op: smat_kernels::Op::Spmv,
            format: Format::Csr,
            variant: v,
        },
    ));
    assert!(plan.chunks() >= 2, "the plan must actually fan out");
    let x: Vec<f64> = (0..m.cols())
        .map(|i| 0.5 - (i % 9) as f64 * 0.125)
        .collect();
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    let (x, expect) = (Arc::new(x), Arc::new(expect));

    const ITERS: usize = 6;
    {
        let _g = smat_failpoints::scoped("pool.dispatch", "8*fail(pool offline)->8*delay(1)->off")
            .unwrap();
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (lib, any, plan) = (Arc::clone(&lib), Arc::clone(&any), Arc::clone(&plan));
                let (x, expect) = (Arc::clone(&x), Arc::clone(&expect));
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..ITERS {
                        let mut y = vec![f64::NAN; expect.len()];
                        lib.run_planned(&any, v, &plan, &x, &mut y);
                        assert!(
                            max_abs_diff(&y, &expect) < 1e-12,
                            "dispatch fault corrupted the product"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no stampede thread may panic");
        }
        // Every fan-out crossed the site exactly once (fail, delay and
        // the exhausted `off` state all count as hits).
        assert_eq!(
            smat_failpoints::hits("pool.dispatch"),
            (THREADS * ITERS) as u64,
            "every dispatch must cross the failpoint"
        );
    }

    // Engine phase: the whole tuning pipeline over a faulty dispatcher.
    let engine = Arc::new(train_engine_with(55, SmatConfig::fast()));
    let _g = smat_failpoints::scoped("pool.dispatch", "4*fail(pool offline)->off").unwrap();
    let matrices = [
        Arc::new(tridiagonal::<f64>(300)),
        Arc::new(random_uniform::<f64>(280, 280, 7, 17)),
    ];
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let m = Arc::clone(&matrices[t % matrices.len()]);
            thread::spawn(move || {
                let tuned = engine.prepare(&m);
                assert_usable(&engine, &tuned, &m);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no pipeline thread may panic");
    }
}

/// The execution-time containment acceptance run: a kernel scripted to
/// panic on warm calls never propagates. Every `spmv` returns `Ok` with
/// a reference-correct product, the variant is quarantined after
/// `breaker_threshold` incidents, excluded from the next `prepare`'s
/// candidate set (its cached decision evicted), and readmitted by a
/// successful half-open re-probe once the call-counted backoff elapses.
#[test]
fn scripted_kernel_panics_are_contained_quarantined_and_readmitted() {
    let _serial = exclusive_failpoints();
    let cfg = SmatConfig {
        breaker_threshold: 2,
        breaker_backoff_calls: 4,
        ..SmatConfig::fast()
    };
    let engine = train_engine_with(56, cfg);
    let m = random_uniform::<f64>(300, 300, 8, 77);
    let tuned = engine.prepare(&m);
    let bad = tuned.kernel();
    let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 - (i % 5) as f64 * 0.2).collect();
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    let check = |engine: &Smat<f64>, tuned: &smat::TunedSpmv<f64>| {
        let mut y = vec![f64::NAN; m.rows()];
        engine
            .spmv(tuned, &x, &mut y)
            .expect("a contained fault must still return Ok");
        assert!(
            max_abs_diff(&y, &expect) < 1e-10,
            "contained call diverged from the reference product"
        );
    };

    // Calls 1–2: the kernel panics mid-call on a scripted schedule. Both
    // faults are contained — the caller sees `Ok` and a correct product
    // served by the reference path — and the second trips the breaker.
    let _g = smat_failpoints::scoped("exec.kernel", "2*panic(injected kernel fault)->off").unwrap();
    check(&engine, &tuned);
    check(&engine, &tuned);
    let r = engine.health_report();
    assert_eq!(r.calls, 2);
    assert_eq!(r.exec_faults, 2);
    assert_eq!(r.breaker_trips, 1);
    assert_eq!(r.recent_incidents.len(), 2);
    assert!(r
        .recent_incidents
        .iter()
        .all(|i| i.kernel == bad && i.kind == FaultKind::Panic));
    assert!(r.recent_incidents[0]
        .payload
        .contains("injected kernel fault"));
    let q = &r.quarantined_variants;
    assert_eq!(q.len(), 1, "exactly one variant is benched");
    assert_eq!(q[0].kernel, bad);
    assert_eq!(q[0].state, BreakerState::Open);
    assert_eq!(q[0].incidents, 2);
    assert_eq!(q[0].reopen_at, 2 + 4, "backoff counts in call-clock units");

    // The next prepare finds the cached decision pointing at the benched
    // kernel, evicts it, and re-tunes with the variant excluded.
    let tuned2 = engine.prepare(&m);
    assert_eq!(engine.health_report().quarantine_evictions, 1);
    if bad != KernelId::basic(bad.format) {
        assert_ne!(
            tuned2.kernel(),
            bad,
            "a quarantined variant must not be re-attached"
        );
    }
    check(&engine, &tuned2); // call 3, healthy substitute kernel

    // Calls 4–5 on the original handle sit inside the backoff window:
    // served by the reference path, no new incidents recorded.
    check(&engine, &tuned);
    check(&engine, &tuned);
    let r = engine.health_report();
    assert_eq!(r.exec_faults, 2, "fallback service records no incidents");
    assert_eq!(r.quarantined_variants.len(), 1);

    // Call 6 reaches `reopen_at`: the breaker half-opens, this call
    // claims the re-probe, the (now healed) kernel runs cleanly, and the
    // variant is readmitted.
    check(&engine, &tuned);
    let r = engine.health_report();
    assert_eq!(r.reprobe_successes, 1);
    assert_eq!(r.reprobe_failures, 0);
    assert!(
        r.quarantined_variants.is_empty(),
        "a clean re-probe must close the breaker"
    );
    check(&engine, &tuned); // call 7: healthy steady state again
    assert_eq!(engine.health_report().exec_faults, 2);
}

/// The pool degradation ladder at engine level: scripted dispatch
/// faults demote warm serving to serial plans (results stay correct
/// throughout), and a clean re-probe after the backoff promotes the
/// engine back to the parallel rung.
#[test]
fn pool_fault_storm_demotes_to_serial_and_reprobes_back() {
    let _serial = exclusive_failpoints();
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 57));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let mut out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    // Pin every format's choice to a parallel variant (where one
    // exists) so the prepared plan actually fans out through the pool.
    let lib = KernelLibrary::<f64>::new();
    for idx in 0..Format::COUNT {
        let f = Format::from_index(idx);
        if let Some(v) = lib
            .variants(f)
            .iter()
            .position(|i| i.strategies.contains(Strategy::Parallel))
        {
            out.model.kernel_choice.set(f, v);
        }
    }
    let cfg = SmatConfig {
        pool_fault_threshold: 2,
        breaker_backoff_calls: 4,
        ..SmatConfig::fast()
    };
    let engine = Smat::with_config(out.model, cfg).expect("precision matches");
    let m = random_uniform::<f64>(400, 400, 8, 99);
    let tuned = engine.prepare(&m);
    assert!(
        !tuned.plan().is_serial(),
        "the pinned parallel variant must produce a fanned-out plan"
    );
    let x: Vec<f64> = (0..m.cols())
        .map(|i| 0.25 * ((i % 7) as f64) - 1.0)
        .collect();
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    let check = || {
        let mut y = vec![f64::NAN; m.rows()];
        engine.spmv(&tuned, &x, &mut y).expect("SpMV stays Ok");
        assert!(
            max_abs_diff(&y, &expect) < 1e-10,
            "a dispatch fault corrupted the product"
        );
    };

    // Scripted after prepare so tuning itself never crosses the site.
    let _g = smat_failpoints::scoped("pool.dispatch", "3*fail(pool offline)->off").unwrap();
    let mut calls = 0;
    while !engine.pool_demoted() && calls < 20 {
        check();
        calls += 1;
    }
    assert!(
        engine.pool_demoted(),
        "repeated dispatch faults must demote the engine"
    );
    // Demoted serving substitutes serial plans per call — correct, and
    // off the pool entirely — until the backoff admits a re-probe that
    // finds the (exhausted) schedule healthy and promotes.
    let mut more = 0;
    while engine.pool_demoted() && more < 100 {
        check();
        more += 1;
    }
    assert!(
        !engine.pool_demoted(),
        "a clean re-probe must promote back to the parallel rung"
    );
    let r = engine.health_report();
    assert_eq!(r.pool_demotions, 1);
    assert!(!r.pool_demoted);
    assert!(r.reprobe_successes >= 1);
    assert_eq!(r.exec_faults, 0, "dispatch faults are not kernel incidents");
    check(); // healthy parallel steady state again
}

/// Quarantine survives the sealed install artifact: a breaker tripped
/// at serve time re-persists the installation, and a fresh engine
/// adopting that artifact starts with the variant already benched.
#[test]
fn quarantine_persists_through_the_install_artifact() {
    let _serial = exclusive_failpoints();
    let path = tmp("quarantine_install.json");
    std::fs::remove_file(&path).ok();
    let cfg = SmatConfig {
        breaker_threshold: 1,
        breaker_backoff_calls: 1_000,
        install_path: Some(path.clone()),
        ..SmatConfig::fast()
    };
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 58));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let trained = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");

    let engine = Smat::with_config(trained.model.clone(), cfg.clone()).expect("install seals");
    assert!(engine.installation().is_some());
    let m = random_uniform::<f64>(250, 250, 8, 41);
    let tuned = engine.prepare(&m);
    let bad = tuned.kernel();
    {
        let _g = smat_failpoints::scoped("exec.kernel", "1*panic(wedged)->off").unwrap();
        assert_usable(&engine, &tuned, &m);
    }
    assert_eq!(engine.health_report().breaker_trips, 1);
    // The trip re-persisted the artifact with the quarantine set.
    let sealed = Installation::load(&path).expect("artifact re-persisted");
    assert_eq!(sealed.quarantined, vec![bad]);

    // A fresh engine adopting the artifact starts with the variant
    // benched: served by the reference path, excluded from tuning.
    drop(engine);
    let engine2 = Smat::with_config(trained.model, cfg).expect("artifact adopted");
    assert!(engine2.installation_from_disk());
    let r = engine2.health_report();
    assert_eq!(r.quarantined_variants.len(), 1);
    assert_eq!(r.quarantined_variants[0].kernel, bad);
    assert_eq!(r.quarantined_variants[0].state, BreakerState::Open);
    assert_eq!(r.exec_faults, 0, "the incidents themselves do not persist");
    let tuned2 = engine2.prepare(&m);
    if bad != KernelId::basic(bad.format) {
        assert_ne!(
            tuned2.kernel(),
            bad,
            "an adopted quarantine must exclude the variant from tuning"
        );
    }
    assert_usable(&engine2, &tuned2, &m);
    std::fs::remove_file(&path).ok();
}

/// The `io.read` site injects at the matrix-market reader: one scripted
/// failure surfaces as a clean I/O error, the next read proceeds.
#[test]
fn scripted_read_faults_surface_cleanly_and_clear() {
    let _serial = exclusive_failpoints();
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 2.0\n";
    let _g = smat_failpoints::scoped("io.read", "1*fail(cable pulled)->off").unwrap();
    let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
    match err {
        MatrixError::Io(io) => assert!(io.to_string().contains("cable pulled")),
        other => panic!("expected an injected I/O error, got {other:?}"),
    }
    let m = read_matrix_market::<f64, _>(text.as_bytes()).expect("schedule cleared");
    assert_eq!(m.nnz(), 2);
}

//! Single-flight tuning under concurrent stampedes: when many threads
//! `prepare` the same structure at once, exactly one runs the tuning
//! pipeline (the leader) and the rest replay its published decision —
//! never a redundant measurement, never a wrong result, never a panic.

use smat::{DecisionPath, Smat, SmatConfig, Trainer};
use smat_kernels::KernelId;
use smat_matrix::gen::{generate_corpus, random_uniform, tridiagonal, CorpusSpec};
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{Csr, Format};
use std::sync::{Arc, Barrier};
use std::thread;

const THREADS: usize = 16;

fn train_engine_with(seed: u64, config: SmatConfig) -> Smat<f64> {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, seed));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    Smat::with_config(out.model, config).expect("precision matches")
}

/// One thread's observation of a stampeded `prepare`.
struct Observed {
    decision: DecisionPath,
    format: Format,
    kernel: KernelId,
    y: Vec<f64>,
}

/// Releases `THREADS` threads through a barrier into `prepare` on the
/// same matrix and returns what each saw.
fn stampede(engine: &Arc<Smat<f64>>, m: &Arc<Csr<f64>>) -> Vec<Observed> {
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let engine = Arc::clone(engine);
            let m = Arc::clone(m);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 7) as f64).collect();
                let mut y = vec![0.0; m.rows()];
                barrier.wait();
                let tuned = engine.prepare(&m);
                engine.spmv(&tuned, &x, &mut y).expect("tuned SpMV runs");
                Observed {
                    decision: tuned.decision().clone(),
                    format: tuned.format(),
                    kernel: tuned.kernel(),
                    y,
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("no stampeding thread may panic"))
        .collect()
}

#[test]
fn stampede_tunes_once_and_serves_the_rest_from_cache() {
    let engine = Arc::new(train_engine_with(41, SmatConfig::fast()));
    // Unstructured enough that no rule matches: the leader must run the
    // execute-and-measure fallback, the expensive path worth coalescing.
    let m = Arc::new(random_uniform::<f64>(500, 500, 10, 21));
    let results = stampede(&engine, &m);

    // Exactly one thread ran the tuning pipeline; the other fifteen
    // replayed its decision from the cache.
    let fresh: Vec<&Observed> = results.iter().filter(|o| !o.decision.is_cached()).collect();
    assert_eq!(
        fresh.len(),
        1,
        "exactly one leader may tune; decisions: {:?}",
        results.iter().map(|o| &o.decision).collect::<Vec<_>>()
    );
    assert_eq!(
        results.iter().filter(|o| o.decision.is_cached()).count(),
        THREADS - 1
    );
    assert!(results.iter().all(|o| !o.decision.is_degraded()));
    let leader = fresh[0];
    assert!(
        matches!(
            leader.decision,
            DecisionPath::Measured { .. } | DecisionPath::Predicted { .. }
        ),
        "leader's path must be a real tuning outcome, got {:?}",
        leader.decision
    );

    // Every thread landed on the leader's choice, and every cached path
    // wraps exactly the leader's underlying decision.
    for o in &results {
        assert_eq!(o.format, leader.format);
        assert_eq!(o.kernel, leader.kernel);
        assert_eq!(o.decision.source(), leader.decision.source());
    }

    // Identical products, all agreeing with the reference CSR kernel.
    let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 7) as f64).collect();
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).expect("reference SpMV runs");
    for o in &results {
        assert_eq!(
            o.y, results[0].y,
            "threads must compute the identical product"
        );
        assert!(
            max_abs_diff(&o.y, &expect) < 1e-10,
            "tuned result diverges from reference"
        );
    }

    // The counters agree: one miss (the leader), fifteen hits, and no
    // thread saw more waiters than there were followers.
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "a follower must never re-tune");
    assert_eq!(stats.hits, (THREADS - 1) as u64);
    assert!(stats.coalesced_waits <= (THREADS - 1) as u64);
    assert_eq!(stats.poison_recoveries, 0);
}

#[test]
fn stampede_on_a_warm_cache_serves_everyone_cached() {
    let engine = Arc::new(train_engine_with(42, SmatConfig::fast()));
    let m = Arc::new(tridiagonal::<f64>(600));
    // Warm the entry on a single thread first.
    let warmup = engine.prepare(&m);
    assert!(!warmup.decision().is_cached());
    let before = engine.cache_stats();

    let results = stampede(&engine, &m);
    assert!(
        results.iter().all(|o| o.decision.is_cached()),
        "a resident entry must serve every stampeder"
    );
    let delta = engine.cache_stats().since(&before);
    assert_eq!(delta.hits, THREADS as u64);
    assert_eq!(delta.misses, 0);
    assert_eq!(delta.coalesced_waits, 0, "nobody waits on a warm cache");
}

#[test]
fn concurrent_distinct_structures_each_tune_exactly_once() {
    let engine = Arc::new(train_engine_with(43, SmatConfig::fast()));
    // Four distinct structures, four threads stampeding each.
    let matrices: Vec<Arc<Csr<f64>>> = (0..4)
        .map(|i| {
            Arc::new(random_uniform::<f64>(
                300 + 40 * i,
                300 + 40 * i,
                8,
                77 + i as u64,
            ))
        })
        .collect();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let m = Arc::clone(&matrices[t % matrices.len()]);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let tuned = engine.prepare(&m);
                let x = vec![1.0; m.cols()];
                let mut y = vec![0.0; m.rows()];
                engine.spmv(&tuned, &x, &mut y).expect("tuned SpMV runs");
                let mut expect = vec![0.0; m.rows()];
                m.spmv(&x, &mut expect).expect("reference SpMV runs");
                assert!(max_abs_diff(&y, &expect) < 1e-10);
                (m.fingerprint(), tuned.decision().is_cached())
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no thread may panic"))
        .collect();

    // Per structure: one tune, three cache replays.
    for m in &matrices {
        let key = m.fingerprint();
        let fresh = results
            .iter()
            .filter(|(k, cached)| *k == key && !cached)
            .count();
        assert_eq!(fresh, 1, "structure {key:?} must tune exactly once");
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, matrices.len() as u64);
    assert_eq!(stats.hits, (THREADS - matrices.len()) as u64);
}

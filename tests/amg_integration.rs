//! Cross-crate integration: the AMG substrate driven through SMAT, the
//! paper's §7.4 scenario.

use smat::{Smat, SmatConfig, Trainer};
use smat_amg::{cg, AmgConfig, AmgSolver, Coarsening, CycleConfig, Relaxation};
use smat_matrix::gen::{generate_corpus, laplacian_2d_9pt, laplacian_3d_7pt, CorpusSpec};
use smat_matrix::Csr;

fn engine() -> Smat<f64> {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 21));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast())
        .train(&matrices)
        .expect("training succeeds");
    Smat::with_config(out.model, SmatConfig::fast()).expect("precision matches")
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + ((i * 31) % 11) as f64 * 0.1).collect()
}

#[test]
fn smat_amg_converges_identically_to_plain_amg() {
    let e = engine();
    let a = laplacian_2d_9pt::<f64>(40, 40);
    let n = a.rows();
    let cfg = AmgConfig::default();
    let cycle = CycleConfig::default();
    let plain = AmgSolver::new(a.clone(), &cfg, cycle);
    let tuned = AmgSolver::with_smat(a, &cfg, cycle, &e);

    let b = rhs(n);
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    let s1 = plain.solve(&b, &mut x1, 1e-9, 100);
    let s2 = tuned.solve(&b, &mut x2, 1e-9, 100);
    assert!(s1.converged && s2.converged);
    // Same hierarchy, same smoother: iteration counts match and the
    // solutions agree to solver tolerance.
    assert_eq!(s1.iterations, s2.iterations);
    let diff = x1
        .iter()
        .zip(&x2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 1e-6, "solutions diverged by {diff}");
}

#[test]
fn cljp_7pt_pipeline_matches_paper_setup() {
    // The Table 4 configuration, scaled down: CLJP on a 3-D 7-point
    // Laplacian, Jacobi smoothing, SMAT-tuned operators.
    let e = engine();
    let a = laplacian_3d_7pt::<f64>(14, 14, 14);
    let n = a.rows();
    let cfg = AmgConfig {
        coarsening: Coarsening::Cljp,
        ..AmgConfig::default()
    };
    let solver = AmgSolver::with_smat(a, &cfg, CycleConfig::default(), &e);
    assert!(solver.hierarchy().num_levels() >= 2);
    let b = rhs(n);
    let mut x = vec![0.0; n];
    let stats = solver.solve(&b, &mut x, 1e-8, 100);
    assert!(stats.converged, "residuals {:?}", stats.residuals);
}

#[test]
fn amg_pcg_beats_plain_cg() {
    let a = laplacian_2d_9pt::<f64>(48, 48);
    let n = a.rows();
    let b = rhs(n);
    let solver = AmgSolver::new(a.clone(), &AmgConfig::default(), CycleConfig::default());
    let mut x1 = vec![0.0; n];
    let pcg_stats = solver.pcg(&b, &mut x1, 1e-9, 500);
    let mut x2 = vec![0.0; n];
    let cg_stats = cg(&a, &b, &mut x2, 1e-9, 5000);
    assert!(pcg_stats.converged && cg_stats.converged);
    assert!(
        pcg_stats.iterations * 3 < cg_stats.iterations,
        "pcg {} vs cg {}",
        pcg_stats.iterations,
        cg_stats.iterations
    );
}

#[test]
fn gauss_seidel_hierarchy_with_smat_transfer_operators() {
    // Gauss-Seidel relaxation cannot use tuned kernels, but transfer
    // operators still can; make sure the mixed configuration is correct.
    let e = engine();
    let a = laplacian_2d_9pt::<f64>(30, 30);
    let n = a.rows();
    let cycle = CycleConfig {
        relax: Relaxation::GaussSeidel,
        ..CycleConfig::default()
    };
    let solver = AmgSolver::with_smat(a, &AmgConfig::default(), cycle, &e);
    let b = rhs(n);
    let mut x = vec![0.0; n];
    let stats = solver.solve(&b, &mut x, 1e-9, 60);
    assert!(stats.converged);
}

#[test]
fn amg_setup_reports_cache_traffic_and_resetup_hits() {
    let e = engine();
    let a = laplacian_2d_9pt::<f64>(32, 32);
    let n = a.rows();
    let cfg = AmgConfig::default();
    let cycle = CycleConfig::default();

    let plain = AmgSolver::new(a.clone(), &cfg, cycle);
    assert!(
        plain.setup_tuning_stats().is_none(),
        "plain setup never tunes"
    );

    let first = AmgSolver::with_smat(a.clone(), &cfg, cycle, &e);
    let stats = first
        .setup_tuning_stats()
        .expect("tuned setup reports stats");
    let prepares = stats.hits + stats.misses;
    assert!(prepares >= 3, "every grid/transfer operator is tuned");
    assert_eq!(stats.hits, 0, "a cold engine cannot hit");

    // Same operator again: identical hierarchy structure, so every
    // per-operator decision replays from the fingerprint cache.
    let second = AmgSolver::with_smat(a, &cfg, cycle, &e);
    let stats = second
        .setup_tuning_stats()
        .expect("tuned setup reports stats");
    assert_eq!(stats.hits + stats.misses, prepares);
    assert_eq!(stats.misses, 0, "warm re-setup must be all hits");

    // And the warm solver still converges like the cold one.
    let b = rhs(n);
    let mut x = vec![0.0; n];
    assert!(second.solve(&b, &mut x, 1e-9, 100).converged);
}

#[test]
fn per_level_formats_are_structurally_sane() {
    // Figure 1's qualitative claim: the hierarchy's operators differ
    // enough that per-level decisions vary, and the finest operator (a
    // pure 7-point stencil: constant degree, 7 true diagonals) is never
    // mistaken for a power-law COO matrix. Coarse operators may land on
    // any format — tiny half-dense matrices genuinely measure DIA-best —
    // but a DIA choice must always have survived the fill-limit guard.
    let e = engine();
    let a = laplacian_3d_7pt::<f64>(12, 12, 12);
    let cfg = AmgConfig {
        coarsening: Coarsening::Cljp,
        ..AmgConfig::default()
    };
    let solver = AmgSolver::with_smat(a, &cfg, CycleConfig::default(), &e);
    let formats = solver.compiled().a_formats();
    assert_eq!(formats.len(), solver.hierarchy().num_levels());
    assert_ne!(
        formats[0],
        smat_matrix::Format::Coo,
        "a 7-point stencil is the opposite of a power-law graph"
    );
    for (lvl, f) in formats.iter().enumerate() {
        if *f == smat_matrix::Format::Dia {
            let level_a = &solver.hierarchy().levels[lvl].a;
            assert!(
                smat_matrix::Dia::from_csr(level_a).is_ok(),
                "level {lvl} DIA choice should be convertible under the fill limit"
            );
        }
    }
}

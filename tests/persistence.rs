//! Model persistence: the off-line stage runs once and its artifact is
//! reused across processes (the paper's "reusability" property).

use smat::{Smat, SmatConfig, TrainedModel, Trainer};
use smat_matrix::gen::{generate_corpus, tridiagonal, CorpusSpec};
use smat_matrix::Csr;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("smat_persistence_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn model_round_trips_through_json() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 31));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_roundtrip.json");
    out.model.save(&path).unwrap();
    let loaded = TrainedModel::load(&path).unwrap();
    assert_eq!(loaded, out.model);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_model_makes_identical_decisions() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 32));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_decisions.json");
    out.model.save(&path).unwrap();
    let loaded = TrainedModel::load(&path).unwrap();

    let e1 = Smat::<f64>::with_config(out.model, SmatConfig::fast()).unwrap();
    let e2 = Smat::<f64>::with_config(loaded, SmatConfig::fast()).unwrap();

    // Rule-based decisions must be identical (measured fallbacks may
    // time differently, so compare on a matrix the rules should catch,
    // and otherwise compare the *predicted* formats).
    let m = tridiagonal::<f64>(4_000);
    let f = smat_features::extract_features(&m);
    let d1 = e1.model().predict(&f);
    let d2 = e2.model().predict(&f);
    assert_eq!(d1.format, d2.format);
    assert_eq!(d1.confidence, d2.confidence);
    assert_eq!(d1.matched, d2.matched);
    std::fs::remove_file(&path).ok();
}

#[test]
fn installation_round_trips_through_the_engine() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 35));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("installation_roundtrip.json");
    std::fs::remove_file(&path).ok();
    let cfg = SmatConfig {
        install_path: Some(path.clone()),
        ..SmatConfig::fast()
    };

    // First engine: no file yet, so it runs the kernel search and
    // persists the table.
    let e1 = Smat::<f64>::with_config(out.model.clone(), cfg.clone()).unwrap();
    assert!(!e1.installation_from_disk());
    assert!(path.exists(), "installation must be persisted");
    let searched = e1.installation().unwrap().clone();

    // Second engine (a fresh "process"): reloads the identical choice
    // instead of re-searching.
    let e2 = Smat::<f64>::with_config(out.model.clone(), cfg).unwrap();
    assert!(e2.installation_from_disk());
    assert_eq!(e2.installation().unwrap(), &searched);
    assert_eq!(
        e2.model().kernel_choice,
        searched.kernel_choice,
        "the engine adopts the installed kernel choice"
    );
    assert_eq!(e1.model().kernel_choice, e2.model().kernel_choice);

    // The standalone loader agrees too.
    let direct = smat::Installation::load(&path).unwrap();
    assert_eq!(direct.kernel_choice, searched.kernel_choice);
    assert_eq!(direct.precision, "double");

    // An explicit preloaded installation takes the no-disk path.
    let e3 = Smat::<f64>::with_installation(out.model, SmatConfig::fast(), direct).unwrap();
    assert_eq!(e3.model().kernel_choice, searched.kernel_choice);
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_json_is_human_inspectable() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(80, 33));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_inspect.json");
    out.model.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    // The serialized model names the attributes and classes it rules on.
    assert!(text.contains("NTdiags_ratio") || text.contains("attributes"));
    assert!(text.contains("DIA"));
    assert!(text.contains("kernel_choice"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn ruleset_renders_as_if_then_sentences() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 34));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();
    let rendered = out.model.ruleset.to_string();
    assert!(rendered.contains("Default:"));
    if !out.model.ruleset.is_empty() {
        assert!(rendered.contains("IF"));
        assert!(rendered.contains("THEN"));
    }
}

//! Model persistence: the off-line stage runs once and its artifact is
//! reused across processes (the paper's "reusability" property).

use smat::{Smat, SmatConfig, TrainedModel, Trainer};
use smat_matrix::gen::{generate_corpus, random_uniform, tridiagonal, CorpusSpec};
use smat_matrix::Csr;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("smat_persistence_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn model_round_trips_through_json() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 31));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_roundtrip.json");
    out.model.save(&path).unwrap();
    let loaded = TrainedModel::load(&path).unwrap();
    assert_eq!(loaded, out.model);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_model_makes_identical_decisions() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 32));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_decisions.json");
    out.model.save(&path).unwrap();
    let loaded = TrainedModel::load(&path).unwrap();

    let e1 = Smat::<f64>::with_config(out.model, SmatConfig::fast()).unwrap();
    let e2 = Smat::<f64>::with_config(loaded, SmatConfig::fast()).unwrap();

    // Rule-based decisions must be identical (measured fallbacks may
    // time differently, so compare on a matrix the rules should catch,
    // and otherwise compare the *predicted* formats).
    let m = tridiagonal::<f64>(4_000);
    let f = smat_features::extract_features(&m);
    let d1 = e1.model().predict(&f);
    let d2 = e2.model().predict(&f);
    assert_eq!(d1.format, d2.format);
    assert_eq!(d1.confidence, d2.confidence);
    assert_eq!(d1.matched, d2.matched);
    std::fs::remove_file(&path).ok();
}

#[test]
fn installation_round_trips_through_the_engine() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 35));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("installation_roundtrip.json");
    std::fs::remove_file(&path).ok();
    let cfg = SmatConfig {
        install_path: Some(path.clone()),
        ..SmatConfig::fast()
    };

    // First engine: no file yet, so it runs the kernel search and
    // persists the table.
    let e1 = Smat::<f64>::with_config(out.model.clone(), cfg.clone()).unwrap();
    assert!(!e1.installation_from_disk());
    assert!(path.exists(), "installation must be persisted");
    let searched = e1.installation().unwrap().clone();

    // Second engine (a fresh "process"): reloads the identical choice
    // instead of re-searching.
    let e2 = Smat::<f64>::with_config(out.model.clone(), cfg).unwrap();
    assert!(e2.installation_from_disk());
    assert_eq!(e2.installation().unwrap(), &searched);
    assert_eq!(
        e2.model().kernel_choice,
        searched.kernel_choice,
        "the engine adopts the installed kernel choice"
    );
    assert_eq!(e1.model().kernel_choice, e2.model().kernel_choice);

    // The standalone loader agrees too.
    let direct = smat::Installation::load(&path).unwrap();
    assert_eq!(direct.kernel_choice, searched.kernel_choice);
    assert_eq!(direct.precision, "double");

    // An explicit preloaded installation takes the no-disk path.
    let e3 = Smat::<f64>::with_installation(out.model, SmatConfig::fast(), direct).unwrap();
    assert_eq!(e3.model().kernel_choice, searched.kernel_choice);
    std::fs::remove_file(&path).ok();
}

#[test]
fn installation_round_trips_with_a_quarantine_set() {
    use smat_kernels::KernelId;
    use smat_matrix::Format;

    let mut install = smat::Installation::run::<f64>(&SmatConfig::fast());
    let benched = KernelId {
        op: smat_kernels::Op::Spmv,
        format: Format::Csr,
        variant: 1,
    };
    install.quarantined = vec![benched];
    let path = temp_path("installation_quarantine.json");
    install.save(&path).unwrap();
    let back = smat::Installation::load(&path).unwrap();
    assert_eq!(back, install);
    assert_eq!(back.quarantined, vec![benched]);

    // An engine adopting the artifact starts with the variant benched.
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 38));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();
    let engine = Smat::<f64>::with_installation(out.model, SmatConfig::fast(), back).unwrap();
    let report = engine.health_report();
    assert_eq!(report.quarantined_variants.len(), 1);
    assert_eq!(report.quarantined_variants[0].kernel, benched);
    assert_eq!(
        report.quarantined_variants[0].state,
        smat::BreakerState::Open
    );
    std::fs::remove_file(&path).ok();
}

/// A schema-3 artifact predates the `quarantined` field. The vendored
/// serde has no `#[serde(default)]`, so such a file fails
/// deserialization outright and `load_or_run` regenerates it at the
/// current schema instead of trusting a quarantine-blind table.
#[test]
fn schema_3_artifact_missing_the_quarantine_field_regenerates() {
    let path = temp_path("installation_schema3.json");
    std::fs::remove_file(&path).ok();
    let cfg = SmatConfig::fast();
    let install = smat::Installation::run::<f64>(&cfg);
    install.save(&path).unwrap();

    // Rewrite the sealed file as its schema-3 ancestor: version stamp
    // rolled back, `quarantined` field absent (it is the payload's last
    // field, rendered inline as an empty array at two-space indent).
    let text = std::fs::read_to_string(&path).unwrap();
    let surgically = text
        .replacen(
            &format!("\"schema\": {}", smat::INSTALL_SCHEMA_VERSION),
            "\"schema\": 3",
            1,
        )
        .replacen(",\n    \"quarantined\": []", "", 1);
    assert_ne!(text, surgically, "both surgery targets must exist");
    assert!(!surgically.contains("quarantined"));
    std::fs::write(&path, surgically).unwrap();

    assert!(
        smat::Installation::load(&path).is_err(),
        "a quarantine-less artifact must fail deserialization"
    );
    let (fresh, from_disk) = smat::Installation::load_or_run::<f64>(&path, &cfg).unwrap();
    assert!(!from_disk, "the schema-3 artifact must regenerate");
    assert_eq!(fresh.schema, smat::INSTALL_SCHEMA_VERSION);
    assert!(fresh.quarantined.is_empty());
    assert_eq!(
        smat::Installation::load(&path).unwrap().schema,
        smat::INSTALL_SCHEMA_VERSION,
        "the regenerated artifact replaces the stale file"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_json_is_human_inspectable() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(80, 33));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let path = temp_path("model_inspect.json");
    out.model.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    // The serialized model names the attributes and classes it rules on.
    assert!(text.contains("NTdiags_ratio") || text.contains("attributes"));
    assert!(text.contains("DIA"));
    assert!(text.contains("kernel_choice"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn cache_snapshot_round_trips_between_engines() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 36));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();

    let m1 = tridiagonal::<f64>(320);
    let m2 = random_uniform::<f64>(280, 280, 7, 19);
    let e1 = Smat::<f64>::with_config(out.model.clone(), SmatConfig::fast()).unwrap();
    e1.prepare(&m1);
    e1.prepare(&m2);

    let path = temp_path("cache_snapshot_roundtrip.json");
    assert_eq!(e1.save_cache(&path).unwrap(), 2);

    // A fresh engine (a new "process" with the same model) warm-starts
    // from the snapshot: both structures replay as cache hits and the
    // replayed decisions still compute correct products.
    let e2 = Smat::<f64>::with_config(out.model, SmatConfig::fast()).unwrap();
    assert_eq!(e2.load_cache(&path).unwrap(), 2);
    for m in [&m1, &m2] {
        let tuned = e2.prepare(m);
        assert!(tuned.decision().is_cached(), "got {:?}", tuned.decision());
        let x = vec![1.0; m.cols()];
        let mut y = vec![0.0; m.rows()];
        e2.spmv(&tuned, &x, &mut y).unwrap();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        assert!(
            smat_matrix::utils::max_abs_diff(&y, &expect) < 1e-10,
            "warm-started decision computes a wrong product"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Failpoint schedules over every persistence site must never leave a
/// *torn* artifact: after any scripted sequence of write/rename/save
/// failures, the file on disk is either absent or loads (checksum and
/// all), and no `.tmp` sibling survives a failed save. Requires
/// `--features failpoints`.
#[cfg(feature = "failpoints")]
mod failpoint_schedules {
    use super::*;
    use proptest::prelude::*;
    use smat::Installation;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The failpoint registry is process-global; the two property tests
    /// below serialize through this lock and reset it up front.
    static FAILPOINTS: Mutex<()> = Mutex::new(());

    fn exclusive_failpoints() -> MutexGuard<'static, ()> {
        let guard = FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner);
        smat_failpoints::reset();
        guard
    }

    /// One kernel search shared across every proptest case. Carries a
    /// non-empty quarantine set so every torn-artifact case also
    /// exercises the schema-4 field.
    fn installation() -> &'static Installation {
        static INSTALL: OnceLock<Installation> = OnceLock::new();
        INSTALL.get_or_init(|| {
            let mut install = Installation::run::<f64>(&SmatConfig::fast());
            install.quarantined = vec![smat_kernels::KernelId {
                op: smat_kernels::Op::Spmv,
                format: smat_matrix::Format::Csr,
                variant: 1,
            }];
            install
        })
    }

    /// One trained engine with two resident cache entries, shared
    /// across every proptest case.
    fn engine() -> &'static Smat<f64> {
        static ENGINE: OnceLock<Smat<f64>> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let corpus = generate_corpus::<f64>(&CorpusSpec::small(100, 37));
            let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
            let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();
            let e = Smat::<f64>::with_config(out.model, SmatConfig::fast()).unwrap();
            e.prepare(&tridiagonal::<f64>(180));
            e.prepare(&random_uniform::<f64>(220, 220, 6, 23));
            e
        })
    }

    /// A random finite schedule: 1–3 steps of `fail`/`off`/`delay(1)`
    /// with small repeat counts, e.g. `2*fail->1*off->1*delay(1)`.
    /// Finite schedules exhaust to `off`, so every case also exercises
    /// the recovery path.
    fn arb_spec() -> impl Strategy<Value = String> {
        proptest::collection::vec((1u64..3, 0usize..3), 1..4).prop_map(|steps| {
            steps
                .into_iter()
                .map(|(n, action)| {
                    let action = ["fail", "off", "delay(1)"][action];
                    format!("{n}*{action}")
                })
                .collect::<Vec<_>>()
                .join("->")
        })
    }

    fn tmp_sibling(path: &std::path::Path) -> std::path::PathBuf {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        std::path::PathBuf::from(s)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn install_artifacts_are_absent_or_valid_never_torn(
            (w1, r1, s1) in (arb_spec(), arb_spec(), arb_spec()),
            (w2, r2, s2) in (arb_spec(), arb_spec(), arb_spec()),
        ) {
            let _serial = exclusive_failpoints();
            let path = temp_path("fp_install_prop.json");
            std::fs::remove_file(&path).ok();
            let install = installation();

            // Fresh path: a chaos-scripted save either lands a fully
            // valid artifact or leaves nothing.
            {
                let _g1 = smat_failpoints::scoped("persist.write", &w1).unwrap();
                let _g2 = smat_failpoints::scoped("persist.rename", &r1).unwrap();
                let _g3 = smat_failpoints::scoped("install.save", &s1).unwrap();
                let _ = install.save(&path);
            }
            if path.exists() {
                prop_assert!(Installation::load(&path).is_ok(), "torn artifact");
            }
            prop_assert!(!tmp_sibling(&path).exists(), "leaked tmp file");

            // Overwrite path: with a valid artifact on disk, a failed
            // re-save must never destroy it (the rename is atomic).
            install.save(&path).unwrap();
            {
                let _g1 = smat_failpoints::scoped("persist.write", &w2).unwrap();
                let _g2 = smat_failpoints::scoped("persist.rename", &r2).unwrap();
                let _g3 = smat_failpoints::scoped("install.save", &s2).unwrap();
                let _ = install.save(&path);
            }
            let survivor = Installation::load(&path);
            prop_assert!(survivor.is_ok(), "existing artifact destroyed");
            prop_assert_eq!(
                &survivor.unwrap().quarantined,
                &install.quarantined,
                "the quarantine set must survive a failed re-save"
            );
            prop_assert!(!tmp_sibling(&path).exists(), "leaked tmp file");
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn cache_snapshots_are_absent_or_valid_never_torn(
            (w, r, c) in (arb_spec(), arb_spec(), arb_spec()),
        ) {
            let _serial = exclusive_failpoints();
            let path = temp_path("fp_cache_prop.json");
            std::fs::remove_file(&path).ok();
            let e = engine();
            {
                let _g1 = smat_failpoints::scoped("persist.write", &w).unwrap();
                let _g2 = smat_failpoints::scoped("persist.rename", &r).unwrap();
                let _g3 = smat_failpoints::scoped("cache.persist", &c).unwrap();
                let _ = e.save_cache(&path);
            }
            if path.exists() {
                // Checksum and precision verification both pass: the
                // snapshot is whole.
                prop_assert!(e.load_cache(&path).is_ok(), "torn snapshot");
            }
            prop_assert!(!tmp_sibling(&path).exists(), "leaked tmp file");
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn ruleset_renders_as_if_then_sentences() {
    let corpus = generate_corpus::<f64>(&CorpusSpec::small(120, 34));
    let matrices: Vec<&Csr<f64>> = corpus.iter().map(|e| &e.matrix).collect();
    let out = Trainer::new(SmatConfig::fast()).train(&matrices).unwrap();
    let rendered = out.model.ruleset.to_string();
    assert!(rendered.contains("Default:"));
    if !out.model.ruleset.is_empty() {
        assert!(rendered.contains("IF"));
        assert!(rendered.contains("THEN"));
    }
}

//! Property-based tests over the learner: invariants that must hold for
//! any dataset, and robustness of the Matrix Market parser on arbitrary
//! input.

use proptest::prelude::*;
use smat_learn::{Dataset, DecisionTree, RuleSet, TreeParams};
use smat_matrix::io::read_matrix_market;

/// Strategy: a random dataset with 2 attributes and 2-3 classes.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        2usize..4,
        proptest::collection::vec((0i32..50, 0i32..50, 0usize..3), 5..80),
    )
        .prop_map(|(n_classes, rows)| {
            let mut ds = Dataset::new(
                vec!["a".into(), "b".into()],
                (0..n_classes).map(|c| format!("c{c}")).collect(),
            );
            for (a, b, label) in rows {
                ds.push(vec![a as f64, b as f64], label % n_classes)
                    .unwrap();
            }
            ds
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_beats_or_ties_majority_class(ds in arb_dataset()) {
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let majority = ds.majority_class();
        let baseline = ds
            .iter()
            .filter(|r| r.label == majority)
            .count() as f64 / ds.len() as f64;
        // On training data a fitted tree can never do worse than always
        // answering the majority class (the root starts there and splits
        // only improve training fit; pruning collapses back to majority).
        prop_assert!(tree.accuracy(&ds) + 1e-12 >= baseline);
    }

    #[test]
    fn unpruned_tree_is_at_least_as_large(ds in arb_dataset()) {
        let pruned = DecisionTree::fit(&ds, TreeParams::default());
        let unpruned = DecisionTree::fit(
            &ds,
            TreeParams { prune_confidence: 1.0, ..TreeParams::default() },
        );
        prop_assert!(pruned.node_count() <= unpruned.node_count());
        prop_assert!(pruned.leaf_count() >= 1);
        prop_assert!(pruned.depth() <= TreeParams::default().max_depth);
    }

    #[test]
    fn predictions_are_deterministic_and_in_range(ds in arb_dataset()) {
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let rules = RuleSet::from_tree(&tree, &ds);
        for r in ds.iter() {
            let c1 = tree.predict(&r.values);
            let c2 = tree.predict(&r.values);
            prop_assert_eq!(c1, c2);
            prop_assert!(c1 < ds.classes().len());
            let (rc, _) = rules.classify(&r.values);
            prop_assert!(rc < ds.classes().len());
        }
    }

    #[test]
    fn rule_statistics_match_their_definition(ds in arb_dataset()) {
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let rules = RuleSet::from_tree(&tree, &ds);
        for rule in &rules.rules {
            let covered = ds.iter().filter(|r| rule.matches(&r.values)).count();
            let correct = ds
                .iter()
                .filter(|r| rule.matches(&r.values) && r.label == rule.class)
                .count();
            prop_assert_eq!(rule.covered, covered);
            prop_assert_eq!(rule.correct, correct);
            prop_assert!(rule.confidence() >= 0.0 && rule.confidence() <= 1.0);
        }
    }

    #[test]
    fn matrix_market_parser_never_panics(input in "\\PC*") {
        // Any garbage must produce Ok or Err, never a panic.
        let _ = read_matrix_market::<f64, _>(input.as_bytes());
    }

    #[test]
    fn matrix_market_parser_handles_binaryish_input(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_matrix_market::<f32, _>(&bytes[..]);
    }
}

//! Partition-validity suite for the load-balanced planning tier: the
//! nnz-balanced row splitter and the merge-path decomposition must
//! produce *valid partitions* — every row owned exactly once, bounds
//! monotone — and the balanced splitter must actually bound per-chunk
//! work, on exactly the inputs where uniform row splits fail: empty
//! rows, a single dense row dominating the nonzero count, and
//! power-law degree distributions.
//!
//! The quantitative contract pinned here: a balanced chunk carries at
//! most `ideal + max_row_nnz` nonzeros (`ideal = ceil(nnz / parts)`),
//! which collapses to the "within 2x of ideal" guarantee whenever no
//! single row exceeds the ideal share.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use smat_kernels::partition::{merge_path_bounds, nnz_balanced_bounds, MAX_MERGE_CHUNKS};
use smat_matrix::gen::power_law;
use smat_matrix::Csr;

/// Asserts `bounds` is a monotone cover of `0..rows`.
fn assert_valid_partition(bounds: &[usize], rows: usize, what: &str) {
    assert!(bounds.len() >= 2, "{what}: at least [0, rows]");
    assert_eq!(bounds[0], 0, "{what}: must start at 0");
    assert_eq!(*bounds.last().unwrap(), rows, "{what}: must end at rows");
    for w in bounds.windows(2) {
        assert!(w[0] <= w[1], "{what}: bounds must be non-decreasing");
    }
}

/// Per-chunk nonzero counts implied by row bounds.
fn chunk_nnz(m: &Csr<f64>, bounds: &[usize]) -> Vec<usize> {
    let ptr = m.row_ptr();
    bounds.windows(2).map(|w| ptr[w[1]] - ptr[w[0]]).collect()
}

fn max_row_nnz(m: &Csr<f64>) -> usize {
    let ptr = m.row_ptr();
    (0..m.rows())
        .map(|r| ptr[r + 1] - ptr[r])
        .max()
        .unwrap_or(0)
}

/// Checks the full nnz-balanced contract for one (matrix, parts) pair.
fn check_nnz_balanced(m: &Csr<f64>, parts: usize, what: &str) {
    let bounds = nnz_balanced_bounds(m, parts);
    assert_valid_partition(&bounds, m.rows(), what);
    let ideal = m.nnz().div_ceil(parts.min(m.rows().max(1)));
    let cap = ideal + max_row_nnz(m);
    for (i, c) in chunk_nnz(m, &bounds).into_iter().enumerate() {
        assert!(
            c <= cap,
            "{what}: chunk {i} carries {c} nnz, cap is ideal {ideal} + max row"
        );
    }
    // The headline guarantee: when no row dominates, no chunk is more
    // than twice the ideal share.
    if max_row_nnz(m) <= ideal {
        for c in chunk_nnz(m, &bounds) {
            assert!(
                c <= 2 * ideal,
                "{what}: chunk exceeds 2x ideal ({c} vs {ideal})"
            );
        }
    }
}

/// Checks the merge-path contract for one (matrix, parts) pair.
fn check_merge_path(m: &Csr<f64>, parts: usize, what: &str) {
    let (entry_bounds, row_bounds) = merge_path_bounds(m, parts);
    assert_eq!(
        entry_bounds.len(),
        row_bounds.len(),
        "{what}: aligned bounds"
    );
    assert_valid_partition(&row_bounds, m.rows(), what);
    assert_eq!(entry_bounds[0], 0, "{what}: entries start at 0");
    assert_eq!(
        *entry_bounds.last().unwrap(),
        m.nnz(),
        "{what}: entries end at nnz"
    );
    let chunks = entry_bounds.len() - 1;
    assert!(
        chunks <= parts.min(MAX_MERGE_CHUNKS),
        "{what}: width respected"
    );
    // Entry ranges are equal to within one entry — the whole point of
    // cutting the stream irrespective of row boundaries.
    let lo = m.nnz() / chunks;
    for w in entry_bounds.windows(2) {
        assert!(w[0] <= w[1], "{what}: entry bounds non-decreasing");
        let width = w[1] - w[0];
        assert!(
            width == lo || width == lo + 1,
            "{what}: entry chunk width {width} not within 1 of {lo}"
        );
    }
    // Write ownership: a chunk owns exactly the rows whose first entry
    // falls in its range.
    let ptr = m.row_ptr();
    for i in 0..chunks {
        for (r, &start) in ptr
            .iter()
            .enumerate()
            .take(row_bounds[i + 1])
            .skip(row_bounds[i])
        {
            assert!(
                (i + 1 == chunks && start >= entry_bounds[i])
                    || (entry_bounds[i]..entry_bounds[i + 1]).contains(&start),
                "{what}: row {r} owned by chunk {i} but starts at {start}"
            );
        }
    }
}

/// A matrix whose *first row* holds well over half the nonzeros — the
/// regression shape for the pre-balanced planner, where an equal-rows
/// split serializes the whole hot row into chunk 0 alongside a share
/// of the tail. The balanced splitter must isolate it.
fn hot_first_row() -> Csr<f64> {
    let mut triplets: Vec<(usize, usize, f64)> = (0..60).map(|c| (0usize, c, 1.0)).collect();
    for r in 1..21 {
        triplets.push((r, r, 2.0));
        triplets.push((r, 40 + r, 0.5));
    }
    Csr::from_triplets(21, 64, &triplets).expect("in-bounds")
}

#[test]
fn hot_first_row_is_isolated() {
    let m = hot_first_row();
    assert!(
        max_row_nnz(&m) * 2 > m.nnz(),
        "shape premise: row 0 > 50% of nnz"
    );
    for parts in [2usize, 4, 8] {
        let bounds = nnz_balanced_bounds(&m, parts);
        assert_valid_partition(&bounds, m.rows(), "hot row");
        assert_eq!(
            bounds[1], 1,
            "parts={parts}: the dominant first row must form its own chunk"
        );
        check_nnz_balanced(&m, parts, "hot row");
        // Merge-path goes further: interior chunks that land wholly
        // inside the hot row own zero rows and contribute carries only.
        // (At parts=2 each 50-entry range still straddles a row start,
        // so the zero-row shape first appears at 4 chunks.)
        if parts >= 4 {
            let (_, row_bounds) = merge_path_bounds(&m, parts);
            assert!(
                row_bounds.windows(2).any(|w| w[0] == w[1]),
                "parts={parts}: some merge chunk should sit inside the hot row"
            );
        }
        check_merge_path(&m, parts, "hot row");
    }
}

#[test]
fn deterministic_archetypes_partition_validly() {
    let empty_rows = Csr::<f64>::from_triplets(
        40,
        40,
        &[(3, 1, 1.0), (3, 5, 2.0), (17, 0, 1.0), (39, 39, 4.0)],
    )
    .expect("in-bounds");
    let single_dense = Csr::<f64>::from_triplets(
        8,
        200,
        &(0..150).map(|c| (4usize, c, 1.0)).collect::<Vec<_>>(),
    )
    .expect("in-bounds");
    let all_empty = Csr::<f64>::from_triplets(12, 12, &[]).expect("empty");
    let skew = power_law::<f64>(500, 120, 2.0, 11);
    for (name, m) in [
        ("empty_rows", &empty_rows),
        ("single_dense_row", &single_dense),
        ("all_empty", &all_empty),
        ("power_law", &skew),
    ] {
        for parts in [1usize, 2, 3, 4, 7, 16, 1000] {
            check_nnz_balanced(m, parts, name);
            check_merge_path(m, parts, name);
        }
    }
}

/// Strategy: an arbitrary small sparse matrix, biased toward skew by
/// mapping some entries onto a handful of hot rows.
fn arb_matrix() -> impl PropStrategy<Value = Csr<f64>> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, any::<bool>(), -60i32..60)
            .prop_map(move |(r, c, hot, v)| (if hot { r % 3 } else { r }, c, v as f64 / 7.0));
        proptest::collection::vec(entry, 0..160).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both splitters yield valid, bounded partitions on arbitrary
    /// shapes — including the all-empty, single-row and 1-column
    /// matrices proptest gravitates to.
    #[test]
    fn partitions_stay_valid_on_arbitrary_matrices(m in arb_matrix(), parts in 1usize..12) {
        check_nnz_balanced(&m, parts, "arbitrary");
        check_merge_path(&m, parts, "arbitrary");
    }
}

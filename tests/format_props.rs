//! Property-based tests over the storage formats and kernels: for
//! arbitrary sparse matrices, every conversion round-trips and every
//! kernel variant computes the same product as the reference CSR SpMV.

use proptest::prelude::*;
use smat_features::extract_features;
use smat_kernels::KernelLibrary;
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{AnyMatrix, Coo, Csr, Format};

/// Strategy: an arbitrary small sparse matrix as (rows, cols, triplets).
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -100i32..100).prop_map(|(r, c, v)| (r, c, v as f64 / 7.0));
        proptest::collection::vec(entry, 0..120).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

/// Strategy: a dense-ish vector matching a width.
fn arb_x(cols: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50i32..50, cols)
        .prop_map(|v| v.into_iter().map(|i| i as f64 / 3.0).collect())
}

/// The shrunk counterexample persisted in `format_props.proptest-regressions`
/// (seed `cc 74b4b98c…`), pinned as an explicit case: a short-and-wide
/// matrix with an explicitly stored zero. The zero must round-trip
/// through COO verbatim, be pruned by DIA/ELL/HYB, and never perturb a
/// kernel's product.
fn regression_case_74b4b98c() -> Csr<f64> {
    let cols: [usize; 35] = [
        4, 6, 8, 16, 17, 18, 21, 22, 23, 27, 29, 30, 31, // row 0
        4, 5, 7, 19, 25, 26, 27, 31, // row 1
        2, 5, 6, 8, 9, 11, 12, 17, 20, 21, 24, 25, 27, 31, // row 2
    ];
    let sevenths: [f64; 35] = [
        -2.0, -20.0, -62.0, 89.0, -123.0, -77.0, 79.0, 77.0, 2.0, -59.0, -98.0, 18.0, 38.0, //
        38.0, 123.0, 84.0, -74.0, -74.0, 67.0, 61.0, 84.0, //
        -43.0, -58.0, 97.0, -43.0, 146.0, -144.0, 32.0, 79.0, 66.0, 93.0, 47.0, 0.0, -21.0, -12.0,
    ];
    let row_of = |k: usize| {
        if k < 13 {
            0
        } else if k < 21 {
            1
        } else {
            2
        }
    };
    let triplets: Vec<(usize, usize, f64)> = (0..35)
        .map(|k| (row_of(k), cols[k], sevenths[k] / 7.0))
        .collect();
    Csr::from_triplets(3, 33, &triplets).unwrap()
}

#[test]
fn regression_shrunk_case_74b4b98c_round_trips_and_multiplies() {
    let m = regression_case_74b4b98c();
    assert_eq!(m.nnz(), 35);
    assert_eq!(m.get(2, 25), Some(0.0), "the explicit zero is stored");

    // Conversion contract, exactly as conversions_round_trip asserts it.
    assert_eq!(Coo::from_csr(&m).to_csr(), m);
    let expected = m.prune(0.0);
    for format in [Format::Dia, Format::Ell, Format::Hyb] {
        if let Ok(any) = AnyMatrix::convert_from_csr(&m, format) {
            assert_eq!(any.to_csr(), expected, "{format} round trip");
        }
    }

    // Kernel contract, over the seeds the shrink search ran with.
    let lib = KernelLibrary::<f64>::new();
    for seed in [0u64, 1, 7, 999] {
        let x: Vec<f64> = (0..m.cols())
            .map(|i| (((i as u64 + 1) * (seed + 3)) % 17) as f64 - 8.0)
            .collect();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                continue;
            };
            for v in 0..lib.variant_count(format) {
                let mut y = vec![f64::NAN; m.rows()];
                lib.run(&any, v, &x, &mut y);
                assert!(
                    max_abs_diff(&y, &expect) < 1e-9,
                    "{format} variant {v} diverges on seed {seed}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conversions_round_trip(m in arb_matrix()) {
        // COO always converts and preserves explicit zeros exactly.
        prop_assert_eq!(Coo::from_csr(&m).to_csr(), m.clone());
        // DIA/ELL may refuse on fill blow-up (nothing to check then) and
        // documentedly drop explicit stored zeros on the way back, so
        // compare against the zero-pruned matrix.
        let expected = m.prune(0.0);
        for format in [Format::Dia, Format::Ell, Format::Hyb] {
            if let Ok(any) = AnyMatrix::convert_from_csr(&m, format) {
                prop_assert_eq!(any.to_csr(), expected.clone(), "{} round trip", format);
            }
        }
    }

    #[test]
    fn every_kernel_matches_reference(m in arb_matrix(), seed in 0u64..1000) {
        let lib = KernelLibrary::<f64>::new();
        // Deterministic pseudo-random x from the seed.
        let x: Vec<f64> = (0..m.cols())
            .map(|i| (((i as u64 + 1) * (seed + 3)) % 17) as f64 - 8.0)
            .collect();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else { continue };
            for v in 0..lib.variant_count(format) {
                let mut y = vec![f64::NAN; m.rows()];
                lib.run(&any, v, &x, &mut y);
                prop_assert!(
                    max_abs_diff(&y, &expect) < 1e-9,
                    "{} variant {} diverges", format, v
                );
            }
        }
    }

    #[test]
    fn transpose_is_involutive(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_spmv_is_adjoint(m in arb_matrix()) {
        // <A x, y> == <x, A^T y> for arbitrary x, y.
        let x: Vec<f64> = (0..m.cols()).map(|i| (i % 5) as f64 - 2.0).collect();
        let yv: Vec<f64> = (0..m.rows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut ax = vec![0.0; m.rows()];
        m.spmv(&x, &mut ax).unwrap();
        let at = m.transpose();
        let mut aty = vec![0.0; m.cols()];
        at.spmv(&yv, &mut aty).unwrap();
        let lhs: f64 = ax.iter().zip(&yv).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn features_are_well_defined(m in arb_matrix()) {
        let f = extract_features(&m);
        prop_assert_eq!(f.m as usize, m.rows());
        prop_assert_eq!(f.n as usize, m.cols());
        prop_assert_eq!(f.nnz as usize, m.nnz());
        prop_assert!(f.ntdiags_ratio >= 0.0 && f.ntdiags_ratio <= 1.0);
        prop_assert!(f.er_dia >= 0.0 && f.er_dia <= 1.0 + 1e-12);
        prop_assert!(f.er_ell >= 0.0 && f.er_ell <= 1.0 + 1e-12);
        prop_assert!(f.max_rd >= f.aver_rd - 1e-12);
        prop_assert!(f.var_rd >= 0.0);
        prop_assert!(f.r > 0.0);
    }

    #[test]
    fn spmv_is_linear((m, x) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols))
    })) {
        let mut y1 = vec![0.0; m.rows()];
        m.spmv(&x, &mut y1).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let mut y2 = vec![0.0; m.rows()];
        m.spmv(&x2, &mut y2).unwrap();
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((2.0 * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}

//! Differential suite for precomputed execution plans: replaying a
//! frozen [`ExecPlan`] must be *bitwise* indistinguishable from the
//! legacy partition-per-call dispatch, for every builtin variant of
//! every format — otherwise caching the plan inside a tuning-cache
//! entry would silently change results between a cold and a warm run.
//!
//! Also pinned here: which variants are bit-identical to the serial
//! basic kernel (all parallel ones except the unrolled/blocked
//! accumulator shapes), stale plans staying correct, and user-registered
//! kernels ignoring plans entirely.

use proptest::prelude::*;
// `smat_kernels::Strategy` (the optimization lattice) shadows the
// glob-imported proptest trait of the same name; re-import the trait
// under an alias so its methods stay resolvable.
use proptest::strategy::Strategy as PropStrategy;
use smat_kernels::{ExecPlan, KernelId, KernelLibrary, Strategy, StrategySet};
use smat_matrix::gen::{
    banded, block_sparse, fixed_degree, laplacian_2d_9pt, power_law, random_skewed, random_uniform,
    tridiagonal,
};
use smat_matrix::{AnyMatrix, Csr, Format, Scalar};

/// A corpus spanning the generator archetypes, small enough to sweep
/// every (format, variant) pair in both precisions.
fn corpus<T: Scalar>() -> Vec<(&'static str, Csr<T>)> {
    vec![
        ("tridiagonal", tridiagonal(193)),
        ("banded", banded(240, &[-9, -1, 0, 1, 9], 0.8, 21)),
        ("fixed_degree", fixed_degree(150, 140, 5, 1, 22)),
        ("random_square", random_uniform(200, 200, 7, 23)),
        ("random_wide", random_uniform(90, 400, 4, 24)),
        ("power_law", power_law(300, 60, 2.0, 25)),
        ("skewed", random_skewed(250, 250, 4, 0.04, 30, 26)),
        ("block", block_sparse(192, 16, 3, 27)),
        ("stencil", laplacian_2d_9pt(13, 11)),
    ]
}

fn test_vector<T: Scalar>(cols: usize) -> Vec<T> {
    (0..cols)
        .map(|i| T::from_f64(((i % 13) as f64 - 6.0) * 0.4375))
        .collect()
}

/// `run_planned` with a fresh plan must produce bit-for-bit the same
/// output as `run` — same partition geometry, same accumulation order.
fn sweep_planned_equals_unplanned<T: Scalar>() {
    let lib = KernelLibrary::<T>::new();
    for (name, m) in corpus::<T>() {
        let x = test_vector::<T>(m.cols());
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                continue; // conversion refused (fill limits)
            };
            for v in 0..lib.variant_count(format) {
                let plan = lib.plan_for(
                    &any,
                    KernelId {
                        op: smat_kernels::Op::Spmv,
                        format,
                        variant: v,
                    },
                );
                let mut unplanned = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut unplanned);
                let mut planned = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                assert!(
                    planned == unplanned,
                    "{name}: {format} variant {v} ({}) planned != unplanned",
                    lib.variants(format)[v].name
                );
            }
        }
    }
}

#[test]
fn planned_equals_unplanned_bitwise_f64() {
    sweep_planned_equals_unplanned::<f64>();
}

#[test]
fn planned_equals_unplanned_bitwise_f32() {
    sweep_planned_equals_unplanned::<f32>();
}

/// Row-chunking never reorders a row's accumulation, so every parallel
/// variant that keeps the plain accumulator shape (no 4-way unroll, no
/// register blocking) is bit-identical to its format's serial basic
/// kernel — the property that makes plan caching safe to mix with
/// serial fallbacks (degraded mode) on the same matrix.
#[test]
fn plain_parallel_variants_are_bit_identical_to_serial_basic() {
    let lib = KernelLibrary::<f64>::new();
    let mut checked = 0usize;
    for (name, m) in corpus::<f64>() {
        let x = test_vector::<f64>(m.cols());
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                continue;
            };
            let mut basic = vec![f64::NAN; m.rows()];
            lib.run(&any, 0, &x, &mut basic);
            for (v, info) in lib.variants(format).into_iter().enumerate() {
                if !info.strategies.contains(Strategy::Parallel)
                    || info.strategies.contains(Strategy::Unroll)
                    || info.strategies.contains(Strategy::Block)
                    // Merge-path splits rows mid-stream and reassociates
                    // their sums, so it matches basic bitwise only on
                    // exactly-representable values — covered by the
                    // dyadic sweeps below, not by this corpus.
                    || info.strategies.contains(Strategy::Merge)
                {
                    continue;
                }
                let plan = lib.plan_for(
                    &any,
                    KernelId {
                        op: smat_kernels::Op::Spmv,
                        format,
                        variant: v,
                    },
                );
                let mut planned = vec![f64::NAN; m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                assert!(
                    planned == basic,
                    "{name}: {} not bit-identical to {} basic",
                    info.name,
                    format
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 20, "the sweep must actually cover variants");
}

/// A stale plan (sized for a different thread count) stays *correct* —
/// its chunks still cover every row exactly once — it is merely
/// mis-sized. The runtime rebuilds stale plans opportunistically, but
/// correctness must never depend on that happening.
#[test]
fn stale_plans_stay_correct() {
    let lib = KernelLibrary::<f64>::new();
    let m = random_uniform::<f64>(300, 300, 8, 77);
    let any = AnyMatrix::Csr(m.clone());
    let x = test_vector::<f64>(m.cols());
    for v in 0..lib.variant_count(Format::Csr) {
        let id = KernelId {
            op: smat_kernels::Op::Spmv,
            format: Format::Csr,
            variant: v,
        };
        let mut plan = lib.plan_for(&any, id);
        let fresh_serial = plan.is_serial();
        plan.threads += 3; // as if the cache file came from another host
        assert_eq!(plan.is_stale(), !fresh_serial);
        let mut expect = vec![f64::NAN; m.rows()];
        lib.run(&any, v, &x, &mut expect);
        let mut y = vec![f64::NAN; m.rows()];
        lib.run_planned(&any, v, &plan, &x, &mut y);
        assert!(y == expect, "variant {v} wrong under a stale plan");
    }
}

/// User-registered kernels have no planned path: `run_planned` must
/// dispatch their raw fn pointer and ignore the plan entirely, even a
/// nonsensical one — the registry cannot know how a foreign kernel
/// partitions its work.
#[test]
fn registered_kernels_ignore_the_plan() {
    let mut lib = KernelLibrary::<f64>::new();
    fn doubled(m: &Csr<f64>, x: &[f64], y: &mut [f64]) {
        let mut tmp = vec![0.0; y.len()];
        m.spmv(x, &mut tmp).expect("dims checked by caller");
        for (o, t) in y.iter_mut().zip(&tmp) {
            *o = 2.0 * t;
        }
    }
    let id = lib.register_csr(
        "csr_doubled",
        [Strategy::Parallel].into_iter().collect::<StrategySet>(),
        doubled,
    );
    let m = random_uniform::<f64>(120, 120, 6, 5);
    let any = AnyMatrix::Csr(m.clone());
    let x = test_vector::<f64>(m.cols());
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).unwrap();
    for v in expect.iter_mut() {
        *v *= 2.0;
    }
    // plan_for refuses to build a fan-out plan for a foreign kernel...
    let plan = lib.plan_for(&any, id);
    assert!(plan.is_serial());
    // ...and run_planned ignores even a malformed plan for it.
    let garbage = ExecPlan {
        bounds: vec![0, 7, 3],
        entry_bounds: None,
        threads: 99,
        policy: smat_kernels::ChunkPolicy::EqualRows,
    };
    let mut y = vec![f64::NAN; m.rows()];
    lib.run_planned(&any, id.variant, &garbage, &x, &mut y);
    assert!(y == expect, "registered kernel must run its raw fn pointer");
}

/// Quantizes a matrix's values to multiples of 0.25. Together with an
/// `x` of multiples of 0.5, every product is a small dyadic rational
/// and every partial sum is exactly representable in both precisions —
/// so *any* accumulation order (4-way, 8-way, AVX2 lanes, register
/// blocks) must produce bit-for-bit the reference result. This is what
/// lets the sweep below compare unrolled/SIMD/BCSR variants against
/// `reference::csrgemv_seq` with `==` instead of a tolerance.
fn dyadic<T: Scalar>(mut m: Csr<T>) -> Csr<T> {
    for v in m.values_mut() {
        let q = (v.to_f64() * 4.0).round().clamp(-32.0, 32.0) / 4.0;
        *v = T::from_f64(if q == 0.0 { 0.25 } else { q });
    }
    m
}

fn dyadic_vector<T: Scalar>(cols: usize) -> Vec<T> {
    (0..cols)
        .map(|i| T::from_f64(((i % 9) as f64 - 4.0) * 0.5))
        .collect()
}

/// Every variant of every format — including the wide-unroll, SIMD and
/// register-blocked BCSR tiers added for the implementation-variant
/// scoreboard — is bitwise identical to the sequential CSR reference
/// on exactly-representable inputs, both planned and unplanned.
///
/// This is the reduction-order contract made testable: the split
/// accumulators sum *disjoint* subsets whose partial sums are exact
/// here, so a variant that reassociated into a different (rounding)
/// order, or an AVX2 path that used FMA, would diverge bitwise.
fn sweep_bitwise_vs_reference<T: Scalar>() {
    let lib = KernelLibrary::<T>::new();
    let shapes: Vec<(&'static str, Csr<T>)> = vec![
        ("tridiagonal", dyadic(tridiagonal(97))),
        ("banded", dyadic(banded(120, &[-5, -1, 0, 1, 5], 0.9, 31))),
        ("fixed_degree", dyadic(fixed_degree(96, 90, 5, 1, 32))),
        // nnz per row not a multiple of 4 or 8: exercises the scalar
        // tails of every unrolled and vector inner loop.
        ("tail_3", dyadic(fixed_degree(64, 64, 3, 0, 33))),
        ("tail_7", dyadic(fixed_degree(64, 64, 7, 0, 34))),
        ("tail_9", dyadic(fixed_degree(64, 64, 9, 0, 35))),
        ("random", dyadic(random_uniform(130, 130, 6, 36))),
        ("power_law", dyadic(power_law(150, 40, 2.0, 37))),
        ("skewed", dyadic(random_skewed(110, 110, 4, 0.05, 20, 38))),
        ("block2", dyadic(block_sparse(96, 2, 6, 39))),
        ("block4", dyadic(block_sparse(96, 4, 3, 40))),
        // Degenerate shapes: single row, single column, empty rows.
        ("one_by_n", dyadic(fixed_degree(1, 300, 11, 0, 41))),
        (
            "n_by_one",
            dyadic(
                Csr::from_triplets(
                    300,
                    1,
                    &[
                        (0, 0, T::from_f64(1.0)),
                        (7, 0, T::from_f64(1.0)),
                        (299, 0, T::from_f64(1.0)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
        (
            "empty_rows",
            dyadic(
                Csr::from_triplets(
                    50,
                    50,
                    &[
                        (0, 3, T::from_f64(1.0)),
                        (10, 10, T::from_f64(2.0)),
                        (10, 40, T::from_f64(1.5)),
                        (49, 0, T::from_f64(0.5)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
    ];
    let mut new_tier_checked = 0usize;
    for (name, m) in shapes {
        let x = dyadic_vector::<T>(m.cols());
        let mut reference = vec![T::from_f64(f64::NAN); m.rows()];
        smat_kernels::reference::csrgemv_seq(&m, &x, &mut reference);
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr_with(
                &m,
                format,
                &smat_matrix::ConversionLimits::unlimited(),
            ) else {
                continue;
            };
            for (v, info) in lib.variants(format).into_iter().enumerate() {
                let mut y = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut y);
                assert!(
                    y == reference,
                    "{name}: {} not bitwise-equal to the sequential reference",
                    info.name
                );
                let plan = lib.plan_for(
                    &any,
                    KernelId {
                        op: smat_kernels::Op::Spmv,
                        format,
                        variant: v,
                    },
                );
                let mut planned = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                assert!(
                    planned == reference,
                    "{name}: {} planned diverges",
                    info.name
                );
                if info.strategies.contains(Strategy::Wide)
                    || info.strategies.contains(Strategy::Simd)
                    || matches!(format, Format::Bcsr2 | Format::Bcsr4)
                {
                    new_tier_checked += 1;
                }
            }
        }
    }
    assert!(
        new_tier_checked >= 100,
        "the sweep must cover the new variant tier, got {new_tier_checked}"
    );
}

/// The merge-path kernel at explicit plan widths. The generic sweeps
/// above only exercise the width `plan_for` picks on this machine;
/// here `build_plan_sized` pins widths 1, 2 and 4 — the realized
/// "thread counts" of the satellite contract — over the degenerate
/// dyadic shapes where mid-row splits actually occur (empty rows, one
/// long row, one column, nnz tails), and demands bit-identity with the
/// serial `csr_basic` output. The serial fix-up that adds chunk
/// carries in ascending order is what makes this hold at any width.
fn sweep_merge_matches_basic_across_widths<T: Scalar>() {
    use smat_kernels::ChunkPolicy;
    let lib = KernelLibrary::<T>::new();
    let merge = lib
        .variants(Format::Csr)
        .iter()
        .position(|info| info.name == "csr_merge")
        .expect("csr_merge is a builtin CSR variant");
    let shapes: Vec<(&'static str, Csr<T>)> = vec![
        ("one_by_n", dyadic(fixed_degree(1, 300, 11, 0, 41))),
        (
            "n_by_one",
            dyadic(
                Csr::from_triplets(
                    300,
                    1,
                    &[
                        (0, 0, T::from_f64(1.0)),
                        (7, 0, T::from_f64(1.0)),
                        (299, 0, T::from_f64(1.0)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
        (
            "empty_rows",
            dyadic(
                Csr::from_triplets(
                    50,
                    50,
                    &[
                        (0, 3, T::from_f64(1.0)),
                        (10, 10, T::from_f64(2.0)),
                        (10, 40, T::from_f64(1.5)),
                        (49, 0, T::from_f64(0.5)),
                    ],
                )
                .expect("in-bounds"),
            ),
        ),
        ("tail_3", dyadic(fixed_degree(64, 64, 3, 0, 33))),
        ("tail_7", dyadic(fixed_degree(64, 64, 7, 0, 34))),
        ("tail_9", dyadic(fixed_degree(64, 64, 9, 0, 35))),
        ("power_law", dyadic(power_law(150, 40, 2.0, 37))),
        ("empty", Csr::from_triplets(8, 8, &[]).expect("empty")),
    ];
    for (name, m) in shapes {
        let any = AnyMatrix::Csr(m.clone());
        let x = dyadic_vector::<T>(m.cols());
        let mut basic = vec![T::from_f64(f64::NAN); m.rows()];
        lib.run(&any, 0, &x, &mut basic);
        for width in [1usize, 2, 4] {
            let plan = lib.build_plan_sized(&any, ChunkPolicy::MergePath, width);
            assert_eq!(
                plan.policy,
                ChunkPolicy::MergePath,
                "{name}: policy recorded"
            );
            assert!(plan.chunks() <= width, "{name}: width overshoot");
            let mut y = vec![T::from_f64(f64::NAN); m.rows()];
            lib.run_planned(&any, merge, &plan, &x, &mut y);
            assert!(
                y == basic,
                "{name}: csr_merge at width {width} not bit-identical to csr_basic"
            );
        }
    }
}

#[test]
fn merge_path_matches_basic_across_widths_f64() {
    sweep_merge_matches_basic_across_widths::<f64>();
}

#[test]
fn merge_path_matches_basic_across_widths_f32() {
    sweep_merge_matches_basic_across_widths::<f32>();
}

#[test]
fn all_variants_bitwise_match_reference_f64() {
    sweep_bitwise_vs_reference::<f64>();
}

#[test]
fn all_variants_bitwise_match_reference_f32() {
    sweep_bitwise_vs_reference::<f32>();
}

/// The AVX2 backend must be bit-identical to the portable unrolled
/// fallback on *arbitrary* values, not just dyadic ones — the documented
/// reduction-order contract (same four partial sums, mul+add instead of
/// FMA, scalar tail into lane 0). On hardware without AVX2 both
/// configurations take the portable path and the test degenerates to a
/// tautology, which is exactly the guarantee callers get there.
fn sweep_simd_backends_agree<T: Scalar>() {
    use smat_kernels::{simd, SimdBackend};
    let lib = KernelLibrary::<T>::new();
    for (name, m) in corpus::<T>() {
        let x: Vec<T> = (0..m.cols())
            .map(|i| T::from_f64((i as f64 * 0.7312).sin() * 3.0))
            .collect();
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr_with(
                &m,
                format,
                &smat_matrix::ConversionLimits::unlimited(),
            ) else {
                continue;
            };
            for (v, info) in lib.variants(format).into_iter().enumerate() {
                if !info.strategies.contains(Strategy::Simd) {
                    continue;
                }
                simd::set_backend(SimdBackend::Portable);
                let mut portable = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut portable);
                simd::set_backend(SimdBackend::Auto);
                let mut auto = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut auto);
                assert!(
                    auto == portable,
                    "{name}: {} diverges between AVX2 and portable (active: {})",
                    info.name,
                    simd::active_backend()
                );
            }
        }
    }
}

#[test]
fn simd_backend_is_bit_identical_to_portable_f64() {
    sweep_simd_backends_agree::<f64>();
}

#[test]
fn simd_backend_is_bit_identical_to_portable_f32() {
    sweep_simd_backends_agree::<f32>();
}

/// Strategy: an arbitrary small sparse matrix.
fn arb_matrix() -> impl PropStrategy<Value = Csr<f64>> {
    (1usize..36, 1usize..36).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -90i32..90).prop_map(|(r, c, v)| (r, c, v as f64 / 11.0));
        proptest::collection::vec(entry, 0..100).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary matrices — including empty, single-row, wide and
    /// tall shapes the deterministic corpus misses — planned dispatch
    /// is bitwise identical to unplanned, for every format and variant.
    #[test]
    fn planned_equals_unplanned_on_arbitrary_matrices(m in arb_matrix()) {
        let lib = KernelLibrary::<f64>::new();
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64).sin()).collect();
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else { continue };
            for v in 0..lib.variant_count(format) {
                let plan = lib.plan_for(&any, KernelId { op: smat_kernels::Op::Spmv, format, variant: v });
                let mut unplanned = vec![f64::NAN; m.rows()];
                lib.run(&any, v, &x, &mut unplanned);
                let mut planned = vec![f64::NAN; m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                prop_assert!(
                    planned == unplanned,
                    "{format} variant {v} diverges on {}x{} nnz={}",
                    m.rows(), m.cols(), m.nnz()
                );
            }
        }
    }

    /// Arbitrary shapes with dyadic values: every variant — unrolled
    /// tails, SIMD lanes, BCSR edge blocks — stays bitwise equal to the
    /// sequential reference on the shapes proptest likes to find
    /// (empty rows, 1-row / 1-column matrices, nnz % 4 != 0 tails).
    #[test]
    fn variants_bitwise_match_reference_on_arbitrary_matrices(m in arb_matrix()) {
        let lib = KernelLibrary::<f64>::new();
        let m = dyadic(m);
        let x = dyadic_vector::<f64>(m.cols());
        let mut reference = vec![f64::NAN; m.rows()];
        smat_kernels::reference::csrgemv_seq(&m, &x, &mut reference);
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr_with(
                &m,
                format,
                &smat_matrix::ConversionLimits::unlimited(),
            ) else { continue };
            for v in 0..lib.variant_count(format) {
                let mut y = vec![f64::NAN; m.rows()];
                lib.run(&any, v, &x, &mut y);
                prop_assert!(
                    y == reference,
                    "{format} variant {v} not bitwise on {}x{} nnz={}",
                    m.rows(), m.cols(), m.nnz()
                );
            }
        }
    }
}

//! Differential suite for precomputed execution plans: replaying a
//! frozen [`ExecPlan`] must be *bitwise* indistinguishable from the
//! legacy partition-per-call dispatch, for every builtin variant of
//! every format — otherwise caching the plan inside a tuning-cache
//! entry would silently change results between a cold and a warm run.
//!
//! Also pinned here: which variants are bit-identical to the serial
//! basic kernel (all parallel ones except the unrolled/blocked
//! accumulator shapes), stale plans staying correct, and user-registered
//! kernels ignoring plans entirely.

use proptest::prelude::*;
// `smat_kernels::Strategy` (the optimization lattice) shadows the
// glob-imported proptest trait of the same name; re-import the trait
// under an alias so its methods stay resolvable.
use proptest::strategy::Strategy as PropStrategy;
use smat_kernels::{ExecPlan, KernelId, KernelLibrary, Strategy, StrategySet};
use smat_matrix::gen::{
    banded, block_sparse, fixed_degree, laplacian_2d_9pt, power_law, random_skewed, random_uniform,
    tridiagonal,
};
use smat_matrix::{AnyMatrix, Csr, Format, Scalar};

/// A corpus spanning the generator archetypes, small enough to sweep
/// every (format, variant) pair in both precisions.
fn corpus<T: Scalar>() -> Vec<(&'static str, Csr<T>)> {
    vec![
        ("tridiagonal", tridiagonal(193)),
        ("banded", banded(240, &[-9, -1, 0, 1, 9], 0.8, 21)),
        ("fixed_degree", fixed_degree(150, 140, 5, 1, 22)),
        ("random_square", random_uniform(200, 200, 7, 23)),
        ("random_wide", random_uniform(90, 400, 4, 24)),
        ("power_law", power_law(300, 60, 2.0, 25)),
        ("skewed", random_skewed(250, 250, 4, 0.04, 30, 26)),
        ("block", block_sparse(192, 16, 3, 27)),
        ("stencil", laplacian_2d_9pt(13, 11)),
    ]
}

fn test_vector<T: Scalar>(cols: usize) -> Vec<T> {
    (0..cols)
        .map(|i| T::from_f64(((i % 13) as f64 - 6.0) * 0.4375))
        .collect()
}

/// `run_planned` with a fresh plan must produce bit-for-bit the same
/// output as `run` — same partition geometry, same accumulation order.
fn sweep_planned_equals_unplanned<T: Scalar>() {
    let lib = KernelLibrary::<T>::new();
    for (name, m) in corpus::<T>() {
        let x = test_vector::<T>(m.cols());
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                continue; // conversion refused (fill limits)
            };
            for v in 0..lib.variant_count(format) {
                let plan = lib.plan_for(&any, KernelId { format, variant: v });
                let mut unplanned = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut unplanned);
                let mut planned = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                assert!(
                    planned == unplanned,
                    "{name}: {format} variant {v} ({}) planned != unplanned",
                    lib.variants(format)[v].name
                );
            }
        }
    }
}

#[test]
fn planned_equals_unplanned_bitwise_f64() {
    sweep_planned_equals_unplanned::<f64>();
}

#[test]
fn planned_equals_unplanned_bitwise_f32() {
    sweep_planned_equals_unplanned::<f32>();
}

/// Row-chunking never reorders a row's accumulation, so every parallel
/// variant that keeps the plain accumulator shape (no 4-way unroll, no
/// register blocking) is bit-identical to its format's serial basic
/// kernel — the property that makes plan caching safe to mix with
/// serial fallbacks (degraded mode) on the same matrix.
#[test]
fn plain_parallel_variants_are_bit_identical_to_serial_basic() {
    let lib = KernelLibrary::<f64>::new();
    let mut checked = 0usize;
    for (name, m) in corpus::<f64>() {
        let x = test_vector::<f64>(m.cols());
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                continue;
            };
            let mut basic = vec![f64::NAN; m.rows()];
            lib.run(&any, 0, &x, &mut basic);
            for (v, info) in lib.variants(format).into_iter().enumerate() {
                if !info.strategies.contains(Strategy::Parallel)
                    || info.strategies.contains(Strategy::Unroll)
                    || info.strategies.contains(Strategy::Block)
                {
                    continue;
                }
                let plan = lib.plan_for(&any, KernelId { format, variant: v });
                let mut planned = vec![f64::NAN; m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                assert!(
                    planned == basic,
                    "{name}: {} not bit-identical to {} basic",
                    info.name,
                    format
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 20, "the sweep must actually cover variants");
}

/// A stale plan (sized for a different thread count) stays *correct* —
/// its chunks still cover every row exactly once — it is merely
/// mis-sized. The runtime rebuilds stale plans opportunistically, but
/// correctness must never depend on that happening.
#[test]
fn stale_plans_stay_correct() {
    let lib = KernelLibrary::<f64>::new();
    let m = random_uniform::<f64>(300, 300, 8, 77);
    let any = AnyMatrix::Csr(m.clone());
    let x = test_vector::<f64>(m.cols());
    for v in 0..lib.variant_count(Format::Csr) {
        let id = KernelId {
            format: Format::Csr,
            variant: v,
        };
        let mut plan = lib.plan_for(&any, id);
        let fresh_serial = plan.is_serial();
        plan.threads += 3; // as if the cache file came from another host
        assert_eq!(plan.is_stale(), !fresh_serial);
        let mut expect = vec![f64::NAN; m.rows()];
        lib.run(&any, v, &x, &mut expect);
        let mut y = vec![f64::NAN; m.rows()];
        lib.run_planned(&any, v, &plan, &x, &mut y);
        assert!(y == expect, "variant {v} wrong under a stale plan");
    }
}

/// User-registered kernels have no planned path: `run_planned` must
/// dispatch their raw fn pointer and ignore the plan entirely, even a
/// nonsensical one — the registry cannot know how a foreign kernel
/// partitions its work.
#[test]
fn registered_kernels_ignore_the_plan() {
    let mut lib = KernelLibrary::<f64>::new();
    fn doubled(m: &Csr<f64>, x: &[f64], y: &mut [f64]) {
        let mut tmp = vec![0.0; y.len()];
        m.spmv(x, &mut tmp).expect("dims checked by caller");
        for (o, t) in y.iter_mut().zip(&tmp) {
            *o = 2.0 * t;
        }
    }
    let id = lib.register_csr(
        "csr_doubled",
        [Strategy::Parallel].into_iter().collect::<StrategySet>(),
        doubled,
    );
    let m = random_uniform::<f64>(120, 120, 6, 5);
    let any = AnyMatrix::Csr(m.clone());
    let x = test_vector::<f64>(m.cols());
    let mut expect = vec![0.0; m.rows()];
    m.spmv(&x, &mut expect).unwrap();
    for v in expect.iter_mut() {
        *v *= 2.0;
    }
    // plan_for refuses to build a fan-out plan for a foreign kernel...
    let plan = lib.plan_for(&any, id);
    assert!(plan.is_serial());
    // ...and run_planned ignores even a malformed plan for it.
    let garbage = ExecPlan {
        bounds: vec![0, 7, 3],
        entry_bounds: None,
        threads: 99,
    };
    let mut y = vec![f64::NAN; m.rows()];
    lib.run_planned(&any, id.variant, &garbage, &x, &mut y);
    assert!(y == expect, "registered kernel must run its raw fn pointer");
}

/// Strategy: an arbitrary small sparse matrix.
fn arb_matrix() -> impl PropStrategy<Value = Csr<f64>> {
    (1usize..36, 1usize..36).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -90i32..90).prop_map(|(r, c, v)| (r, c, v as f64 / 11.0));
        proptest::collection::vec(entry, 0..100).prop_map(move |triplets| {
            Csr::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary matrices — including empty, single-row, wide and
    /// tall shapes the deterministic corpus misses — planned dispatch
    /// is bitwise identical to unplanned, for every format and variant.
    #[test]
    fn planned_equals_unplanned_on_arbitrary_matrices(m in arb_matrix()) {
        let lib = KernelLibrary::<f64>::new();
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64).sin()).collect();
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else { continue };
            for v in 0..lib.variant_count(format) {
                let plan = lib.plan_for(&any, KernelId { format, variant: v });
                let mut unplanned = vec![f64::NAN; m.rows()];
                lib.run(&any, v, &x, &mut unplanned);
                let mut planned = vec![f64::NAN; m.rows()];
                lib.run_planned(&any, v, &plan, &x, &mut planned);
                prop_assert!(
                    planned == unplanned,
                    "{format} variant {v} diverges on {}x{} nnz={}",
                    m.rows(), m.cols(), m.nnz()
                );
            }
        }
    }
}

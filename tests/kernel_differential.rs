//! Differential sweep of the kernel library: every registered variant of
//! every format, in both precisions, must agree with the reference
//! serial CSR SpMV on a corpus spanning the generator archetypes.
//!
//! This is the correctness backstop behind the offline search — the
//! scoreboard may pick *any* variant, so all of them must be right on
//! all of the structures the tuner will ever feed them.

use smat_kernels::KernelLibrary;
use smat_matrix::gen::{
    banded, block_sparse, fixed_degree, laplacian_2d_9pt, power_law, random_skewed, random_uniform,
    tridiagonal,
};
use smat_matrix::utils::max_abs_diff;
use smat_matrix::{AnyMatrix, Csr, Format, Scalar};

/// Matrices covering every generator family, including shapes that
/// stress each format: long/wide rectangles, empty rows, dense rows.
fn corpus<T: Scalar>() -> Vec<(String, Csr<T>)> {
    let mut set: Vec<(String, Csr<T>)> = vec![
        ("tridiagonal".into(), tridiagonal(257)),
        (
            "banded_dense".into(),
            banded(300, &[-7, -1, 0, 1, 7], 1.0, 1),
        ),
        ("banded_sparse".into(), banded(300, &[-19, 0, 19], 0.4, 2)),
        ("fixed_degree".into(), fixed_degree(200, 180, 6, 1, 3)),
        ("random_square".into(), random_uniform(240, 240, 8, 4)),
        ("random_wide".into(), random_uniform(120, 500, 5, 5)),
        ("random_tall".into(), random_uniform(500, 120, 3, 6)),
        ("power_law".into(), power_law(400, 80, 2.0, 7)),
        ("skewed".into(), random_skewed(300, 300, 4, 0.03, 40, 8)),
        ("block".into(), block_sparse(288, 16, 4, 9)),
        ("stencil_9pt".into(), laplacian_2d_9pt(17, 13)),
    ];
    // An empty-row / dense-row pathological case.
    let mut triplets: Vec<(usize, usize, f64)> = (0..90).map(|c| (0, c, 0.5)).collect();
    for r in (2..120).step_by(3) {
        triplets.push((r, r % 90, -1.0));
    }
    let entries: Vec<(usize, usize, T)> = triplets
        .into_iter()
        .map(|(r, c, v)| (r, c, T::from_f64(v)))
        .collect();
    set.push((
        "dense_row_empty_rows".into(),
        Csr::from_triplets(120, 90, &entries).unwrap(),
    ));
    set
}

fn sweep<T: Scalar>(tol: f64) {
    let lib = KernelLibrary::<T>::new();
    for (name, m) in corpus::<T>() {
        let x: Vec<T> = (0..m.cols())
            .map(|i| T::from_f64(((i % 11) as f64 - 5.0) * 0.375))
            .collect();
        let mut expect = vec![T::ZERO; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        let scale = expect
            .iter()
            .map(|v| v.abs().to_f64())
            .fold(1.0f64, f64::max);
        for format in Format::ALL {
            let Ok(any) = AnyMatrix::convert_from_csr(&m, format) else {
                // Conversion legitimately refused (fill limits); the
                // tuner can never route this matrix to this format.
                continue;
            };
            for v in 0..lib.variant_count(format) {
                // NaN canary: every output element must be written.
                let mut y = vec![T::from_f64(f64::NAN); m.rows()];
                lib.run(&any, v, &x, &mut y);
                let diff = max_abs_diff(&y, &expect);
                assert!(
                    diff <= tol * scale,
                    "{name}: {} variant {v} ({}) diverges by {diff:e}",
                    format,
                    lib.variants(format)[v].name
                );
            }
        }
    }
}

#[test]
fn every_f64_variant_matches_reference_csr() {
    sweep::<f64>(1e-12);
}

#[test]
fn every_f32_variant_matches_reference_csr() {
    // f32 accumulation order differs between kernels; allow a few ulps
    // scaled by the result magnitude.
    sweep::<f32>(1e-4);
}

#[test]
fn the_library_is_paper_scale() {
    // §5's library advertises tens of implementations; the sweep above
    // must actually be exercising all of them.
    let lib = KernelLibrary::<f64>::new();
    assert!(lib.total_variants() >= 16);
    for f in Format::ALL {
        assert!(lib.variant_count(f) >= 2, "{f} needs at least two variants");
    }
}

//! Feature extraction from a CSR matrix — the paper's §4 and the
//! "Feature Extraction" runtime component of §6.
//!
//! Extraction runs in the paper's two independent steps so the runtime's
//! optimistic early-exit strategy can skip the expensive part:
//!
//! 1. [`extract_structure`] — a single traversal computing the DIA, ELL
//!    and CSR parameters (diagonal census and nonzero distribution
//!    together, as §6 describes);
//! 2. [`fit_power_law`](crate::fit_power_law) — the power-law exponent
//!    `R` needed only by the COO rules.
//!
//! [`extract_features`] composes both.

use crate::params::{FeatureVector, R_NOT_SCALE_FREE, TRUE_DIAG_OCCUPANCY};
use crate::powerlaw::fit_power_law_of_degrees;
use smat_matrix::{Csr, Scalar};

/// Everything the cheap first pass produces: the feature vector with `R`
/// left at [`R_NOT_SCALE_FREE`], plus the row-degree array for the
/// second pass to reuse.
#[derive(Debug, Clone)]
pub struct StructureFeatures {
    /// Feature vector with all parameters except `R` filled in.
    pub features: FeatureVector,
    /// Per-row nonzero counts (reused by the power-law fit).
    pub row_degrees: Vec<usize>,
}

/// First extraction step: diagonal census and nonzero distribution in one
/// traversal of the matrix.
///
/// # Examples
///
/// ```
/// use smat_features::extract_structure;
/// use smat_matrix::gen::tridiagonal;
///
/// let s = extract_structure(&tridiagonal::<f64>(100));
/// assert_eq!(s.features.ndiags, 3.0);
/// assert_eq!(s.features.ntdiags_ratio, 1.0);
/// assert_eq!(s.features.max_rd, 3.0);
/// ```
pub fn extract_structure<T: Scalar>(m: &Csr<T>) -> StructureFeatures {
    let rows = m.rows();
    let cols = m.cols();
    let nnz = m.nnz();

    // Diagonal census: count of stored entries per diagonal offset.
    // Offset index = c - r + rows - 1, in [0, rows + cols - 1).
    let span = rows + cols;
    let mut diag_counts = vec![0u32; span.max(1)];
    let mut row_degrees = vec![0usize; rows];
    let ptr = m.row_ptr();
    let idx = m.col_idx();
    for r in 0..rows {
        row_degrees[r] = ptr[r + 1] - ptr[r];
        for &c in &idx[ptr[r]..ptr[r + 1]] {
            diag_counts[c + rows - 1 - r] += 1;
        }
    }

    let mut ndiags = 0usize;
    let mut true_diags = 0usize;
    for (i, &count) in diag_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        ndiags += 1;
        // Length of diagonal with offset k = i - (rows - 1).
        let k = i as isize - (rows as isize - 1);
        let len = if k >= 0 {
            rows.min(cols - k as usize)
        } else {
            cols.min(rows - (-k) as usize)
        };
        if count as f64 >= TRUE_DIAG_OCCUPANCY * len as f64 {
            true_diags += 1;
        }
    }

    let max_rd = row_degrees.iter().copied().max().unwrap_or(0);
    let aver_rd = if rows > 0 {
        nnz as f64 / rows as f64
    } else {
        0.0
    };
    let var_rd = if rows > 0 {
        row_degrees
            .iter()
            .map(|&d| (d as f64 - aver_rd).powi(2))
            .sum::<f64>()
            / rows as f64
    } else {
        0.0
    };
    let er_dia = if ndiags > 0 && rows > 0 {
        nnz as f64 / (ndiags as f64 * rows as f64)
    } else {
        0.0
    };
    let er_ell = if max_rd > 0 && rows > 0 {
        nnz as f64 / (max_rd as f64 * rows as f64)
    } else {
        0.0
    };
    let ntdiags_ratio = if ndiags > 0 {
        true_diags as f64 / ndiags as f64
    } else {
        0.0
    };

    StructureFeatures {
        features: FeatureVector {
            m: rows as f64,
            n: cols as f64,
            nnz: nnz as f64,
            aver_rd,
            max_rd: max_rd as f64,
            var_rd,
            ndiags: ndiags as f64,
            ntdiags_ratio,
            er_dia,
            er_ell,
            r: R_NOT_SCALE_FREE,
        },
        row_degrees,
    }
}

impl StructureFeatures {
    /// Second extraction step: fits the power-law exponent and completes
    /// the feature vector.
    pub fn with_power_law(mut self) -> FeatureVector {
        self.features.r = fit_power_law_of_degrees(self.row_degrees.iter().copied());
        self.features
    }
}

/// Extracts the complete 11-parameter feature vector (both steps).
///
/// # Examples
///
/// ```
/// use smat_features::extract_features;
/// use smat_matrix::gen::power_law;
///
/// let f = extract_features(&power_law::<f64>(3000, 500, 2.0, 1));
/// assert!(f.r > 0.5 && f.r < 5.0);
/// assert!(f.er_ell < 0.3); // heavy tail makes ELL padding awful
/// ```
pub fn extract_features<T: Scalar>(m: &Csr<T>) -> FeatureVector {
    extract_structure(m).with_power_law()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{banded, fixed_degree, laplacian_2d_5pt, power_law};
    use smat_matrix::Csr;

    #[test]
    fn figure2_example_features() {
        // The paper's Figure 2 matrix: 4x4, 9 nnz, diagonals {-2, 0, 1}.
        let m = Csr::<f64>::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap();
        let s = extract_structure(&m);
        let f = s.features;
        assert_eq!(f.m, 4.0);
        assert_eq!(f.n, 4.0);
        assert_eq!(f.nnz, 9.0);
        assert_eq!(f.aver_rd, 2.25);
        assert_eq!(f.max_rd, 3.0);
        assert_eq!(f.ndiags, 3.0);
        // Diagonal 0 has 4/4, diagonal +1 has 3/3, diagonal -2 has 2/2:
        // all true diagonals.
        assert_eq!(f.ntdiags_ratio, 1.0);
        assert!((f.er_dia - 9.0 / 12.0).abs() < 1e-12);
        assert!((f.er_ell - 9.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn stencil_features_match_paper_expectations() {
        let m = laplacian_2d_5pt::<f64>(32, 32);
        let f = extract_features(&m);
        assert_eq!(f.ndiags, 5.0);
        assert!(f.ntdiags_ratio >= 0.6, "most stencil diagonals are true");
        assert!(f.er_dia > 0.9);
        assert_eq!(f.r, R_NOT_SCALE_FREE);
    }

    #[test]
    fn partial_diagonals_lower_true_ratio() {
        let full = banded::<f64>(256, &[-2, 0, 3], 1.0, 1);
        let thin = banded::<f64>(256, &[-2, 0, 3], 0.4, 1);
        let ff = extract_features(&full);
        let ft = extract_features(&thin);
        assert_eq!(ff.ntdiags_ratio, 1.0);
        assert_eq!(ft.ntdiags_ratio, 0.0);
        assert!(ft.er_dia < ff.er_dia);
    }

    #[test]
    fn ell_friendly_matrix_has_unit_er_ell_and_low_var() {
        let m = fixed_degree::<f64>(400, 400, 9, 0, 2);
        let f = extract_features(&m);
        assert_eq!(f.er_ell, 1.0);
        assert_eq!(f.var_rd, 0.0);
        assert_eq!(f.max_rd, 9.0);
    }

    #[test]
    fn power_law_matrix_gets_finite_r() {
        let m = power_law::<f64>(4000, 600, 2.0, 4);
        let f = extract_features(&m);
        assert!(f.r < R_NOT_SCALE_FREE);
        assert!(f.var_rd > 1.0, "power-law degrees vary a lot");
    }

    #[test]
    fn rectangular_diagonal_lengths() {
        // 2 x 4: diagonal +2 has length 2, +3 has length 1.
        let m = Csr::<f64>::from_triplets(2, 4, &[(0, 2, 1.0), (1, 3, 1.0), (0, 3, 1.0)]).unwrap();
        let s = extract_structure(&m);
        assert_eq!(s.features.ndiags, 2.0);
        // Offset +2: entries (0,2),(1,3) -> 2 of length 2 (true);
        // offset +3: entry (0,3) -> 1 of length 1 (true).
        assert_eq!(s.features.ntdiags_ratio, 1.0);
    }

    #[test]
    fn empty_matrix_is_all_zeros() {
        let m = Csr::<f64>::from_triplets(3, 3, &[]).unwrap();
        let f = extract_features(&m);
        assert_eq!(f.nnz, 0.0);
        assert_eq!(f.ndiags, 0.0);
        assert_eq!(f.er_dia, 0.0);
        assert_eq!(f.er_ell, 0.0);
        assert_eq!(f.r, R_NOT_SCALE_FREE);
    }

    #[test]
    fn structure_pass_reuses_degrees_consistently() {
        let m = power_law::<f64>(1000, 200, 2.1, 8);
        let s = extract_structure(&m);
        assert_eq!(s.row_degrees.len(), m.rows());
        let total: usize = s.row_degrees.iter().sum();
        assert_eq!(total, m.nnz());
    }
}

//! Power-law exponent fitting for the `R` feature.
//!
//! The paper's COO rule keys on the row-degree distribution following
//! `P(k) ~ k^-R` with `R` in `[1, 4]` ("small-world network" matrices).
//! `R` is obtained here by least-squares regression of `log count(k)`
//! against `log k` over the observed degree histogram — the heavy
//! "second step" of the paper's two-step feature extraction (§6).

use crate::params::R_NOT_SCALE_FREE;
use smat_matrix::{Csr, Scalar};

/// Minimum number of distinct positive degrees required before a fit is
/// attempted; below it the matrix "has no attribute of scale-free
/// network" and [`R_NOT_SCALE_FREE`] is returned.
pub const MIN_DISTINCT_DEGREES: usize = 4;

/// Minimum coefficient of determination (R²) for the log-log fit to be
/// accepted as scale-free.
pub const MIN_FIT_QUALITY: f64 = 0.5;

/// Fits the power-law exponent `R` of the row-degree distribution.
///
/// Returns [`R_NOT_SCALE_FREE`] when the matrix has too few distinct
/// degrees, the fitted slope is non-negative (degree counts *grow* with
/// `k`), or the fit explains less than [`MIN_FIT_QUALITY`] of the
/// variance.
///
/// # Examples
///
/// ```
/// use smat_features::{fit_power_law, R_NOT_SCALE_FREE};
/// use smat_matrix::gen::{power_law, tridiagonal};
///
/// let graph = power_law::<f64>(4000, 800, 2.0, 7);
/// let r = fit_power_law(&graph);
/// assert!(r > 1.0 && r < 4.0, "fitted R = {r}");
///
/// // A stencil has (nearly) constant degree: no scale-free structure.
/// assert_eq!(fit_power_law(&tridiagonal::<f64>(1000)), R_NOT_SCALE_FREE);
/// ```
pub fn fit_power_law<T: Scalar>(m: &Csr<T>) -> f64 {
    let degrees = (0..m.rows()).map(|r| m.row_degree(r));
    fit_power_law_of_degrees(degrees)
}

/// Fits `R` from an iterator of row degrees (exposed so feature
/// extraction can reuse an already-computed degree array).
pub fn fit_power_law_of_degrees(degrees: impl Iterator<Item = usize>) -> f64 {
    // Histogram of degrees k >= 1. BTreeMap keeps the float summation
    // order (and therefore the fitted value) deterministic.
    let mut hist = std::collections::BTreeMap::new();
    for d in degrees {
        if d > 0 {
            *hist.entry(d).or_insert(0usize) += 1;
        }
    }
    if hist.len() < MIN_DISTINCT_DEGREES {
        return R_NOT_SCALE_FREE;
    }
    // Count-weighted least squares on (log k, log count). Weighting by
    // bin count keeps the sparsely-sampled tail (many bins of count 1)
    // from flattening the slope — without it the fit is biased low by
    // roughly the tail length.
    let pts: Vec<(f64, f64, f64)> = hist
        .iter()
        .map(|(&k, &c)| ((k as f64).ln(), (c as f64).ln(), c as f64))
        .collect();
    let sw: f64 = pts.iter().map(|p| p.2).sum();
    let sx: f64 = pts.iter().map(|p| p.2 * p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.2 * p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.2 * p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.2 * p.0 * p.1).sum();
    let denom = sw * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return R_NOT_SCALE_FREE;
    }
    let slope = (sw * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / sw;
    // Weighted R² of the fit.
    let mean_y = sy / sw;
    let ss_tot: f64 = pts.iter().map(|p| p.2 * (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| p.2 * (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot <= 0.0 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    };
    let r = -slope;
    if r <= 0.0 || r2 < MIN_FIT_QUALITY {
        return R_NOT_SCALE_FREE;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{fixed_degree, power_law, random_uniform};

    #[test]
    fn recovers_exponent_approximately() {
        for target in [1.5f64, 2.0, 2.8] {
            let m = power_law::<f64>(8000, 1000, target, 13);
            let r = fit_power_law(&m);
            assert!((r - target).abs() < 0.8, "target {target}, fitted {r}");
        }
    }

    #[test]
    fn constant_degree_is_not_scale_free() {
        let m = fixed_degree::<f64>(500, 500, 6, 0, 1);
        assert_eq!(fit_power_law(&m), R_NOT_SCALE_FREE);
    }

    #[test]
    fn uniform_random_is_not_scale_free() {
        // Uniform degrees in [1, 2a]: flat histogram, poor power-law fit
        // or non-negative slope.
        let m = random_uniform::<f64>(3000, 3000, 10, 2);
        let r = fit_power_law(&m);
        // Either rejected outright or fitted with a weak/irrelevant
        // exponent far from the paper's [1, 4] window — the learner keys
        // on the interval, so just check it is not a confident in-window fit.
        assert!(
            r == R_NOT_SCALE_FREE || !(1.0..=4.0).contains(&r),
            "uniform matrix fitted R = {r}"
        );
    }

    #[test]
    fn degree_iterator_variant_agrees() {
        let m = power_law::<f64>(2000, 300, 2.2, 3);
        let a = fit_power_law(&m);
        let b = fit_power_law_of_degrees((0..m.rows()).map(|r| m.row_degree(r)));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(
            fit_power_law_of_degrees(std::iter::empty()),
            R_NOT_SCALE_FREE
        );
        assert_eq!(
            fit_power_law_of_degrees([3usize, 3, 3].into_iter()),
            R_NOT_SCALE_FREE
        );
    }
}

//! Sparse matrix feature extraction for the SMAT (PLDI'13) reproduction.
//!
//! Implements §4 of the paper: the 11 structural feature parameters of
//! Table 2 ([`FeatureVector`]), the two-step extraction procedure of §6
//! ([`extract_structure`] then [`StructureFeatures::with_power_law`]),
//! and the power-law exponent fit ([`fit_power_law`]).
//!
//! # Examples
//!
//! ```
//! use smat_features::extract_features;
//! use smat_matrix::gen::laplacian_2d_5pt;
//!
//! let f = extract_features(&laplacian_2d_5pt::<f64>(64, 64));
//! assert_eq!(f.ndiags, 5.0);     // the 5-point stencil's diagonals
//! assert!(f.er_dia > 0.9);       // nearly no zero fill in DIA
//! ```

#![warn(missing_docs)]

mod extract;
mod params;
mod powerlaw;

pub use extract::{extract_features, extract_structure, StructureFeatures};
pub use params::{FeatureVector, ATTRIBUTE_NAMES, R_NOT_SCALE_FREE, TRUE_DIAG_OCCUPANCY};
pub use powerlaw::{
    fit_power_law, fit_power_law_of_degrees, MIN_DISTINCT_DEGREES, MIN_FIT_QUALITY,
};

//! The feature parameter vector — Table 2 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Occupancy threshold above which a diagonal counts as a "true
/// diagonal".
///
/// The paper defines a true diagonal as "one occupied mostly with
/// non-zeros" featuring "minor part of zero-padding"; this reproduction
/// fixes "mostly" at 90% occupancy.
pub const TRUE_DIAG_OCCUPANCY: f64 = 0.9;

/// Sentinel value of the power-law exponent `R` for matrices with no
/// scale-free structure — the paper's "inf" for matrix `t2d_q9`.
///
/// A large *finite* value is used instead of [`f64::INFINITY`] so that
/// decision-tree split thresholds (midpoints of observed values) and the
/// JSON model serialization stay well-defined; any threshold the learner
/// can produce is far below it.
pub const R_NOT_SCALE_FREE: f64 = 1.0e6;

/// The 11 structural feature parameters SMAT extracts from a sparse
/// matrix (the paper's Table 2).
///
/// All values are stored as `f64` so they can feed the learner uniformly;
/// `r` is [`R_NOT_SCALE_FREE`] when the matrix shows no scale-free
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// `M` — number of rows.
    pub m: f64,
    /// `N` — number of columns.
    pub n: f64,
    /// `NNZ` — number of stored nonzeros.
    pub nnz: f64,
    /// `aver_RD = NNZ / M` — average row degree.
    pub aver_rd: f64,
    /// `max_RD` — maximum row degree.
    pub max_rd: f64,
    /// `var_RD = Σ |rd_i − aver_RD|² / M` — row-degree variance.
    pub var_rd: f64,
    /// `Ndiags` — number of occupied diagonals.
    pub ndiags: f64,
    /// `NTdiags_ratio` — fraction of occupied diagonals that are "true"
    /// (≥ [`TRUE_DIAG_OCCUPANCY`] occupancy).
    pub ntdiags_ratio: f64,
    /// `ER_DIA = NNZ / (Ndiags × M)` — nonzero ratio of the DIA layout.
    pub er_dia: f64,
    /// `ER_ELL = NNZ / (max_RD × M)` — nonzero ratio of the ELL layout.
    pub er_ell: f64,
    /// `R` — fitted power-law exponent of the row-degree distribution
    /// (`P(k) ~ k^-R`), or [`R_NOT_SCALE_FREE`] when not scale-free.
    pub r: f64,
}

/// Names of the attributes, in [`FeatureVector::as_array`] order. These
/// are the column names of the learner's datasets.
pub const ATTRIBUTE_NAMES: [&str; 11] = [
    "M",
    "N",
    "NNZ",
    "aver_RD",
    "max_RD",
    "var_RD",
    "Ndiags",
    "NTdiags_ratio",
    "ER_DIA",
    "ER_ELL",
    "R",
];

impl FeatureVector {
    /// The feature values as a fixed-order array matching
    /// [`ATTRIBUTE_NAMES`].
    pub fn as_array(&self) -> [f64; 11] {
        [
            self.m,
            self.n,
            self.nnz,
            self.aver_rd,
            self.max_rd,
            self.var_rd,
            self.ndiags,
            self.ntdiags_ratio,
            self.er_dia,
            self.er_ell,
            self.r,
        ]
    }

    /// Reconstructs a vector from the [`ATTRIBUTE_NAMES`]-ordered array.
    pub fn from_array(a: [f64; 11]) -> Self {
        FeatureVector {
            m: a[0],
            n: a[1],
            nnz: a[2],
            aver_rd: a[3],
            max_rd: a[4],
            var_rd: a[5],
            ndiags: a[6],
            ntdiags_ratio: a[7],
            er_dia: a[8],
            er_ell: a[9],
            r: a[10],
        }
    }

    /// Value of the attribute at `index` (in [`ATTRIBUTE_NAMES`] order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 11`.
    pub fn attribute(&self, index: usize) -> f64 {
        self.as_array()[index]
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals = self.as_array();
        for (i, (name, v)) in ATTRIBUTE_NAMES.iter().zip(vals).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if v >= R_NOT_SCALE_FREE {
                write!(f, "{name}=inf")?;
            } else {
                write!(f, "{name}={v:.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureVector {
        FeatureVector {
            m: 9801.0,
            n: 9801.0,
            nnz: 87025.0,
            aver_rd: 8.88,
            max_rd: 9.0,
            var_rd: 0.35,
            ndiags: 9.0,
            ntdiags_ratio: 1.0,
            er_dia: 0.99,
            er_ell: 0.99,
            r: R_NOT_SCALE_FREE,
        }
    }

    #[test]
    fn array_round_trip() {
        let v = sample();
        assert_eq!(FeatureVector::from_array(v.as_array()), v);
    }

    #[test]
    fn attribute_indexing_matches_names() {
        let v = sample();
        assert_eq!(v.attribute(0), v.m);
        assert_eq!(v.attribute(6), v.ndiags);
        assert_eq!(v.attribute(10), v.r);
        assert_eq!(ATTRIBUTE_NAMES[6], "Ndiags");
    }

    #[test]
    fn display_marks_infinite_r() {
        let s = sample().to_string();
        assert!(s.contains("R=inf"));
        assert!(s.contains("NTdiags_ratio=1.0000"));
    }

    #[test]
    fn serde_round_trip_with_sentinel() {
        // JSON has no Inf; R_NOT_SCALE_FREE is finite precisely so the
        // model and datasets serialize cleanly.
        let v = sample();
        let bytes = serde_json::to_string(&v).unwrap();
        let back: FeatureVector = serde_json::from_str(&bytes).unwrap();
        assert_eq!(back, v);
        assert!(R_NOT_SCALE_FREE.is_finite());
    }
}

//! Deterministic fault injection for the SMAT reproduction.
//!
//! Production code marks *failpoint sites* — named places where the
//! outside world can fail (artifact I/O, format conversion allocation,
//! kernel measurement, lock-held critical sections) — by calling
//! [`check`] with a site name such as `"cache.persist"` or
//! `"io.read"`. Tests script those sites with [`configure`] (or the
//! RAII [`scoped`]) to return errors, panic, or inject delays in a
//! fully deterministic order, which is what lets the chaos suite drive
//! multi-threaded soak runs through every failure path on demand.
//!
//! # Zero cost when disabled
//!
//! The registry only exists under the `enabled` cargo feature. Without
//! it (the default, and what production builds use) every function in
//! this crate is an `#[inline(always)]` no-op returning a constant, so
//! a site compiles down to nothing: no string comparison, no lock, no
//! branch that survives optimization. The public API is identical in
//! both builds, so call sites never need `cfg` attributes.
//!
//! # Schedule grammar
//!
//! A site is scripted with a `->`-separated sequence of steps, each an
//! action with an optional repeat count:
//!
//! ```text
//! spec    := step ("->" step)*
//! step    := [count "*"] action
//! action  := "fail" ["(" message ")"]
//!          | "panic" ["(" message ")"]
//!          | "delay" "(" millis ")"
//!          | "off"
//! ```
//!
//! Examples: `fail` (fail forever), `2*fail(disk full)->off` (fail the
//! first two hits, then behave normally), `delay(50)->panic(boom)`
//! (sleep 50 ms on the first hit, panic on the second). A step with no
//! count repeats forever, so it should be last. `off` makes remaining
//! hits proceed normally and is the implicit tail of any exhausted
//! schedule.
//!
//! # Example
//!
//! ```
//! // Only effective with the `enabled` feature; a no-op otherwise.
//! let _guard = smat_failpoints::scoped("io.read", "1*fail(torn cable)->off").unwrap();
//! if let Some(fault) = smat_failpoints::check("io.read") {
//!     // Map the injected failure onto the local error type.
//!     eprintln!("injected: {fault}");
//! }
//! ```

#![warn(missing_docs)]

use std::fmt;

/// An injected failure returned by [`check`] for a `fail` step.
///
/// Call sites map this onto their local error type; the message is the
/// one scripted in the schedule (default `"injected failure"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFailure {
    /// The failpoint site that fired.
    pub site: String,
    /// The scripted failure message.
    pub message: String,
}

impl fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint {}: {}", self.site, self.message)
    }
}

impl std::error::Error for InjectedFailure {}

/// Converts an injected failure into an `std::io::Error` (kind
/// `Other`), the shape most persistence sites need.
impl From<InjectedFailure> for std::io::Error {
    fn from(fault: InjectedFailure) -> Self {
        std::io::Error::other(fault.to_string())
    }
}

/// RAII guard returned by [`scoped`]: clears its site's schedule on
/// drop so a test cannot leak injection state into its neighbours.
#[derive(Debug)]
pub struct FailGuard {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    site: String,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        enabled::clear(&self.site);
    }
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::InjectedFailure;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// One scripted action.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) enum Action {
        /// Return an [`InjectedFailure`] to the call site.
        Fail(String),
        /// Panic inside [`super::check`] with the given message.
        Panic(String),
        /// Sleep for the given duration, then proceed normally.
        Delay(Duration),
        /// Proceed normally.
        Off,
    }

    /// One step of a schedule: an action plus how many hits it covers
    /// (`None` = forever).
    #[derive(Debug, Clone)]
    struct Step {
        action: Action,
        remaining: Option<u64>,
    }

    #[derive(Debug, Default)]
    struct Site {
        steps: Vec<Step>,
        /// Index of the step the next hit consumes.
        cursor: usize,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// The registry lock must stay usable even if a `panic` action
    /// unwinds through a caller that held it indirectly; recover from
    /// poisoning by taking the inner map (schedules stay intact — a
    /// panic action never leaves a step half-updated).
    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Site>> {
        registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn parse_step(step: &str) -> Result<Step, String> {
        let step = step.trim();
        let (count, action) = match step.split_once('*') {
            Some((n, rest)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad repeat count in step {step:?}"))?;
                (Some(n), rest.trim())
            }
            None => (None, step),
        };
        let (kind, arg) = match action.split_once('(') {
            Some((kind, rest)) => {
                let arg = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unterminated argument in step {step:?}"))?;
                (kind.trim(), Some(arg.trim()))
            }
            None => (action, None),
        };
        let action = match kind {
            "fail" | "return" => Action::Fail(arg.unwrap_or("injected failure").to_string()),
            "panic" => Action::Panic(arg.unwrap_or("injected panic").to_string()),
            "delay" | "sleep" => {
                let ms: u64 = arg
                    .ok_or_else(|| format!("delay needs a millisecond argument in {step:?}"))?
                    .parse()
                    .map_err(|_| format!("bad delay milliseconds in step {step:?}"))?;
                Action::Delay(Duration::from_millis(ms))
            }
            "off" => Action::Off,
            other => return Err(format!("unknown failpoint action {other:?}")),
        };
        Ok(Step {
            action,
            remaining: count,
        })
    }

    pub(super) fn parse_spec(spec: &str) -> Result<Vec<(Action, Option<u64>)>, String> {
        if spec.trim().is_empty() {
            return Err("empty failpoint spec".to_string());
        }
        spec.split("->")
            .map(|s| parse_step(s).map(|st| (st.action, st.remaining)))
            .collect()
    }

    pub(super) fn configure(site: &str, spec: &str) -> Result<(), String> {
        let steps = parse_spec(spec)?
            .into_iter()
            .map(|(action, remaining)| Step { action, remaining })
            .collect();
        let mut map = lock();
        let entry = map.entry(site.to_string()).or_default();
        entry.steps = steps;
        entry.cursor = 0;
        Ok(())
    }

    pub(super) fn clear(site: &str) {
        lock().remove(site);
    }

    pub(super) fn reset() {
        lock().clear();
    }

    pub(super) fn hits(site: &str) -> u64 {
        lock().get(site).map_or(0, |s| s.hits)
    }

    pub(super) fn check(site: &str) -> Option<InjectedFailure> {
        // Consume one step under the lock, act on it after releasing it
        // (a delay or panic must not hold the registry hostage).
        let action = {
            let mut map = lock();
            let state = map.get_mut(site)?;
            state.hits += 1;
            loop {
                let Some(step) = state.steps.get_mut(state.cursor) else {
                    break Action::Off; // schedule exhausted
                };
                match &mut step.remaining {
                    None => break step.action.clone(),
                    Some(0) => {
                        state.cursor += 1;
                        continue;
                    }
                    Some(n) => {
                        *n -= 1;
                        break step.action.clone();
                    }
                }
            }
        };
        match action {
            Action::Off => None,
            Action::Fail(message) => Some(InjectedFailure {
                site: site.to_string(),
                message,
            }),
            Action::Panic(message) => panic!("failpoint {site}: {message}"),
            Action::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }
}

/// Evaluates the failpoint at `site`.
///
/// Returns `Some` when a `fail` step is scheduled (the caller maps it
/// onto its local error type), panics for a `panic` step, sleeps for a
/// `delay` step, and returns `None` otherwise. With the `enabled`
/// feature off this is a constant `None` that inlines to nothing.
#[inline(always)]
pub fn check(site: &str) -> Option<InjectedFailure> {
    #[cfg(feature = "enabled")]
    {
        enabled::check(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        None
    }
}

/// Scripts `site` with `spec` (see the crate docs for the grammar),
/// replacing any previous schedule and rewinding its cursor.
///
/// # Errors
///
/// Returns a description of the first malformed step. With the
/// `enabled` feature off the spec is not even parsed and the call
/// always succeeds.
#[inline(always)]
pub fn configure(site: &str, spec: &str) -> Result<(), String> {
    #[cfg(feature = "enabled")]
    {
        enabled::configure(site, spec)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (site, spec);
        Ok(())
    }
}

/// Scripts `site` with `spec` and returns a guard that clears the
/// schedule when dropped — the recommended way to inject in tests.
///
/// # Errors
///
/// See [`configure`].
pub fn scoped(site: &str, spec: &str) -> Result<FailGuard, String> {
    configure(site, spec)?;
    Ok(FailGuard {
        site: site.to_string(),
    })
}

/// Removes `site`'s schedule; later [`check`] calls proceed normally.
#[inline(always)]
pub fn clear(site: &str) {
    #[cfg(feature = "enabled")]
    enabled::clear(site);
    #[cfg(not(feature = "enabled"))]
    let _ = site;
}

/// Removes every schedule and hit counter (a global test-harness reset).
#[inline(always)]
pub fn reset() {
    #[cfg(feature = "enabled")]
    enabled::reset();
}

/// How many times `site` has been evaluated since it was configured
/// (0 when unconfigured, and always 0 with the feature off). Sites are
/// only counted while a schedule is installed, which keeps the
/// disabled and unconfigured cases indistinguishable.
#[inline(always)]
pub fn hits(site: &str) -> u64 {
    #[cfg(feature = "enabled")]
    {
        enabled::hits(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        0
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Each test uses its own site names, so the process-global
    /// registry never aliases across concurrently running tests.
    #[test]
    fn unconfigured_site_proceeds() {
        assert_eq!(check("t.unconfigured"), None);
        assert_eq!(hits("t.unconfigured"), 0);
    }

    #[test]
    fn fail_steps_consume_in_order() {
        let _g = scoped("t.order", "2*fail(first)->fail(forever)").unwrap();
        for _ in 0..2 {
            assert_eq!(check("t.order").unwrap().message, "first");
        }
        for _ in 0..3 {
            assert_eq!(check("t.order").unwrap().message, "forever");
        }
        assert_eq!(hits("t.order"), 5);
    }

    #[test]
    fn exhausted_schedule_turns_off() {
        let _g = scoped("t.exhaust", "1*fail->1*off->1*fail").unwrap();
        assert!(check("t.exhaust").is_some());
        assert!(check("t.exhaust").is_none());
        assert!(check("t.exhaust").is_some());
        assert!(check("t.exhaust").is_none(), "past the end means off");
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = scoped("t.panic", "1*panic(boom)->off").unwrap();
        let err = std::panic::catch_unwind(|| check("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("t.panic") && msg.contains("boom"));
        assert!(check("t.panic").is_none(), "panic step was consumed");
    }

    #[test]
    fn delay_action_sleeps() {
        let _g = scoped("t.delay", "1*delay(30)->off").unwrap();
        let t0 = Instant::now();
        assert!(check("t.delay").is_none());
        assert!(t0.elapsed() >= Duration::from_millis(30));
        let t0 = Instant::now();
        assert!(check("t.delay").is_none());
        assert!(t0.elapsed() < Duration::from_millis(30));
    }

    #[test]
    fn guard_clears_on_drop() {
        {
            let _g = scoped("t.guard", "fail").unwrap();
            assert!(check("t.guard").is_some());
        }
        assert!(check("t.guard").is_none());
        assert_eq!(hits("t.guard"), 0, "drop removed the site entirely");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(configure("t.bad", "").is_err());
        assert!(configure("t.bad", "explode").is_err());
        assert!(configure("t.bad", "x*fail").is_err());
        assert!(configure("t.bad", "delay").is_err());
        assert!(configure("t.bad", "delay(abc)").is_err());
        assert!(configure("t.bad", "fail(unterminated").is_err());
    }

    #[test]
    fn injected_failure_maps_to_io_error() {
        let fault = InjectedFailure {
            site: "cache.persist".into(),
            message: "disk full".into(),
        };
        let io: std::io::Error = fault.into();
        let text = io.to_string();
        assert!(text.contains("cache.persist") && text.contains("disk full"));
    }

    #[test]
    fn reconfigure_rewinds_the_cursor() {
        let _g = scoped("t.rewind", "1*fail->off").unwrap();
        assert!(check("t.rewind").is_some());
        assert!(check("t.rewind").is_none());
        configure("t.rewind", "1*fail->off").unwrap();
        assert!(check("t.rewind").is_some(), "fresh schedule starts over");
    }
}

//! `smat` — command-line interface for the SMAT auto-tuner.
//!
//! ```text
//! smat train    --out MODEL.json [--corpus N] [--seed S] [--single]
//!               [--min-dim D] [--max-dim D]
//! smat install  --out INSTALL.json [--probe-dim D]
//! smat predict  --model MODEL.json MATRIX.mtx
//! smat tune     --model MODEL.json [--install INSTALL.json] [--cache CACHE.json]
//!               [--repeat N] MATRIX.mtx
//! smat bench    [--variants] MATRIX.mtx
//! smat features MATRIX.mtx
//! smat rules    --model MODEL.json
//! smat health   --model MODEL.json [--json] [--calls N] [--dim D]
//! smat serve    --model MODEL.json [--addr HOST:PORT | --socket PATH]
//!               [--workers N] [--shards N] [--queue N] [--deadline-ms MS]
//!               [--cache CACHE.json] [--handle-capacity N] [--handle-budget-bytes B]
//! ```
//!
//! Matrices are Matrix Market files (the UF/SuiteSparse distribution
//! format); models are the JSON artifacts produced by `smat train`.

use smat::{
    label_best_format, tuned_gflops, DecisionPath, Installation, Smat, SmatConfig, TrainedModel,
    Trainer,
};
use smat_features::extract_features;
use smat_kernels::KernelLibrary;
use smat_matrix::gen::{generate_corpus, CorpusSpec};
use smat_matrix::io::read_matrix_market_file;
use smat_matrix::{Csr, Format};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
smat — input adaptive SpMV auto-tuner (SMAT, PLDI'13 reproduction)

USAGE:
  smat train    --out MODEL.json [--corpus N] [--seed S] [--single]
                [--min-dim D] [--max-dim D]
  smat install  --out INSTALL.json [--probe-dim D]
  smat predict  --model MODEL.json MATRIX.mtx
  smat tune     --model MODEL.json [--install INSTALL.json] [--cache CACHE.json]
                [--repeat N] MATRIX.mtx
  smat bench    [--variants] MATRIX.mtx
  smat features MATRIX.mtx
  smat rules    --model MODEL.json
  smat health   --model MODEL.json [--json] [--calls N] [--dim D]
                [--install INSTALL.json]
  smat serve    --model MODEL.json [--addr HOST:PORT | --socket PATH]
                [--install INSTALL.json] [--cache CACHE.json]
                [--workers N] [--shards N] [--queue N] [--degrade-watermark N]
                [--deadline-ms MS] [--max-deadline-ms MS]
                [--tenant-rate R] [--tenant-burst B]
                [--handle-capacity N] [--handle-budget-bytes B]

COMMANDS:
  train     run the off-line stage on a synthetic corpus and save the model
  install   run (or reload) the per-machine kernel search and persist its
            tables; `tune --install` then skips the search at startup
  predict   show the rule-based format decision for a matrix (no timing)
  tune      run the full runtime path (predict or execute-measure) and report
            the chosen format, kernel, measured GFLOPS and tuning-cache stats;
            --repeat N prepares the matrix N times to exercise the cache;
            --cache CACHE.json warm-starts the tuning cache from a snapshot
            (created on first use) and saves it back on exit
  bench     measure all formats exhaustively on a matrix; --variants measures
            every kernel variant of every convertible format and marks each
            format's scoreboard pick
  features  print the 11 structural feature parameters of a matrix
  rules     print the trained IF-THEN ruleset
  health    exercise the warm SpMV path (--calls times on a --dim synthetic
            matrix) and report the engine's execution-health counters:
            contained faults, quarantined kernel variants, pool degradation,
            cache/concurrency recoveries, and the warm handle-registry
            counters; --json emits the machine-readable report (with a
            per-shard `shards` breakdown) for monitoring pipelines
  serve     run the tuning-as-a-service daemon: line-delimited JSON requests
            (ping/metrics/tune/spmv/spmm/shutdown) over TCP (--addr, port 0
            picks an ephemeral port printed as `listening on ...`) or a Unix
            socket (--socket); bounded admission queue with load shedding,
            per-tenant token buckets, per-request deadlines, and a degradation
            ladder; tuned matrices are parked in a fingerprint-sharded handle
            registry (--shards engines, --handle-capacity entries per shard
            under --handle-budget-bytes) so follow-up requests that send the
            returned handle skip parsing and tuning entirely; --cache preloads
            the tuning-cache snapshot and persists the merged shards back on
            graceful shutdown ({\"op\":\"shutdown\"}), which drains in-flight
            work and exits 0
";

/// Minimal flag parser: `--key value` pairs plus positionals.
struct Args {
    flags: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if matches!(name, "single" | "variants" | "json") {
                    switches.push(name.to_string());
                } else if i + 1 < argv.len() {
                    flags.push((name.to_string(), argv[i + 1].clone()));
                    i += 1;
                } else {
                    switches.push(name.to_string());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Self {
            flags,
            switches,
            positional,
        }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
        }
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..]);
    match command.as_str() {
        "train" => cmd_train(&args),
        "install" => cmd_install(&args),
        "predict" => cmd_predict(&args),
        "tune" => cmd_tune(&args),
        "bench" => cmd_bench(&args),
        "features" => cmd_features(&args),
        "rules" => cmd_rules(&args),
        "health" => cmd_health(&args),
        "serve" => cmd_serve(&args),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; run `smat help`")),
    }
}

fn load_matrix(args: &Args) -> Result<Csr<f64>, String> {
    let path = args
        .positional
        .first()
        .ok_or("a MATRIX.mtx path is required")?;
    read_matrix_market_file::<f64>(path).map_err(|e| format!("reading {path}: {e}"))
}

fn load_model(args: &Args) -> Result<TrainedModel, String> {
    let path = args.get("model").ok_or("--model MODEL.json is required")?;
    TrainedModel::load(path).map_err(|e| format!("loading model {path}: {e}"))
}

/// Renders a [`smat::SmatError`] with its taxonomy name leading, so
/// failed commands exit non-zero with a classifiable error class
/// (`error: [persist] ...`) that scripts can branch on.
fn taxonomy_msg(e: &smat::SmatError) -> String {
    format!("[{}] {e}", e.taxonomy())
}

fn engine_for(model: TrainedModel, args: &Args) -> Result<Smat<f64>, String> {
    let mut config = SmatConfig::default();
    if let Some(path) = args.get("install") {
        config.install_path = Some(path.into());
    }
    Smat::with_config(model, config).map_err(|e| taxonomy_msg(&e))
}

fn cmd_install(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("--out INSTALL.json is required")?;
    let mut config = SmatConfig::default();
    config.probe_dim = args.get_usize("probe-dim", config.probe_dim)?;
    eprintln!(
        "running per-machine kernel search (probe dim {})...",
        config.probe_dim
    );
    let (install, from_disk) =
        Installation::load_or_run::<f64>(out, &config).map_err(|e| taxonomy_msg(&e))?;
    if from_disk {
        println!("reloaded existing installation from {out}");
    } else {
        println!("installation saved to {out}");
    }
    let lib = KernelLibrary::<f64>::new();
    for table in &install.tables {
        let chosen = install.kernel_choice.kernel(table.format);
        let info = lib.info(chosen);
        println!(
            "  {}: kernel {} ({})",
            table.format, info.name, info.strategies
        );
        for rec in &table.records {
            println!("    {}: {:.2} GFLOPS", rec.name, rec.gflops);
        }
    }
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("--out MODEL.json is required")?;
    let corpus = args.get_usize("corpus", 600)?;
    let seed = args.get_usize("seed", 0x5AA7)? as u64;
    let min_dim = args.get_usize("min-dim", 512)?;
    let max_dim = args.get_usize("max-dim", 32_768)?;
    let spec = CorpusSpec {
        count: corpus,
        seed,
        min_dim,
        max_dim,
    };
    eprintln!("generating {corpus}-matrix corpus (dims {min_dim}..{max_dim}, seed {seed})...");
    if args.has("single") {
        let entries = generate_corpus::<f32>(&spec);
        let matrices: Vec<&Csr<f32>> = entries.iter().map(|e| &e.matrix).collect();
        eprintln!("training single-precision model...");
        let result = Trainer::default()
            .train(&matrices)
            .map_err(|e| e.to_string())?;
        report_training(&result.model);
        result.model.save(out).map_err(|e| e.to_string())?;
    } else {
        let entries = generate_corpus::<f64>(&spec);
        let matrices: Vec<&Csr<f64>> = entries.iter().map(|e| &e.matrix).collect();
        eprintln!("training double-precision model...");
        let result = Trainer::default()
            .train(&matrices)
            .map_err(|e| e.to_string())?;
        report_training(&result.model);
        result.model.save(out).map_err(|e| e.to_string())?;
    }
    println!("model saved to {out}");
    Ok(())
}

fn report_training(model: &TrainedModel) {
    println!(
        "trained on {} matrices: {} rules ({} kept after tailoring), training accuracy {:.1}%",
        model.stats.train_size,
        model.stats.rules_total,
        model.stats.rules_kept,
        model.stats.train_accuracy * 100.0
    );
    let counts = model.stats.label_counts;
    let dist: Vec<String> = Format::ALL
        .iter()
        .map(|f| format!("{} {}", f.name(), counts[f.index()]))
        .collect();
    println!("label distribution: {}", dist.join(" / "));
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let model = load_model(args)?;
    let m = load_matrix(args)?;
    if model.precision != "double" {
        return Err(format!(
            "model is {}-precision; the CLI reads matrices as double",
            model.precision
        ));
    }
    let features = extract_features(&m);
    println!("features: {features}");
    let decision = model.predict(&features);
    if decision.matched {
        println!(
            "rule prediction: {} (confidence {:.2})",
            decision.format, decision.confidence
        );
    } else {
        println!(
            "no rule matched; default class {} (runtime would execute-measure)",
            decision.format
        );
    }
    Ok(())
}

fn report_decision(tuned: &smat::TunedSpmv<f64>) {
    if tuned.decision().is_cached() {
        println!("decision: replayed from the tuning cache");
    }
    match tuned.decision().source() {
        DecisionPath::Predicted { confidence } => println!(
            "decision: predicted {} with confidence {:.2}",
            tuned.format(),
            confidence
        ),
        DecisionPath::Measured {
            candidates,
            failures,
        } => {
            println!("decision: execute-measure fallback");
            for (f, g) in candidates {
                println!("  measured {f}: {g:.2} GFLOPS");
            }
            for (f, reason) in failures {
                println!("  failed {f}: {reason}");
            }
        }
        DecisionPath::Degraded { reason } => {
            println!("decision: DEGRADED — tuning abandoned, reference CSR kernel in use");
            println!("  reason: {reason}");
        }
        DecisionPath::Cached { .. } => unreachable!("source() unwraps Cached"),
    }
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let model = load_model(args)?;
    let m = load_matrix(args)?;
    let engine = engine_for(model, args)?;
    if let Some(install) = engine.installation() {
        println!(
            "installation: {} (probe dim {}, {})",
            if engine.installation_from_disk() {
                "reloaded from disk"
            } else {
                "searched and saved"
            },
            install.probe_dim,
            install.precision
        );
    }
    let cache_path = args.get("cache");
    if let Some(path) = cache_path {
        if std::path::Path::new(path).exists() {
            let absorbed = engine.load_cache(path).map_err(|e| taxonomy_msg(&e))?;
            println!("tuning cache: warm-started with {absorbed} entries from {path}");
        }
    }
    let repeat = args.get_usize("repeat", 1)?.max(1);
    let mut tuned = engine.prepare(&m);
    for _ in 1..repeat {
        tuned = engine.prepare(&m);
    }
    report_decision(&tuned);
    let stats = engine.cache_stats();
    println!(
        "tuning cache: {} hits / {} misses ({} entries); hit {:?}, miss {:?}",
        stats.hits, stats.misses, stats.entries, stats.hit_time, stats.miss_time
    );
    if stats.corrupt_evictions > 0 {
        println!(
            "tuning cache: {} corrupt entries evicted and re-tuned",
            stats.corrupt_evictions
        );
    }
    if stats.poison_recoveries > 0 {
        println!(
            "tuning cache: {} poisoned-lock recoveries (entries dropped, process kept alive)",
            stats.poison_recoveries
        );
    }
    if let Some(path) = cache_path {
        let written = engine.save_cache(path).map_err(|e| taxonomy_msg(&e))?;
        println!("tuning cache: snapshot of {written} entries saved to {path}");
    }
    let kernel = engine.library().info(tuned.kernel());
    println!(
        "kernel: {} ({}); tuning cost {:?}",
        kernel.name,
        kernel.strategies,
        tuned.prepare_time()
    );
    let g = tuned_gflops(&engine, &tuned, Duration::from_millis(20));
    println!("tuned SpMV throughput: {g:.2} GFLOPS");
    Ok(())
}

/// The `bench --variants` scoreboard: every kernel variant of every
/// format the matrix converts to under default limits, measured like
/// the offline search, with each format's scoreboard pick marked.
/// Refused conversions report their `[taxonomy]`-classified reason
/// instead of aborting the sweep.
fn bench_variants(m: &Csr<f64>) -> Result<(), String> {
    let lib = KernelLibrary::<f64>::new();
    let config = SmatConfig::default();
    let limits = config.conversion_limits();
    println!("{} x {}, {} nonzeros", m.rows(), m.cols(), m.nnz());
    for format in Format::ALL {
        match smat_matrix::AnyMatrix::convert_from_csr_with(m, format, &limits) {
            Ok(any) => {
                let table = smat_kernels::measure_format(
                    &lib,
                    &any,
                    Duration::from_millis(5),
                    config.candidate_deadline,
                );
                let best = table.scoreboard().best_variant;
                println!("{format}:");
                for (v, rec) in table.records.iter().enumerate() {
                    match &rec.status {
                        smat_kernels::RecordStatus::Measured => println!(
                            "  {:<28} {:>8.2} GFLOPS  [{}]{}",
                            rec.name,
                            rec.gflops,
                            rec.strategies,
                            if v == best {
                                "  <= scoreboard pick"
                            } else {
                                ""
                            }
                        ),
                        smat_kernels::RecordStatus::CandidateFailed { reason } => {
                            println!("  {:<28} failed: {reason}", rec.name)
                        }
                    }
                }
                // The plan-search grid for CSR: the (chunk policy,
                // fan-out width) candidates the runtime races when the
                // R feature reports a skewed matrix, with the winner
                // the tuning cache would replay. Shown for the
                // scoreboard pick, or — when that pick is serial and
                // has no plan dimension — for the fastest parallel
                // variant, so the grid stays visible on boxes where
                // serial kernels win the scoreboard.
                if format == Format::Csr {
                    let subject = if table.records[best]
                        .strategies
                        .contains(smat_kernels::Strategy::Parallel)
                    {
                        Some(best)
                    } else {
                        table
                            .records
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| {
                                matches!(r.status, smat_kernels::RecordStatus::Measured)
                                    && r.strategies.contains(smat_kernels::Strategy::Parallel)
                            })
                            .max_by(|a, b| a.1.gflops.total_cmp(&b.1.gflops))
                            .map(|(v, _)| v)
                    };
                    if let Some(v) = subject {
                        let id = smat_kernels::KernelId {
                            op: smat_kernels::Op::Spmv,
                            format,
                            variant: v,
                        };
                        if let Some(found) = smat_kernels::search_plan(
                            &lib,
                            &any,
                            id,
                            Duration::from_millis(2),
                            config.candidate_deadline,
                        ) {
                            println!("  plan search for {}:", table.records[v].name);
                            for (i, s) in found.samples.iter().enumerate() {
                                println!(
                                    "    {:<13} width {:>3} -> {:>3} chunks  {:>8.2} GFLOPS{}",
                                    s.policy.name(),
                                    s.parts,
                                    s.chunks,
                                    s.gflops,
                                    if i == found.best {
                                        "  <= plan pick"
                                    } else {
                                        ""
                                    }
                                );
                            }
                        }
                    }
                }
                // The batched tier: the SpMM scoreboard at the widest
                // searched RHS width (k = 8). Formats without tiled
                // SpMM kernels (COO/DIA/HYB) are served per-column by
                // the runtime and report nothing here.
                if lib.spmm_variant_count(format) > 0 {
                    let table = smat_kernels::measure_spmm(
                        &lib,
                        &any,
                        8,
                        Duration::from_millis(5),
                        config.candidate_deadline,
                    );
                    let best = table.scoreboard().best_variant;
                    println!("  spmm (k = 8):");
                    for (v, rec) in table.records.iter().enumerate() {
                        match &rec.status {
                            smat_kernels::RecordStatus::Measured => println!(
                                "    {:<28} {:>8.2} GFLOPS  [{}]{}",
                                rec.name,
                                rec.gflops,
                                rec.strategies,
                                if v == best {
                                    "  <= scoreboard pick"
                                } else {
                                    ""
                                }
                            ),
                            smat_kernels::RecordStatus::CandidateFailed { reason } => {
                                println!("    {:<28} failed: {reason}", rec.name)
                            }
                        }
                    }
                }
            }
            Err(e) => println!(
                "{format}: skipped — {}",
                taxonomy_msg(&smat::SmatError::from(e))
            ),
        }
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let m = load_matrix(args)?;
    if args.has("variants") {
        return bench_variants(&m);
    }
    let lib = KernelLibrary::<f64>::new();
    let trainer = Trainer::default();
    eprintln!("searching kernels...");
    let (choice, _) = trainer.search_kernels(&lib);
    let (best, perf) = label_best_format(&lib, &choice, &m, Duration::from_millis(20));
    println!("{} x {}, {} nonzeros", m.rows(), m.cols(), m.nnz());
    for f in Format::ALL {
        let g = perf[f.index()];
        if g > 0.0 {
            println!(
                "  {f}: {g:.2} GFLOPS{}",
                if f == best { "  <= best" } else { "" }
            );
        } else {
            println!("  {f}: skipped (conversion refused or measurement failed)");
        }
    }
    Ok(())
}

fn cmd_features(args: &Args) -> Result<(), String> {
    let m = load_matrix(args)?;
    let f = extract_features(&m);
    println!("{} x {}, {} nonzeros", m.rows(), m.cols(), m.nnz());
    for (name, value) in smat_features::ATTRIBUTE_NAMES.iter().zip(f.as_array()) {
        if value >= smat_features::R_NOT_SCALE_FREE {
            println!("  {name:>14} = inf (not scale-free)");
        } else {
            println!("  {name:>14} = {value:.6}");
        }
    }
    Ok(())
}

fn cmd_rules(args: &Args) -> Result<(), String> {
    let model = load_model(args)?;
    println!(
        "model precision: {}; trained on {} matrices",
        model.precision, model.stats.train_size
    );
    print!("{}", model.ruleset);
    println!();
    for group in &model.groups.groups {
        println!(
            "group {} ({} rules, confidence {:.2})",
            Format::from_index(group.class),
            group.rules.len(),
            group.confidence
        );
    }
    Ok(())
}

fn cmd_health(args: &Args) -> Result<(), String> {
    let model = load_model(args)?;
    let calls = args.get_usize("calls", 100)?.max(1);
    let dim = args.get_usize("dim", 512)?.max(16);
    let engine = engine_for(model, args)?;
    // Exercise the warm serving path so the report reflects live
    // execution, not just construction: one prepare, then `calls`
    // steady-state multiplies through the containment boundary.
    let m = smat_matrix::gen::random_uniform::<f64>(dim, dim, 8, 0x5EED);
    let tuned = engine.prepare(&m);
    let x = vec![1.0; dim];
    let mut y = vec![0.0; dim];
    for _ in 0..calls {
        engine
            .spmv(&tuned, &x, &mut y)
            .map_err(|e| taxonomy_msg(&e))?;
    }
    // A short batched burst so the op-labeled counters both report
    // live traffic: one warm SpMM call per eight SpMV calls.
    let k = 4;
    let xb = vec![1.0; dim * k];
    let mut yb = vec![0.0; dim * k];
    for _ in 0..calls.div_ceil(8) {
        engine
            .spmm(&tuned, &xb, &mut yb, k)
            .map_err(|e| taxonomy_msg(&e))?;
    }
    // Exercise the handle registry the daemon's warm path rides:
    // park the prepared matrix under its fingerprint, replay `calls`
    // hit lookups, and probe one perturbed fingerprint so the miss
    // counter also reports live traffic rather than zeros.
    let registry = smat::HandleRegistry::new(32, 0);
    let fp = tuned.fingerprint();
    registry.insert(tuned);
    for _ in 0..calls {
        registry
            .lookup(&fp)
            .ok_or("handle registry lost a resident entry")?;
    }
    let mut missing = fp;
    missing.digest[0] ^= 1;
    assert!(registry.lookup(&missing).is_none());
    let handles = registry.stats();
    let report = engine.health_report();
    if args.has("json") {
        use serde::{Serialize as _, Value};
        let cache = engine.cache_stats();
        let mut fields = match report.to_value() {
            Value::Object(fields) => fields,
            other => return Err(format!("health report is not an object: {}", other.kind())),
        };
        let push = |fields: &mut Vec<(String, Value)>, k: &str, v: Value| {
            fields.push((k.to_string(), v));
        };
        push(&mut fields, "handle_hits", Value::UInt(handles.hits));
        push(&mut fields, "handle_misses", Value::UInt(handles.misses));
        push(
            &mut fields,
            "handle_evictions",
            Value::UInt(handles.evictions),
        );
        // One engine in the CLI means one shard, but the entry mirrors
        // the daemon's `shards[i]` schema so the same jq gates apply.
        let shard = smat_service::proto::obj(vec![
            ("index", Value::UInt(0)),
            (
                "cache",
                smat_service::proto::obj(vec![
                    ("hits", Value::UInt(cache.hits)),
                    ("misses", Value::UInt(cache.misses)),
                    ("entries", Value::UInt(cache.entries as u64)),
                    ("capacity", Value::UInt(cache.capacity as u64)),
                    ("corrupt_evictions", Value::UInt(cache.corrupt_evictions)),
                    ("poison_recoveries", Value::UInt(cache.poison_recoveries)),
                    ("coalesced_waits", Value::UInt(cache.coalesced_waits)),
                ]),
            ),
            (
                "quarantined",
                Value::Array(
                    report
                        .quarantined_variants
                        .iter()
                        .map(|q| Value::Str(q.name.clone()))
                        .collect(),
                ),
            ),
            ("pool_demoted", Value::Bool(report.pool_demoted)),
            ("handle_hits", Value::UInt(handles.hits)),
            ("handle_misses", Value::UInt(handles.misses)),
            ("handle_evictions", Value::UInt(handles.evictions)),
            ("handle_entries", Value::UInt(handles.entries as u64)),
            (
                "handle_resident_bytes",
                Value::UInt(handles.resident_bytes as u64),
            ),
        ]);
        push(&mut fields, "shards", Value::Array(vec![shard]));
        let merged = Value::Object(fields);
        let json = serde_json::to_string_pretty(&smat_service::proto::Json(&merged))
            .map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!("execution health after {} warm calls:", report.calls);
    println!(
        "  by op: {} spmv / {} spmm",
        report.spmv_calls, report.spmm_calls
    );
    println!(
        "  contained faults: {} ({} breaker trips)",
        report.exec_faults, report.breaker_trips
    );
    if report.quarantined_variants.is_empty() {
        println!("  quarantined variants: none");
    } else {
        println!("  quarantined variants:");
        for q in &report.quarantined_variants {
            println!(
                "    {} variant {} ({}): {:?}, {} incidents, re-probe at call {}",
                q.kernel.format, q.kernel.variant, q.name, q.state, q.incidents, q.reopen_at
            );
        }
    }
    println!(
        "  re-probes: {} readmitted / {} failed",
        report.reprobe_successes, report.reprobe_failures
    );
    println!(
        "  pool: {} demotion(s), currently {}",
        report.pool_demotions,
        if report.pool_demoted {
            "DEMOTED to the serial rung"
        } else {
            "healthy"
        }
    );
    println!(
        "  prepare: {} degraded, {} quarantine evictions",
        report.degraded_prepares, report.quarantine_evictions
    );
    println!(
        "  handles: {} hits / {} misses / {} evictions; {} resident ({} bytes)",
        handles.hits, handles.misses, handles.evictions, handles.entries, handles.resident_bytes
    );
    println!(
        "  cache: {} hits / {} misses; {} corrupt evictions, {} poison recoveries, {} coalesced waits",
        report.cache_hits,
        report.cache_misses,
        report.corrupt_evictions,
        report.poison_recoveries,
        report.coalesced_waits
    );
    for incident in &report.recent_incidents {
        println!(
            "  incident: {} variant {} {:?}: {}",
            incident.kernel.format, incident.kernel.variant, incident.kind, incident.payload
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let model = load_model(args)?;
    let engine = std::sync::Arc::new(engine_for(model, args)?);
    let mut config = smat_service::ServeConfig::default();
    config.workers = args.get_usize("workers", config.workers)?;
    config.queue_capacity = args.get_usize("queue", config.queue_capacity)?;
    config.degrade_watermark = args.get_usize("degrade-watermark", config.degrade_watermark)?;
    config.default_deadline = Duration::from_millis(
        args.get_usize("deadline-ms", config.default_deadline.as_millis() as usize)? as u64,
    );
    config.max_deadline = Duration::from_millis(
        args.get_usize("max-deadline-ms", config.max_deadline.as_millis() as usize)? as u64,
    );
    config.tenant_rate = args.get_f64("tenant-rate", config.tenant_rate)?;
    config.tenant_burst = args.get_f64("tenant-burst", config.tenant_burst)?;
    config.max_frame_bytes = args.get_usize("max-frame-bytes", config.max_frame_bytes)?;
    config.shards = args.get_usize("shards", config.shards)?;
    config.handle_capacity = args.get_usize("handle-capacity", config.handle_capacity)?;
    config.handle_budget_bytes =
        args.get_usize("handle-budget-bytes", config.handle_budget_bytes)?;
    if let Some(path) = args.get("cache") {
        config.cache_snapshot = Some(path.into());
    }
    let server = if let Some(path) = args.get("socket") {
        let server = smat_service::Server::bind_unix(path, engine, config)
            .map_err(|e| format!("binding unix socket {path}: {e}"))?;
        println!("listening on unix:{path}");
        server
    } else {
        let addr = args.get("addr").unwrap_or("127.0.0.1:7411");
        let server = smat_service::Server::bind_tcp(addr, engine, config)
            .map_err(|e| format!("binding {addr}: {e}"))?;
        let bound = server
            .local_addr()
            .ok_or("TCP listener lost its local address")?;
        println!("listening on {bound}");
        server
    };
    // The listening line is the startup handshake scripts scrape for
    // the ephemeral port; make sure it is out before blocking.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let summary = server.run().map_err(|e| format!("serve loop: {e}"))?;
    println!(
        "drained: {} requests ({} ok, {} degraded, {} shed, {} deadline misses, {} handle misses, {} errors)",
        summary.requests_total,
        summary.requests_ok,
        summary.requests_degraded,
        summary.requests_shed,
        summary.deadline_misses,
        summary.requests_handle_miss,
        summary.requests_error
    );
    if let Some(entries) = summary.cache_snapshot_entries {
        println!("cache snapshot persisted ({entries} entries)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_switches_positionals() {
        let argv: Vec<String> = ["--model", "m.json", "--single", "a.mtx", "--corpus", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse(&argv);
        assert_eq!(a.get("model"), Some("m.json"));
        assert!(a.has("single"));
        assert_eq!(a.positional, vec!["a.mtx"]);
        assert_eq!(a.get_usize("corpus", 1).unwrap(), 5);
        assert_eq!(a.get_usize("seed", 7).unwrap(), 7);
        assert!(a.get_usize("model", 0).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_ok()); // prints usage
        assert!(run(&["help".to_string()]).is_ok());
    }

    #[test]
    fn missing_required_flags_error_cleanly() {
        assert!(cmd_train(&Args::parse(&[])).is_err());
        assert!(cmd_predict(&Args::parse(&[])).is_err());
        assert!(cmd_rules(&Args::parse(&[])).is_err());
        assert!(cmd_health(&Args::parse(&[])).is_err());
        assert!(cmd_serve(&Args::parse(&[])).is_err());
    }

    #[test]
    fn end_to_end_train_and_inspect() {
        let dir = std::env::temp_dir().join("smat_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        let mtx_path = dir.join("m.mtx");

        // Tiny training run.
        let argv: Vec<String> = [
            "--out",
            model_path.to_str().unwrap(),
            "--corpus",
            "25",
            "--min-dim",
            "64",
            "--max-dim",
            "256",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_train(&Args::parse(&argv)).unwrap();
        assert!(model_path.exists());

        // Write a matrix and run predict/tune/features/bench on it.
        let m = smat_matrix::gen::tridiagonal::<f64>(500);
        smat_matrix::io::write_matrix_market_file(&m, &mtx_path).unwrap();
        let argv: Vec<String> = [
            "--model",
            model_path.to_str().unwrap(),
            mtx_path.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_predict(&Args::parse(&argv)).unwrap();
        cmd_tune(&Args::parse(&argv)).unwrap();
        cmd_rules(&Args::parse(&argv)).unwrap();
        let argv: Vec<String> = vec![mtx_path.to_str().unwrap().to_string()];
        cmd_features(&Args::parse(&argv)).unwrap();

        // bench --variants: the per-variant scoreboard sweep.
        let argv: Vec<String> = vec![
            "--variants".to_string(),
            mtx_path.to_str().unwrap().to_string(),
        ];
        let parsed = Args::parse(&argv);
        assert!(parsed.has("variants"));
        cmd_bench(&parsed).unwrap();

        // tune --cache: the first run creates the snapshot, the second
        // warm-starts from it.
        let cache_path = dir.join("cache.json");
        std::fs::remove_file(&cache_path).ok();
        let argv: Vec<String> = [
            "--model",
            model_path.to_str().unwrap(),
            "--cache",
            cache_path.to_str().unwrap(),
            mtx_path.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_tune(&Args::parse(&argv)).unwrap();
        assert!(cache_path.exists(), "first run must write the snapshot");
        cmd_tune(&Args::parse(&argv)).unwrap();

        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&mtx_path).ok();
        std::fs::remove_file(&cache_path).ok();
    }
}

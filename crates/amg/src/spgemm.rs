//! Sparse matrix-matrix products (CSR × CSR) and the Galerkin triple
//! product `A_coarse = R · A · P` used by the AMG setup phase.
//!
//! The multiply is Gustavson's algorithm: one dense accumulator row,
//! reset lazily via a versioned marker array.

use smat_matrix::{Csr, Scalar};

/// Computes `C = A · B` for CSR matrices.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spgemm dimension mismatch: {}x{} times {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let rows = a.rows();
    let cols = b.cols();
    let mut acc = vec![T::ZERO; cols];
    let mut marker = vec![usize::MAX; cols];
    let mut row_cols: Vec<usize> = Vec::new();

    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);

    for i in 0..rows {
        row_cols.clear();
        let (a_cols, a_vals) = a.row(i);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                if marker[j] != i {
                    marker[j] = i;
                    acc[j] = T::ZERO;
                    row_cols.push(j);
                }
                acc[j] += av * bv;
            }
        }
        row_cols.sort_unstable();
        for &j in &row_cols {
            col_idx.push(j);
            values.push(acc[j]);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts_unchecked(rows, cols, row_ptr, col_idx, values)
}

/// The Galerkin coarse operator `R · A · P` (with `R` usually `P^T`).
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn rap<T: Scalar>(r: &Csr<T>, a: &Csr<T>, p: &Csr<T>) -> Csr<T> {
    spgemm(&spgemm(r, a), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{laplacian_2d_5pt, random_uniform};
    use smat_matrix::utils::max_abs_diff;

    fn dense_mul(a: &Csr<f64>, b: &Csr<f64>) -> Vec<f64> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let da = a.to_dense();
        let db = b.to_dense();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = da[i * k + l];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * db[l * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn matches_dense_multiply() {
        let a = random_uniform::<f64>(40, 30, 4, 1);
        let b = random_uniform::<f64>(30, 25, 3, 2);
        let c = spgemm(&a, &b);
        assert_eq!(c.rows(), 40);
        assert_eq!(c.cols(), 25);
        assert!(max_abs_diff(&c.to_dense(), &dense_mul(&a, &b)) < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_uniform::<f64>(20, 20, 5, 3);
        let i = Csr::<f64>::identity(20);
        assert_eq!(spgemm(&a, &i), a);
        assert_eq!(spgemm(&i, &a), a);
    }

    #[test]
    fn rap_preserves_symmetry() {
        let a = laplacian_2d_5pt::<f64>(8, 8);
        // Simple aggregation-like P: group pairs of points.
        let n = a.rows();
        let nc = n / 2;
        let triplets: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, (i / 2).min(nc - 1), 1.0)).collect();
        let p = Csr::from_triplets(n, nc, &triplets).unwrap();
        let r = p.transpose();
        let ac = rap(&r, &a, &p);
        assert_eq!(ac.rows(), nc);
        assert_eq!(ac.cols(), nc);
        assert_eq!(ac.transpose(), ac, "Galerkin product of symmetric A");
        // Row sums of A are >= 0 and P partitions unity -> Ac row sums >= 0.
        for i in 0..nc {
            let (_, vals) = ac.row(i);
            assert!(vals.iter().sum::<f64>() >= -1e-9);
        }
    }

    #[test]
    fn cancellation_keeps_explicit_zero() {
        // (1)(1) + (1)(-1) = 0: Gustavson keeps the structural entry.
        let a = Csr::<f64>::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b = Csr::<f64>::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, -1.0)]).unwrap();
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "spgemm dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = Csr::<f64>::identity(3);
        let b = Csr::<f64>::identity(4);
        spgemm(&a, &b);
    }
}

//! Algebraic multigrid (AMG) — the SMAT reproduction's stand-in for the
//! Hypre/BoomerAMG solver the paper integrates with in §7.4.
//!
//! The solver builds a hierarchy of coarse operators via classical
//! strength-of-connection ([`StrengthGraph`]), Ruge–Stüben or CLJP
//! coarsening ([`coarsen`]), direct interpolation and Galerkin triple
//! products ([`spgemm`]), then solves by V-cycles with Jacobi or
//! Gauss–Seidel smoothing — optionally routing every grid and transfer
//! operator through a SMAT engine so each level's SpMV runs in the
//! format and kernel the tuner picks per level (the paper's Figure 1 /
//! Table 4 experiment).
//!
//! # Examples
//!
//! ```
//! use smat_amg::{AmgConfig, AmgSolver, CycleConfig};
//! use smat_matrix::gen::laplacian_2d_5pt;
//!
//! let a = laplacian_2d_5pt::<f64>(24, 24);
//! let n = a.rows();
//! let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
//! let b = vec![1.0; n];
//! let mut x = vec![0.0; n];
//! let stats = solver.solve(&b, &mut x, 1e-8, 50);
//! assert!(stats.converged);
//! ```

#![warn(missing_docs)]

pub mod coarsen;
mod cycle;
mod hierarchy;
mod interp;
mod relax;
mod solver;
mod spgemm;
mod strength;

pub use coarsen::{Coarsening, PointType, Splitting};
pub use cycle::{
    CompiledHierarchy, CompiledLevel, CycleConfig, CycleType, DenseLu, OpApply, Workspace,
};
pub use hierarchy::{setup, AmgConfig, Hierarchy, Level};
pub use interp::{direct_interpolation, truncate_interpolation};
pub use relax::{
    gauss_seidel, gauss_seidel_backward, jacobi, jacobi_update, residual, symmetric_gauss_seidel,
    Relaxation,
};
pub use solver::{cg, AmgSolver, SolveStats};
pub use spgemm::{rap, spgemm};
pub use strength::{StrengthGraph, DEFAULT_THETA};

/// Stencil generators re-exported for convenience (the paper's AMG
/// inputs: 7-point and 9-point Laplacians).
pub mod laplacian {
    pub use smat_matrix::gen::{
        laplacian_1d, laplacian_2d_5pt, laplacian_2d_9pt, laplacian_3d_7pt,
    };
}

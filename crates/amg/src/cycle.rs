//! V-cycle execution over a *compiled* hierarchy.
//!
//! Compiling a [`Hierarchy`] chooses, per operator (grid operators `A_l`
//! and transfer operators `P_l`/`R_l`), either the plain CSR kernel or a
//! SMAT-tuned format+kernel — this is exactly the paper's §7.4
//! integration, where "SMAT chooses DIA format for A-operators at the
//! first few levels, and ELL format for most P-operators" by replacing
//! SpMV calls with the SMAT interface.

use crate::hierarchy::Hierarchy;
use crate::relax::{gauss_seidel, jacobi_update, residual, symmetric_gauss_seidel, Relaxation};
use serde::{Deserialize, Serialize};
use smat::{Smat, TunedSpmv};
use smat_kernels::KernelLibrary;
use smat_matrix::{Csr, Format, Scalar};

/// Multigrid cycle shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleType {
    /// One coarse-grid correction per level (Hypre's default).
    V,
    /// Two coarse-grid corrections per level — more work, stronger
    /// per-cycle error reduction on hard problems.
    W,
}

/// Parameters of the solve cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleConfig {
    /// Pre-smoothing sweeps.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps.
    pub post_sweeps: usize,
    /// Smoother.
    pub relax: Relaxation,
    /// V- or W-cycle.
    pub cycle_type: CycleType,
}

impl Default for CycleConfig {
    fn default() -> Self {
        Self {
            pre_sweeps: 1,
            post_sweeps: 1,
            relax: Relaxation::default(),
            cycle_type: CycleType::V,
        }
    }
}

/// An operator ready for application: plain CSR or SMAT-tuned.
#[derive(Debug)]
pub enum OpApply<T> {
    /// Reference CSR SpMV.
    Plain(Csr<T>),
    /// SMAT-selected format and kernel.
    Tuned(Box<TunedSpmv<T>>),
}

impl<T: Scalar> OpApply<T> {
    /// Applies the operator: `y = Op * x`.
    ///
    /// # Panics
    ///
    /// Panics on vector length mismatch.
    pub fn apply(&self, lib: &KernelLibrary<T>, x: &[T], y: &mut [T]) {
        match self {
            OpApply::Plain(m) => m.spmv(x, y).expect("validated dimensions"),
            // Each compiled operator carries the plan built at prepare
            // time, so every smoothing sweep and transfer application in
            // every V-cycle replays frozen chunk bounds instead of
            // re-partitioning.
            OpApply::Tuned(t) => lib.run_planned(t.matrix(), t.kernel().variant, t.plan(), x, y),
        }
    }

    /// The storage format in use.
    pub fn format(&self) -> Format {
        match self {
            OpApply::Plain(_) => Format::Csr,
            OpApply::Tuned(t) => t.format(),
        }
    }

    /// Whether the tuner abandoned this operator to the degraded
    /// reference path (always `false` for plain operators).
    pub fn is_degraded(&self) -> bool {
        match self {
            OpApply::Plain(_) => false,
            OpApply::Tuned(t) => t.decision().is_degraded(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            OpApply::Plain(m) => m.rows(),
            OpApply::Tuned(t) => t.matrix().rows(),
        }
    }
}

/// Dense LU factorization (partial pivoting) for the coarsest solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLu<T> {
    n: usize,
    lu: Vec<T>,
    piv: Vec<usize>,
}

impl<T: Scalar> DenseLu<T> {
    /// Factors a (small) square CSR matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is singular to working precision or not
    /// square.
    pub fn factor(a: &Csr<T>) -> Self {
        assert_eq!(a.rows(), a.cols(), "dense LU needs a square matrix");
        let n = a.rows();
        let mut lu = a.to_dense();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            assert!(
                max.to_f64() > 1e-300,
                "singular coarse operator at column {k}"
            );
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in k + 1..n {
                    let sub = factor * lu[k * n + j];
                    lu[i * n + j] -= sub;
                }
            }
        }
        Self { n, lu, piv }
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn solve(&self, b: &[T], x: &mut [T]) {
        assert_eq!(b.len(), self.n, "b length");
        assert_eq!(x.len(), self.n, "x length");
        let n = self.n;
        // Permute and forward substitute.
        for i in 0..n {
            x[i] = b[self.piv[i]];
        }
        for i in 0..n {
            for j in 0..i {
                let sub = self.lu[i * n + j] * x[j];
                x[i] -= sub;
            }
        }
        // Back substitute.
        for i in (0..n).rev() {
            for j in i + 1..n {
                let sub = self.lu[i * n + j] * x[j];
                x[i] -= sub;
            }
            x[i] /= self.lu[i * n + i];
        }
    }
}

/// One compiled level.
#[derive(Debug)]
pub struct CompiledLevel<T> {
    /// The grid operator, possibly tuned.
    pub a: OpApply<T>,
    /// The operator kept in CSR for Gauss–Seidel and diagnostics.
    pub a_csr: Csr<T>,
    /// Diagonal of `A` (for Jacobi).
    pub diag: Vec<T>,
    /// Prolongation, possibly tuned (`None` on the coarsest level).
    pub p: Option<OpApply<T>>,
    /// Restriction, possibly tuned.
    pub r: Option<OpApply<T>>,
}

/// A hierarchy compiled for execution: operators bound to kernels, the
/// coarsest level factored densely.
#[derive(Debug)]
pub struct CompiledHierarchy<T: Scalar> {
    /// Compiled levels, finest first.
    pub levels: Vec<CompiledLevel<T>>,
    /// Dense factorization of the coarsest operator.
    pub coarse_lu: DenseLu<T>,
    lib: KernelLibrary<T>,
    tuning: Option<smat::CacheStats>,
}

impl<T: Scalar> CompiledHierarchy<T> {
    /// Compiles a hierarchy with plain CSR operators everywhere — the
    /// baseline "Hypre AMG" configuration of Table 4.
    pub fn plain(h: &Hierarchy<T>) -> Self {
        Self::compile(h, None)
    }

    /// Compiles a hierarchy with every operator tuned through SMAT — the
    /// "SMAT AMG" configuration of Table 4. Operators keep CSR when the
    /// tuner decides CSR is best.
    pub fn with_smat(h: &Hierarchy<T>, engine: &Smat<T>) -> Self {
        Self::compile(h, Some(engine))
    }

    fn compile(h: &Hierarchy<T>, engine: Option<&Smat<T>>) -> Self {
        let before = engine.map(|e| e.cache_stats());
        let tune = |m: &Csr<T>| -> OpApply<T> {
            match engine {
                Some(e) => OpApply::Tuned(Box::new(e.prepare(m))),
                None => OpApply::Plain(m.clone()),
            }
        };
        let levels: Vec<CompiledLevel<T>> = h
            .levels
            .iter()
            .map(|l| CompiledLevel {
                a: tune(&l.a),
                a_csr: l.a.clone(),
                diag: l.a.diagonal(),
                p: l.p.as_ref().map(&tune),
                r: l.r.as_ref().map(&tune),
            })
            .collect();
        let coarse_lu = DenseLu::factor(&h.levels.last().expect("non-empty hierarchy").a);
        let tuning = engine
            .zip(before)
            .map(|(e, before)| e.cache_stats().since(&before));
        Self {
            levels,
            coarse_lu,
            lib: KernelLibrary::new(),
            tuning,
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The formats chosen for each level's `A` operator (Figure 1's
    /// per-level story).
    pub fn a_formats(&self) -> Vec<Format> {
        self.levels.iter().map(|l| l.a.format()).collect()
    }

    /// Tuning-cache traffic of this compile (hits/misses/latency across
    /// every `prepare` call on grid and transfer operators). `None` for
    /// a plain (untuned) hierarchy.
    pub fn tuning_stats(&self) -> Option<&smat::CacheStats> {
        self.tuning.as_ref()
    }

    /// Per-level count of operators (`A`, `P`, `R`) the tuner degraded
    /// to the reference CSR path during this setup — the V-cycle keeps
    /// running on such operators, just untuned, so a nonzero count here
    /// is the observable trace of a fault-tolerant (rather than failed)
    /// setup.
    pub fn degraded_ops_per_level(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|l| {
                usize::from(l.a.is_degraded())
                    + l.p.as_ref().map_or(0, |op| usize::from(op.is_degraded()))
                    + l.r.as_ref().map_or(0, |op| usize::from(op.is_degraded()))
            })
            .collect()
    }

    /// Total operators degraded across every level (see
    /// [`Self::degraded_ops_per_level`]).
    pub fn degraded_ops(&self) -> usize {
        self.degraded_ops_per_level().iter().sum()
    }

    /// Runs one cycle (V or W per `cfg.cycle_type`) on the finest level:
    /// improves `x` toward `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b`/`x` lengths do not match the finest operator.
    pub fn v_cycle(&self, cfg: &CycleConfig, b: &[T], x: &mut [T], ws: &mut Workspace<T>) {
        assert_eq!(b.len(), self.levels[0].a_csr.rows(), "b length");
        assert_eq!(x.len(), b.len(), "x length");
        ws.ensure(self);
        ws.bs[0].copy_from_slice(b);
        ws.xs[0].copy_from_slice(x);
        self.cycle_level(0, cfg, ws);
        x.copy_from_slice(&ws.xs[0]);
    }

    fn smooth(&self, level: usize, cfg: &CycleConfig, sweeps: usize, ws: &mut Workspace<T>) {
        let l = &self.levels[level];
        for _ in 0..sweeps {
            match cfg.relax {
                Relaxation::Jacobi { omega } => {
                    // Route the product through the (possibly tuned) kernel.
                    let (x, scratch) = (&mut ws.xs[level], &mut ws.scratch[level]);
                    l.a.apply(&self.lib, x, scratch);
                    jacobi_update(&l.diag, omega, scratch, &ws.bs[level], x);
                }
                Relaxation::GaussSeidel => {
                    gauss_seidel(&l.a_csr, &ws.bs[level], &mut ws.xs[level]);
                }
                Relaxation::SymmetricGaussSeidel => {
                    symmetric_gauss_seidel(&l.a_csr, &ws.bs[level], &mut ws.xs[level]);
                }
            }
        }
    }

    fn cycle_level(&self, level: usize, cfg: &CycleConfig, ws: &mut Workspace<T>) {
        let coarsest = level + 1 == self.levels.len();
        if coarsest {
            let b = ws.bs[level].clone();
            self.coarse_lu.solve(&b, &mut ws.xs[level]);
            return;
        }
        self.smooth(level, cfg, cfg.pre_sweeps, ws);
        // Residual through the tuned kernel: r = b - A x.
        {
            let l = &self.levels[level];
            l.a.apply(&self.lib, &ws.xs[level], &mut ws.scratch[level]);
            for i in 0..ws.scratch[level].len() {
                ws.rs[level][i] = ws.bs[level][i] - ws.scratch[level][i];
            }
        }
        // Restrict to the next level's right-hand side.
        {
            let (head, tail) = ws.bs.split_at_mut(level + 1);
            let _ = head;
            let r_op = self.levels[level].r.as_ref().expect("non-coarsest level");
            r_op.apply(&self.lib, &ws.rs[level], &mut tail[0]);
        }
        ws.xs[level + 1].fill(T::ZERO);
        let gamma = match cfg.cycle_type {
            CycleType::V => 1,
            CycleType::W => 2,
        };
        for visit in 0..gamma {
            if visit > 0 && level + 2 == self.levels.len() {
                break; // W-cycle revisits collapse on the coarsest pair
            }
            self.cycle_level(level + 1, cfg, ws);
        }
        // Prolongate and correct.
        {
            let p_op = self.levels[level].p.as_ref().expect("non-coarsest level");
            let (xs_head, xs_tail) = ws.xs.split_at_mut(level + 1);
            p_op.apply(&self.lib, &xs_tail[0], &mut ws.scratch[level]);
            let x = &mut xs_head[level];
            for (xi, &si) in x.iter_mut().zip(ws.scratch[level].iter()) {
                *xi += si;
            }
        }
        self.smooth(level, cfg, cfg.post_sweeps, ws);
    }

    /// Computes the finest-level residual norm `||b - A x||`.
    pub fn residual_norm(&self, b: &[T], x: &[T]) -> f64 {
        let mut r = vec![T::ZERO; b.len()];
        residual(&self.levels[0].a_csr, x, b, &mut r);
        smat_matrix::utils::norm2(&r).to_f64()
    }
}

/// Reusable per-level vectors for cycling (avoids per-cycle allocation).
#[derive(Debug, Default)]
pub struct Workspace<T> {
    xs: Vec<Vec<T>>,
    bs: Vec<Vec<T>>,
    rs: Vec<Vec<T>>,
    scratch: Vec<Vec<T>>,
}

impl<T: Scalar> Workspace<T> {
    /// Creates an empty workspace; it sizes itself on first use.
    pub fn new() -> Self {
        Self {
            xs: Vec::new(),
            bs: Vec::new(),
            rs: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn ensure(&mut self, h: &CompiledHierarchy<T>) {
        if self.xs.len() == h.levels.len()
            && self
                .xs
                .iter()
                .zip(&h.levels)
                .all(|(v, l)| v.len() == l.a_csr.rows())
        {
            return;
        }
        let dims: Vec<usize> = h.levels.iter().map(|l| l.a_csr.rows()).collect();
        self.xs = dims.iter().map(|&n| vec![T::ZERO; n]).collect();
        self.bs = dims.iter().map(|&n| vec![T::ZERO; n]).collect();
        self.rs = dims.iter().map(|&n| vec![T::ZERO; n]).collect();
        self.scratch = dims.iter().map(|&n| vec![T::ZERO; n]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{setup, AmgConfig};
    use smat_matrix::gen::laplacian_2d_5pt;
    use smat_matrix::utils::norm2;

    #[test]
    fn dense_lu_solves_small_systems() {
        let a = Csr::<f64>::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap();
        let lu = DenseLu::factor(&a);
        let x_true = [1.0, -2.0, 3.0];
        let mut b = [0.0; 3];
        a.spmv(&x_true, &mut b).unwrap();
        let mut x = [0.0; 3];
        lu.solve(&b, &mut x);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_lu_handles_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Csr::<f64>::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0), (1, 1, 1.0)]).unwrap();
        let lu = DenseLu::factor(&a);
        let mut x = [0.0; 2];
        lu.solve(&[3.0, 5.0], &mut x);
        // x1 = 3; 2*x0 + x1 = 5 -> x0 = 1.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn v_cycle_reduces_residual_fast() {
        let a = laplacian_2d_5pt::<f64>(24, 24);
        let n = a.rows();
        let h = setup(a, &AmgConfig::default());
        let c = CompiledHierarchy::plain(&h);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut ws = Workspace::new();
        let cfg = CycleConfig::default();
        let r0 = c.residual_norm(&b, &x);
        c.v_cycle(&cfg, &b, &mut x, &mut ws);
        let r1 = c.residual_norm(&b, &x);
        c.v_cycle(&cfg, &b, &mut x, &mut ws);
        let r2 = c.residual_norm(&b, &x);
        assert!(r1 < 0.5 * r0, "first cycle too weak: {r0} -> {r1}");
        assert!(r2 < 0.5 * r1, "second cycle too weak: {r1} -> {r2}");
    }

    #[test]
    fn gauss_seidel_cycles_also_converge() {
        let a = laplacian_2d_5pt::<f64>(16, 16);
        let n = a.rows();
        let h = setup(a, &AmgConfig::default());
        let c = CompiledHierarchy::plain(&h);
        let cfg = CycleConfig {
            relax: Relaxation::GaussSeidel,
            ..CycleConfig::default()
        };
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut ws = Workspace::new();
        for _ in 0..8 {
            c.v_cycle(&cfg, &b, &mut x, &mut ws);
        }
        assert!(c.residual_norm(&b, &x) < 1e-6 * norm2(&b));
    }

    #[test]
    fn w_cycle_converges_at_least_as_fast_per_cycle() {
        let a = laplacian_2d_5pt::<f64>(20, 20);
        let n = a.rows();
        let h = setup(a, &AmgConfig::default());
        let c = CompiledHierarchy::plain(&h);
        let b = vec![1.0; n];
        let mut ws = Workspace::new();

        let run = |cycle_type: CycleType, ws: &mut Workspace<f64>| {
            let cfg = CycleConfig {
                cycle_type,
                ..CycleConfig::default()
            };
            let mut x = vec![0.0; n];
            for _ in 0..4 {
                c.v_cycle(&cfg, &b, &mut x, ws);
            }
            c.residual_norm(&b, &x)
        };
        let rv = run(CycleType::V, &mut ws);
        let rw = run(CycleType::W, &mut ws);
        assert!(rw <= rv * 1.01, "W-cycle weaker than V: {rw} vs {rv}");
        // ||b|| = sqrt(n); require a 1e-3 relative reduction in 4 cycles.
        assert!(
            rw < 1e-3 * (n as f64).sqrt(),
            "W-cycle failed to converge: {rw}"
        );
    }

    #[test]
    fn plain_formats_are_all_csr() {
        let a = laplacian_2d_5pt::<f64>(12, 12);
        let h = setup(a, &AmgConfig::default());
        let c = CompiledHierarchy::plain(&h);
        assert!(c.a_formats().iter().all(|&f| f == Format::Csr));
        assert_eq!(c.degraded_ops(), 0, "plain compiles never degrade");
    }

    #[test]
    fn degraded_operators_are_counted_and_cycles_still_converge() {
        use smat::{SmatConfig, Trainer};
        use smat_matrix::gen::{random_uniform, tridiagonal};

        let t1 = tridiagonal::<f64>(300);
        let t2 = random_uniform::<f64>(250, 250, 6, 1);
        let out = Trainer::new(SmatConfig::fast()).train(&[&t1, &t2]).unwrap();

        // Healthy engine: no operator degrades.
        let healthy =
            smat::Smat::<f64>::with_config(out.model.clone(), SmatConfig::fast()).unwrap();
        let a = laplacian_2d_5pt::<f64>(16, 16);
        let h = setup(a.clone(), &AmgConfig::default());
        let c = CompiledHierarchy::with_smat(&h, &healthy);
        assert_eq!(c.degraded_ops(), 0);
        assert_eq!(c.degraded_ops_per_level().len(), c.num_levels());

        // Sabotaged engine: its only fallback candidate (CSR) runs a
        // panicking kernel, so every prepare degrades — but setup
        // completes and the V-cycle still reduces the residual through
        // the reference path.
        fn bad_csr(_: &Csr<f64>, _: &[f64], _: &mut [f64]) {
            panic!("sabotaged kernel");
        }
        let bad_variant = KernelLibrary::<f64>::new().variant_count(Format::Csr);
        let mut model = out.model;
        model.kernel_choice.set(Format::Csr, bad_variant);
        let cfg = SmatConfig {
            confidence_threshold: 1.1, // no prediction is ever trusted
            fallback_formats: vec![Format::Csr],
            ..SmatConfig::fast()
        };
        let mut sabotaged = smat::Smat::<f64>::with_config(model, cfg).unwrap();
        sabotaged.library_mut().register_csr(
            "csr_sabotaged",
            smat_kernels::StrategySet::default(),
            bad_csr,
        );
        let c = CompiledHierarchy::with_smat(&h, &sabotaged);
        let total_ops: usize = c
            .levels
            .iter()
            .map(|l| 1 + usize::from(l.p.is_some()) + usize::from(l.r.is_some()))
            .sum();
        assert_eq!(c.degraded_ops(), total_ops, "every operator degrades");
        assert!(c.degraded_ops_per_level().iter().all(|&n| n >= 1));
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut ws = Workspace::new();
        let cfg = CycleConfig::default();
        let r0 = c.residual_norm(&b, &x);
        c.v_cycle(&cfg, &b, &mut x, &mut ws);
        let r1 = c.residual_norm(&b, &x);
        assert!(r1 < 0.5 * r0, "degraded cycle too weak: {r0} -> {r1}");
    }
}

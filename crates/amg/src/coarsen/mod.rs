//! Coarse/fine splitting algorithms.
//!
//! The paper's Table 4 exercises two Hypre coarsening methods — classical
//! Ruge–Stüben ("rugeL") and the parallel CLJP algorithm ("cljp") — so
//! both are provided.

pub mod cljp;
pub mod rs;

use crate::strength::StrengthGraph;
use serde::{Deserialize, Serialize};

/// Classification of a point in the coarse/fine splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointType {
    /// Coarse-grid point (survives to the next level).
    Coarse,
    /// Fine-grid point (interpolated from coarse neighbors).
    Fine,
}

/// A coarse/fine splitting.
#[derive(Debug, Clone, PartialEq)]
pub struct Splitting {
    /// Per-point classification.
    pub types: Vec<PointType>,
    /// For coarse points, their index on the coarse grid; `usize::MAX`
    /// for fine points.
    pub coarse_index: Vec<usize>,
    /// Number of coarse points.
    pub n_coarse: usize,
}

impl Splitting {
    /// Builds the splitting bookkeeping from raw point types.
    pub fn from_types(types: Vec<PointType>) -> Self {
        let mut coarse_index = vec![usize::MAX; types.len()];
        let mut n_coarse = 0;
        for (i, &t) in types.iter().enumerate() {
            if t == PointType::Coarse {
                coarse_index[i] = n_coarse;
                n_coarse += 1;
            }
        }
        Self {
            types,
            coarse_index,
            n_coarse,
        }
    }

    /// Whether point `i` is coarse.
    pub fn is_coarse(&self, i: usize) -> bool {
        self.types[i] == PointType::Coarse
    }

    /// Number of points on the fine grid.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the splitting is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// Which coarsening algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Coarsening {
    /// Classical Ruge–Stüben first-pass greedy coarsening.
    RugeStuben,
    /// CLJP-style parallel independent-set coarsening.
    Cljp,
}

/// Runs the selected coarsening and applies the common fix-up: every
/// fine point must keep at least one strong coarse influencer so direct
/// interpolation is well-defined; isolated points (no strong neighbors
/// at all) become coarse.
pub fn coarsen(graph: &StrengthGraph, method: Coarsening, seed: u64) -> Splitting {
    let mut types = match method {
        Coarsening::RugeStuben => rs::split(graph),
        Coarsening::Cljp => cljp::split(graph, seed),
    };
    fixup(graph, &mut types);
    Splitting::from_types(types)
}

/// Promotes any fine point lacking a strong coarse influencer to coarse.
fn fixup(graph: &StrengthGraph, types: &mut [PointType]) {
    for i in 0..types.len() {
        if types[i] == PointType::Fine {
            let has_coarse = graph
                .influencers(i)
                .iter()
                .any(|&j| types[j] == PointType::Coarse);
            if !has_coarse {
                types[i] = PointType::Coarse;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::laplacian_2d_5pt;

    #[test]
    fn splitting_bookkeeping() {
        let s = Splitting::from_types(vec![PointType::Coarse, PointType::Fine, PointType::Coarse]);
        assert_eq!(s.n_coarse, 2);
        assert_eq!(s.coarse_index, vec![0, usize::MAX, 1]);
        assert!(s.is_coarse(0));
        assert!(!s.is_coarse(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn both_methods_produce_valid_splittings() {
        let a = laplacian_2d_5pt::<f64>(12, 12);
        let g = StrengthGraph::build(&a, 0.25);
        for method in [Coarsening::RugeStuben, Coarsening::Cljp] {
            let s = coarsen(&g, method, 42);
            assert!(s.n_coarse > 0, "{method:?} produced no coarse points");
            assert!(s.n_coarse < s.len(), "{method:?} failed to coarsen at all");
            // Every fine point has a strong coarse influencer.
            for i in 0..s.len() {
                if !s.is_coarse(i) {
                    assert!(
                        g.influencers(i).iter().any(|&j| s.is_coarse(j)),
                        "{method:?}: fine point {i} has no coarse influencer"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_points_become_coarse() {
        // Identity matrix: no strong connections anywhere.
        let a = smat_matrix::Csr::<f64>::identity(6);
        let g = StrengthGraph::build(&a, 0.25);
        let s = coarsen(&g, Coarsening::RugeStuben, 0);
        assert_eq!(s.n_coarse, 6, "isolated points must all be coarse");
    }
}

//! CLJP-style coarsening (Cleary–Luby–Jones–Plassmann).
//!
//! The parallel coarsening the paper benchmarks as "cljp". Each point
//! gets the weight `|S_i^T| + rand[0, 1)`; rounds of independent-set
//! selection pick every point whose weight exceeds all of its strong
//! neighbors' weights as coarse, then decrement the weights of points
//! whose dependencies are now covered, turning exhausted points fine.
//!
//! This is the sequential execution of the parallel algorithm (rounds
//! are inherently parallel); the weight-update heuristics are the
//! standard ones modulo the shared-neighbor refinement, which only
//! affects coarsening density, not correctness.

use super::PointType;
use crate::strength::StrengthGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs CLJP splitting with the given RNG seed (the random tie-breaker
/// makes weights distinct).
pub fn split(graph: &StrengthGraph, seed: u64) -> Vec<PointType> {
    let n = graph.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        Unassigned,
        Coarse,
        Fine,
    }
    let mut state = vec![State::Unassigned; n];
    let mut weight: Vec<f64> = (0..n)
        .map(|i| graph.influence_count(i) as f64 + rng.gen::<f64>())
        .collect();

    // Points with no strong connections at all are immediately fine;
    // the caller's fix-up promotes isolated ones to coarse.
    for (i, s) in state.iter_mut().enumerate() {
        if graph.influencers(i).is_empty() && graph.influences(i).is_empty() {
            *s = State::Fine;
        }
    }

    loop {
        // Independent set: weight strictly larger than every unassigned
        // strong neighbor (both directions).
        let mut selected = Vec::new();
        for i in 0..n {
            if state[i] != State::Unassigned {
                continue;
            }
            let dominated = graph
                .influencers(i)
                .iter()
                .chain(graph.influences(i))
                .any(|&j| state[j] == State::Unassigned && weight[j] >= weight[i]);
            if !dominated {
                selected.push(i);
            }
        }
        if selected.is_empty() {
            // All remaining unassigned points are in weight cycles only
            // possible with ties; random weights make this effectively
            // unreachable, but stay safe:
            for s in &mut state {
                if *s == State::Unassigned {
                    *s = State::Fine;
                }
            }
            break;
        }
        for &c in &selected {
            state[c] = State::Coarse;
        }
        // Weight updates: a point that now depends on a new C point has
        // that dependency satisfied — decrement once per new C neighbor;
        // exhausted points become fine.
        for &c in &selected {
            for &j in graph.influences(c) {
                if state[j] == State::Unassigned {
                    weight[j] -= 1.0;
                    if weight[j] < 1.0 {
                        state[j] = State::Fine;
                    }
                }
            }
        }
        if state.iter().all(|&s| s != State::Unassigned) {
            break;
        }
    }

    state
        .into_iter()
        .map(|s| match s {
            State::Coarse => PointType::Coarse,
            _ => PointType::Fine,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::StrengthGraph;
    use smat_matrix::gen::{laplacian_2d_5pt, laplacian_3d_7pt};

    #[test]
    fn produces_a_nontrivial_splitting() {
        let a = laplacian_2d_5pt::<f64>(16, 16);
        let g = StrengthGraph::build(&a, 0.25);
        let types = split(&g, 7);
        let coarse = types.iter().filter(|&&t| t == PointType::Coarse).count();
        let ratio = coarse as f64 / types.len() as f64;
        assert!((0.1..=0.7).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn no_two_adjacent_coarse_points_in_a_round() {
        // CLJP can produce adjacent C points across rounds, but the
        // splitting must still cover: every F point keeps >= 1 strong
        // neighbor that is C OR gets promoted by the caller's fix-up.
        // Here we just verify termination and full assignment.
        let a = laplacian_3d_7pt::<f64>(6, 6, 6);
        let g = StrengthGraph::build(&a, 0.25);
        let types = split(&g, 3);
        assert_eq!(types.len(), 216);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = laplacian_2d_5pt::<f64>(10, 10);
        let g = StrengthGraph::build(&a, 0.25);
        assert_eq!(split(&g, 5), split(&g, 5));
        // Different seeds usually differ (not guaranteed, but this seed
        // pair does).
        assert_ne!(split(&g, 5), split(&g, 6));
    }
}

//! Classical Ruge–Stüben first-pass coarsening.
//!
//! Greedy maximal-independent-set-like selection driven by the measure
//! `λ_i = |S_i^T| + (number of fine strong neighbors)`: repeatedly pick
//! the unassigned point with the largest measure as coarse, mark the
//! points it strongly influences as fine, and boost the measure of those
//! fine points' other influencers (they become more attractive coarse
//! candidates).

use super::PointType;
use crate::strength::StrengthGraph;
use std::collections::BinaryHeap;

/// Runs the first-pass splitting. Points with zero measure and no strong
/// connections are left fine (the caller's fix-up promotes genuinely
/// isolated ones to coarse).
pub fn split(graph: &StrengthGraph) -> Vec<PointType> {
    let n = graph.len();
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        Unassigned,
        Coarse,
        Fine,
    }
    let mut state = vec![State::Unassigned; n];
    let mut measure: Vec<usize> = (0..n).map(|i| graph.influence_count(i)).collect();

    // Lazy-update max-heap of (measure, point).
    let mut heap: BinaryHeap<(usize, usize)> = (0..n).map(|i| (measure[i], i)).collect();

    while let Some((m, i)) = heap.pop() {
        if state[i] != State::Unassigned || m != measure[i] {
            continue; // stale entry
        }
        if measure[i] == 0 {
            // Nothing influences anything: remaining points stay fine
            // (or isolated; the fix-up handles them).
            break;
        }
        state[i] = State::Coarse;
        // Points strongly influenced by the new C point become F.
        for &j in graph.influences(i) {
            if state[j] == State::Unassigned {
                state[j] = State::Fine;
                // Influencers of the new F point become more attractive.
                for &k in graph.influencers(j) {
                    if state[k] == State::Unassigned {
                        measure[k] += 1;
                        heap.push((measure[k], k));
                    }
                }
            }
        }
    }

    state
        .into_iter()
        .map(|s| match s {
            State::Coarse => PointType::Coarse,
            _ => PointType::Fine,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::StrengthGraph;
    use smat_matrix::gen::{laplacian_2d_5pt, tridiagonal};

    #[test]
    fn tridiagonal_alternates_roughly() {
        let a = tridiagonal::<f64>(20);
        let g = StrengthGraph::build(&a, 0.25);
        let types = split(&g);
        let coarse = types.iter().filter(|&&t| t == PointType::Coarse).count();
        // 1-D Laplacian coarsens to roughly every other point.
        assert!(
            (5..=12).contains(&coarse),
            "unexpected coarse count {coarse}"
        );
        // No two adjacent... not guaranteed strictly, but C points should
        // not dominate.
        assert!(coarse < 15);
    }

    #[test]
    fn laplacian_coarsening_ratio_is_sane() {
        let a = laplacian_2d_5pt::<f64>(16, 16);
        let g = StrengthGraph::build(&a, 0.25);
        let types = split(&g);
        let coarse = types.iter().filter(|&&t| t == PointType::Coarse).count();
        let ratio = coarse as f64 / types.len() as f64;
        // Classical RS on a 5-point stencil gives ~25-50% coarse points.
        assert!((0.15..=0.6).contains(&ratio), "coarsening ratio {ratio:.2}");
    }

    #[test]
    fn deterministic() {
        let a = laplacian_2d_5pt::<f64>(8, 8);
        let g = StrengthGraph::build(&a, 0.25);
        assert_eq!(split(&g), split(&g));
    }
}

//! Direct interpolation.
//!
//! Coarse points inject (`P(i, c(i)) = 1`); each fine point interpolates
//! from its strong coarse neighbors with the classical direct formula,
//! splitting positive and negative connections:
//!
//! ```text
//! w_ic = -alpha * a_ic / a_ii   (a_ic < 0),   alpha = sum_neg(N_i) / sum_neg(C_i)
//! w_ic = -beta  * a_ic / a_ii   (a_ic > 0),   beta  = sum_pos(N_i) / sum_pos(C_i)
//! ```
//!
//! where `N_i` are all off-diagonal neighbors and `C_i` the strong
//! coarse ones. This preserves row sums — constants are interpolated
//! exactly, the key AMG invariant.

use crate::coarsen::Splitting;
use crate::strength::StrengthGraph;
use smat_matrix::{Csr, Scalar};

/// Builds the prolongation matrix `P` (`n_fine x n_coarse`) by direct
/// interpolation.
///
/// # Panics
///
/// Panics if `a` is not square, or if a fine point has a zero diagonal
/// (the operator is not AMG-suitable).
pub fn direct_interpolation<T: Scalar>(
    a: &Csr<T>,
    graph: &StrengthGraph,
    splitting: &Splitting,
) -> Csr<T> {
    assert_eq!(a.rows(), a.cols(), "interpolation needs a square matrix");
    let n = a.rows();
    let mut triplets: Vec<(usize, usize, T)> = Vec::new();

    for i in 0..n {
        if splitting.is_coarse(i) {
            triplets.push((i, splitting.coarse_index[i], T::ONE));
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut diag = T::ZERO;
        let mut sum_neg_all = 0.0f64;
        let mut sum_pos_all = 0.0f64;
        for (&j, &v) in cols.iter().zip(vals) {
            if j == i {
                diag = v;
            } else if v.to_f64() < 0.0 {
                sum_neg_all += v.to_f64();
            } else {
                sum_pos_all += v.to_f64();
            }
        }
        assert!(
            diag != T::ZERO,
            "fine point {i} has a zero diagonal; cannot interpolate"
        );
        // Strong coarse neighbors and their sums.
        let strong_coarse: Vec<usize> = graph
            .influencers(i)
            .iter()
            .copied()
            .filter(|&j| splitting.is_coarse(j))
            .collect();
        if strong_coarse.is_empty() {
            // The coarsening fix-up guarantees this cannot happen for
            // points with strong connections; points with none at all
            // were promoted to coarse. Defensive: interpolate zero.
            continue;
        }
        let mut sum_neg_c = 0.0f64;
        let mut sum_pos_c = 0.0f64;
        for &j in &strong_coarse {
            let v = a.get(i, j).unwrap_or(T::ZERO).to_f64();
            if v < 0.0 {
                sum_neg_c += v;
            } else {
                sum_pos_c += v;
            }
        }
        let alpha = if sum_neg_c != 0.0 {
            sum_neg_all / sum_neg_c
        } else {
            0.0
        };
        let beta = if sum_pos_c != 0.0 {
            sum_pos_all / sum_pos_c
        } else {
            0.0
        };
        let diag_f = diag.to_f64();
        for &j in &strong_coarse {
            let v = a.get(i, j).unwrap_or(T::ZERO).to_f64();
            let w = if v < 0.0 {
                -alpha * v / diag_f
            } else {
                -beta * v / diag_f
            };
            if w != 0.0 {
                triplets.push((i, splitting.coarse_index[j], T::from_f64(w)));
            }
        }
    }
    Csr::from_triplets(n, splitting.n_coarse, &triplets)
        .expect("interpolation produces in-bounds triplets")
}

/// Truncates each interpolation row to its `max_elements` largest
/// weights (by magnitude), rescaling the survivors so the row sum is
/// preserved — Hypre's `P_max_elmts` interpolation truncation, which
/// keeps Galerkin coarse operators from filling in.
///
/// `max_elements == 0` disables truncation. Row-sum preservation keeps
/// constants interpolated exactly, the invariant AMG convergence rests
/// on.
///
/// # Panics
///
/// Never panics; rows with at most `max_elements` entries are returned
/// unchanged.
pub fn truncate_interpolation<T: Scalar>(p: &Csr<T>, max_elements: usize) -> Csr<T> {
    if max_elements == 0 {
        return p.clone();
    }
    let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(p.nnz());
    for i in 0..p.rows() {
        let (cols, vals) = p.row(i);
        if cols.len() <= max_elements {
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((i, c, v));
            }
            continue;
        }
        let row_sum: f64 = vals.iter().map(|v| v.to_f64()).sum();
        let mut entries: Vec<(usize, T)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        entries.sort_by(|a, b| b.1.abs().to_f64().total_cmp(&a.1.abs().to_f64()));
        entries.truncate(max_elements);
        let kept_sum: f64 = entries.iter().map(|(_, v)| v.to_f64()).sum();
        let scale = if kept_sum.abs() > 1e-300 {
            row_sum / kept_sum
        } else {
            1.0
        };
        for (c, v) in entries {
            triplets.push((i, c, T::from_f64(v.to_f64() * scale)));
        }
    }
    Csr::from_triplets(p.rows(), p.cols(), &triplets).expect("truncation keeps indices in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::{coarsen, Coarsening};
    use crate::strength::{StrengthGraph, DEFAULT_THETA};
    use smat_matrix::gen::{laplacian_2d_5pt, tridiagonal};

    fn build(a: &Csr<f64>) -> (StrengthGraph, Splitting, Csr<f64>) {
        let g = StrengthGraph::build(a, DEFAULT_THETA);
        let s = coarsen(&g, Coarsening::RugeStuben, 0);
        let p = direct_interpolation(a, &g, &s);
        (g, s, p)
    }

    #[test]
    fn coarse_rows_are_injection() {
        let a = laplacian_2d_5pt::<f64>(8, 8);
        let (_, s, p) = build(&a);
        for i in 0..a.rows() {
            if s.is_coarse(i) {
                let (cols, vals) = p.row(i);
                assert_eq!(cols, &[s.coarse_index[i]]);
                assert_eq!(vals, &[1.0]);
            }
        }
    }

    #[test]
    fn interpolation_reproduces_constants_in_interior() {
        // For zero-row-sum rows (interior stencil points), the direct
        // formula makes P's row sum exactly 1: constants interpolate
        // exactly.
        let a = laplacian_2d_5pt::<f64>(10, 10);
        let (_, s, p) = build(&a);
        for i in 0..a.rows() {
            let (_, avals) = a.row(i);
            let row_sum: f64 = avals.iter().sum();
            if row_sum.abs() < 1e-12 && !s.is_coarse(i) {
                let (_, pvals) = p.row(i);
                let w: f64 = pvals.iter().sum();
                assert!((w - 1.0).abs() < 1e-10, "row {i} weight sum {w}");
            }
        }
    }

    #[test]
    fn weights_are_nonnegative_for_m_matrices() {
        let a = tridiagonal::<f64>(30);
        let (_, _, p) = build(&a);
        for &v in p.values() {
            assert!(v >= 0.0, "negative interpolation weight {v}");
            assert!(v <= 1.0 + 1e-12, "weight above 1: {v}");
        }
    }

    #[test]
    fn truncation_bounds_row_width_and_preserves_sums() {
        let a = laplacian_2d_5pt::<f64>(12, 12);
        let (_, _, p) = build(&a);
        let t = truncate_interpolation(&p, 2);
        for i in 0..t.rows() {
            let (cols, vals) = t.row(i);
            assert!(cols.len() <= 2, "row {i} kept {} entries", cols.len());
            let (_, orig_vals) = p.row(i);
            let orig_sum: f64 = orig_vals.iter().sum();
            let new_sum: f64 = vals.iter().sum();
            assert!(
                (orig_sum - new_sum).abs() < 1e-10,
                "row {i} sum changed: {orig_sum} -> {new_sum}"
            );
        }
        // max_elements == 0 is identity.
        assert_eq!(truncate_interpolation(&p, 0), p);
        // Wide enough bound is also identity.
        assert_eq!(truncate_interpolation(&p, 100), p);
    }

    #[test]
    fn dimensions_match_splitting() {
        let a = laplacian_2d_5pt::<f64>(9, 7);
        let (_, s, p) = build(&a);
        assert_eq!(p.rows(), a.rows());
        assert_eq!(p.cols(), s.n_coarse);
        p.validate().unwrap();
    }
}

//! Classical strength-of-connection graph.
//!
//! Point `j` strongly influences point `i` when
//! `-a_ij >= theta * max_{k != i} (-a_ik)` — the standard Ruge–Stüben
//! measure for M-matrix-like operators (Hypre's default with
//! `theta = 0.25`).

use smat_matrix::{Csr, Scalar};

/// Default strength threshold (Hypre's classical default).
pub const DEFAULT_THETA: f64 = 0.25;

/// The strength graph: for each point, the points that strongly
/// influence it, plus the transpose (the points it strongly influences).
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthGraph {
    n: usize,
    /// CSR-style adjacency: `influencers[ptr[i]..ptr[i+1]]` strongly
    /// influence `i` (i.e. the strong part of row `i`).
    ptr: Vec<usize>,
    influencers: Vec<usize>,
    /// Transpose adjacency: points that `i` strongly influences.
    t_ptr: Vec<usize>,
    t_influences: Vec<usize>,
}

impl StrengthGraph {
    /// Builds the strength graph of a square matrix with threshold
    /// `theta`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `theta` is outside `[0, 1]`.
    pub fn build<T: Scalar>(a: &Csr<T>, theta: f64) -> Self {
        assert_eq!(a.rows(), a.cols(), "strength graph needs a square matrix");
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        let n = a.rows();
        let mut ptr = Vec::with_capacity(n + 1);
        let mut influencers = Vec::new();
        ptr.push(0);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            // Strongest off-diagonal connection (negative direction).
            let mut max_off = 0.0f64;
            for (&j, &v) in cols.iter().zip(vals) {
                if j != i {
                    max_off = max_off.max((-v.to_f64()).max(0.0));
                }
            }
            if max_off > 0.0 {
                let cut = theta * max_off;
                for (&j, &v) in cols.iter().zip(vals) {
                    if j != i && -v.to_f64() >= cut && -v.to_f64() > 0.0 {
                        influencers.push(j);
                    }
                }
            }
            ptr.push(influencers.len());
        }
        // Transpose.
        let mut t_ptr = vec![0usize; n + 1];
        for &j in &influencers {
            t_ptr[j + 1] += 1;
        }
        for i in 0..n {
            t_ptr[i + 1] += t_ptr[i];
        }
        let mut t_influences = vec![0usize; influencers.len()];
        let mut next = t_ptr.clone();
        for i in 0..n {
            for &j in &influencers[ptr[i]..ptr[i + 1]] {
                t_influences[next[j]] = i;
                next[j] += 1;
            }
        }
        Self {
            n,
            ptr,
            influencers,
            t_ptr,
            t_influences,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Points that strongly influence `i` (the set `S_i`).
    pub fn influencers(&self, i: usize) -> &[usize] {
        &self.influencers[self.ptr[i]..self.ptr[i + 1]]
    }

    /// Points that `i` strongly influences (the set `S_i^T`).
    pub fn influences(&self, i: usize) -> &[usize] {
        &self.t_influences[self.t_ptr[i]..self.t_ptr[i + 1]]
    }

    /// `|S_i^T|` — the initial Ruge–Stüben/CLJP measure of `i`.
    pub fn influence_count(&self, i: usize) -> usize {
        self.t_ptr[i + 1] - self.t_ptr[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{laplacian_2d_5pt, tridiagonal};

    #[test]
    fn laplacian_neighbors_are_strong() {
        let a = laplacian_2d_5pt::<f64>(4, 4);
        let s = StrengthGraph::build(&a, DEFAULT_THETA);
        // Interior point 5 has 4 equal off-diagonals: all strong.
        assert_eq!(s.influencers(5).len(), 4);
        // Symmetric matrix: influence sets match influencer sets.
        for i in 0..s.len() {
            let mut inf: Vec<usize> = s.influences(i).to_vec();
            inf.sort_unstable();
            let mut infl: Vec<usize> = s.influencers(i).to_vec();
            infl.sort_unstable();
            assert_eq!(inf, infl);
            assert_eq!(s.influence_count(i), s.influences(i).len());
        }
    }

    #[test]
    fn theta_one_keeps_only_strongest() {
        let a = smat_matrix::Csr::<f64>::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -0.5), (1, 1, 2.0)],
        )
        .unwrap();
        let s = StrengthGraph::build(&a, 1.0);
        assert_eq!(s.influencers(0), &[1]);
        assert_eq!(s.influencers(1), &[0]);
    }

    #[test]
    fn positive_offdiagonals_are_never_strong() {
        let a = smat_matrix::Csr::<f64>::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, -1.0), (1, 1, 2.0)],
        )
        .unwrap();
        let s = StrengthGraph::build(&a, 0.25);
        assert!(s.influencers(0).is_empty());
        assert_eq!(s.influencers(1), &[0]);
    }

    #[test]
    fn tridiagonal_counts() {
        let a = tridiagonal::<f64>(10);
        let s = StrengthGraph::build(&a, 0.25);
        assert_eq!(s.influencers(0).len(), 1);
        assert_eq!(s.influencers(5).len(), 2);
        assert_eq!(s.influence_count(0), 1);
        assert_eq!(s.influence_count(5), 2);
    }

    #[test]
    fn diagonal_only_matrix_has_empty_graph() {
        let a = smat_matrix::Csr::<f64>::identity(5);
        let s = StrengthGraph::build(&a, 0.25);
        for i in 0..5 {
            assert!(s.influencers(i).is_empty());
            assert_eq!(s.influence_count(i), 0);
        }
    }
}

//! AMG setup phase: builds the grid hierarchy `(A_0, P_0), (A_1, P_1),
//! ...` via strength graphs, coarse/fine splitting, direct interpolation
//! and Galerkin triple products — the structure sketched in the paper's
//! Figure 11.

use crate::coarsen::{coarsen, Coarsening};
use crate::interp::{direct_interpolation, truncate_interpolation};
use crate::spgemm::rap;
use crate::strength::{StrengthGraph, DEFAULT_THETA};
use serde::{Deserialize, Serialize};
use smat_matrix::{Csr, Scalar};

/// Parameters of the AMG setup phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmgConfig {
    /// Strength-of-connection threshold.
    pub theta: f64,
    /// Coarsening algorithm (the paper benchmarks both).
    pub coarsening: Coarsening,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Stop coarsening when the operator is at most this large.
    pub coarse_size: usize,
    /// Seed for CLJP's random tie-breaking weights.
    pub seed: u64,
    /// Drop tolerance applied to coarse operators (relative to their max
    /// absolute entry; 0 keeps everything).
    pub drop_tolerance: f64,
    /// Interpolation truncation: each P row keeps at most this many
    /// weights (Hypre's `P_max_elmts`; 0 disables). Bounds operator
    /// complexity on 3-D problems.
    pub interp_max_elements: usize,
}

impl Default for AmgConfig {
    fn default() -> Self {
        Self {
            theta: DEFAULT_THETA,
            coarsening: Coarsening::RugeStuben,
            max_levels: 25,
            coarse_size: 64,
            seed: 0xC17F,
            drop_tolerance: 0.0,
            interp_max_elements: 4,
        }
    }
}

/// One level of the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Level<T> {
    /// The grid operator `A_l`.
    pub a: Csr<T>,
    /// Prolongation to this level from the next coarser one
    /// (`None` on the coarsest level).
    pub p: Option<Csr<T>>,
    /// Restriction (`P^T`) from this level to the next coarser one.
    pub r: Option<Csr<T>>,
}

/// The grid hierarchy produced by [`setup`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy<T> {
    /// Levels, finest first.
    pub levels: Vec<Level<T>>,
}

impl<T: Scalar> Hierarchy<T> {
    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Dimensions of each level's operator, finest first.
    pub fn level_dims(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.a.rows()).collect()
    }

    /// Operator complexity: total stored nonzeros across levels divided
    /// by the finest operator's nonzeros (a standard AMG health metric;
    /// values below ~3 are considered good).
    pub fn operator_complexity(&self) -> f64 {
        let fine = self.levels[0].a.nnz().max(1);
        let total: usize = self.levels.iter().map(|l| l.a.nnz()).sum();
        total as f64 / fine as f64
    }
}

/// Runs the setup phase on a square operator.
///
/// # Panics
///
/// Panics if `a` is not square or is empty.
pub fn setup<T: Scalar>(a: Csr<T>, config: &AmgConfig) -> Hierarchy<T> {
    assert_eq!(a.rows(), a.cols(), "amg needs a square operator");
    assert!(a.rows() > 0, "amg needs a non-empty operator");
    let mut levels: Vec<Level<T>> = Vec::new();
    let mut current = a;
    for lvl in 0..config.max_levels {
        let n = current.rows();
        if n <= config.coarse_size || lvl + 1 == config.max_levels {
            levels.push(Level {
                a: current,
                p: None,
                r: None,
            });
            return Hierarchy { levels };
        }
        let graph = StrengthGraph::build(&current, config.theta);
        let splitting = coarsen(
            &graph,
            config.coarsening,
            config.seed.wrapping_add(lvl as u64),
        );
        // Coarsening stagnated: everything coarse (e.g. diagonal matrix)
        // or nothing coarse. Finish with this level as the coarsest.
        if splitting.n_coarse == 0 || splitting.n_coarse >= n {
            levels.push(Level {
                a: current,
                p: None,
                r: None,
            });
            return Hierarchy { levels };
        }
        let p = truncate_interpolation(
            &direct_interpolation(&current, &graph, &splitting),
            config.interp_max_elements,
        );
        let r = p.transpose();
        let mut coarse = rap(&r, &current, &p);
        if config.drop_tolerance > 0.0 {
            let max_abs = coarse
                .values()
                .iter()
                .map(|v| v.abs().to_f64())
                .fold(0.0f64, f64::max);
            coarse = coarse.prune(T::from_f64(config.drop_tolerance * max_abs));
        }
        levels.push(Level {
            a: current,
            p: Some(p),
            r: Some(r),
        });
        current = coarse;
    }
    unreachable!("loop always returns at the level cap");
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{laplacian_2d_5pt, laplacian_2d_9pt, laplacian_3d_7pt};

    #[test]
    fn builds_multiple_levels_on_2d_poisson() {
        let a = laplacian_2d_5pt::<f64>(32, 32);
        let h = setup(a, &AmgConfig::default());
        assert!(h.num_levels() >= 3, "only {} levels", h.num_levels());
        let dims = h.level_dims();
        assert!(
            dims.windows(2).all(|w| w[1] < w[0]),
            "dims must shrink: {dims:?}"
        );
        assert!(*dims.last().unwrap() <= 64);
        assert!(
            h.operator_complexity() < 5.0,
            "complexity {}",
            h.operator_complexity()
        );
    }

    #[test]
    fn transfer_dimensions_are_consistent() {
        let a = laplacian_2d_9pt::<f64>(20, 20);
        let h = setup(a, &AmgConfig::default());
        for w in h.levels.windows(2) {
            let fine = &w[0];
            let coarse = &w[1];
            let p = fine.p.as_ref().unwrap();
            let r = fine.r.as_ref().unwrap();
            assert_eq!(p.rows(), fine.a.rows());
            assert_eq!(p.cols(), coarse.a.rows());
            assert_eq!(r.rows(), coarse.a.rows());
            assert_eq!(r.cols(), fine.a.rows());
        }
        let last = h.levels.last().unwrap();
        assert!(last.p.is_none());
    }

    #[test]
    fn coarse_operators_stay_symmetric() {
        let a = laplacian_2d_5pt::<f64>(16, 16);
        let h = setup(a, &AmgConfig::default());
        for l in &h.levels {
            let at = l.a.transpose();
            let diff: f64 = at
                .iter()
                .map(|(r, c, v)| (v - l.a.get(r, c).unwrap_or(0.0)).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "asymmetry {diff}");
        }
    }

    #[test]
    fn cljp_hierarchy_also_builds() {
        let a = laplacian_3d_7pt::<f64>(8, 8, 8);
        let cfg = AmgConfig {
            coarsening: Coarsening::Cljp,
            ..AmgConfig::default()
        };
        let h = setup(a, &cfg);
        assert!(h.num_levels() >= 2);
        assert!(*h.level_dims().last().unwrap() <= 64);
    }

    #[test]
    fn tiny_matrix_is_single_level() {
        let a = laplacian_2d_5pt::<f64>(4, 4);
        let h = setup(a, &AmgConfig::default());
        assert_eq!(h.num_levels(), 1);
        assert!(h.levels[0].p.is_none());
        assert_eq!(h.operator_complexity(), 1.0);
    }

    #[test]
    fn level_cap_is_respected() {
        let a = laplacian_2d_5pt::<f64>(40, 40);
        let cfg = AmgConfig {
            max_levels: 2,
            coarse_size: 4,
            ..AmgConfig::default()
        };
        let h = setup(a, &cfg);
        assert_eq!(h.num_levels(), 2);
    }
}

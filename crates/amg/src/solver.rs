//! Complete solvers: stand-alone AMG iteration, plain conjugate
//! gradients, and AMG-preconditioned CG (Hypre's standard usage: "AMG is
//! used as a preconditioner such as conjugate gradients").

use crate::cycle::{CompiledHierarchy, CycleConfig, Workspace};
use crate::hierarchy::{setup, AmgConfig, Hierarchy};
use crate::relax::residual;
use smat::Smat;
use smat_matrix::utils::{axpy, dot, norm2, xpay};
use smat_matrix::{Csr, Scalar};

/// Convergence report of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Iterations (V-cycles or CG steps) performed.
    pub iterations: usize,
    /// Residual norm after each iteration, starting with the initial
    /// residual.
    pub residuals: Vec<f64>,
    /// Whether the relative tolerance was reached.
    pub converged: bool,
}

impl SolveStats {
    /// Geometric-mean convergence factor per iteration.
    pub fn convergence_factor(&self) -> f64 {
        if self.residuals.len() < 2 || self.residuals[0] <= 0.0 {
            return 0.0;
        }
        let first = self.residuals[0];
        let last = *self.residuals.last().expect("non-empty");
        (last / first).powf(1.0 / (self.residuals.len() - 1) as f64)
    }
}

/// An algebraic multigrid solver: setup once, solve repeatedly.
#[derive(Debug)]
pub struct AmgSolver<T: Scalar> {
    hierarchy: Hierarchy<T>,
    compiled: CompiledHierarchy<T>,
    cycle: CycleConfig,
}

impl<T: Scalar> AmgSolver<T> {
    /// Builds the solver with plain CSR operators (the "Hypre AMG"
    /// baseline of Table 4).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or empty.
    pub fn new(a: Csr<T>, config: &AmgConfig, cycle: CycleConfig) -> Self {
        let hierarchy = setup(a, config);
        let compiled = CompiledHierarchy::plain(&hierarchy);
        Self {
            hierarchy,
            compiled,
            cycle,
        }
    }

    /// Builds the solver with every grid and transfer operator tuned
    /// through SMAT (the "SMAT AMG" configuration of Table 4).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or empty.
    pub fn with_smat(a: Csr<T>, config: &AmgConfig, cycle: CycleConfig, engine: &Smat<T>) -> Self {
        let hierarchy = setup(a, config);
        let compiled = CompiledHierarchy::with_smat(&hierarchy, engine);
        Self {
            hierarchy,
            compiled,
            cycle,
        }
    }

    /// The grid hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy<T> {
        &self.hierarchy
    }

    /// The compiled (kernel-bound) hierarchy.
    pub fn compiled(&self) -> &CompiledHierarchy<T> {
        &self.compiled
    }

    /// Tuning-cache traffic of the setup phase (`None` when built
    /// without SMAT): how many per-operator tuning decisions were
    /// replayed from the engine's structural-fingerprint cache versus
    /// computed fresh.
    pub fn setup_tuning_stats(&self) -> Option<&smat::CacheStats> {
        self.compiled.tuning_stats()
    }

    /// How many operators the tuner degraded to the reference CSR path
    /// during setup (see
    /// [`CompiledHierarchy::degraded_ops_per_level`]). Always 0 for a
    /// plain (untuned) solver.
    pub fn setup_degraded_ops(&self) -> usize {
        self.compiled.degraded_ops()
    }

    /// Solves `A x = b` by repeated V-cycles until
    /// `||r|| <= rel_tol * ||b||` or `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics on vector length mismatch.
    pub fn solve(&self, b: &[T], x: &mut [T], rel_tol: f64, max_cycles: usize) -> SolveStats {
        let bnorm = norm2(b).to_f64().max(f64::MIN_POSITIVE);
        let mut ws = Workspace::new();
        let mut residuals = vec![self.compiled.residual_norm(b, x)];
        let mut converged = residuals[0] <= rel_tol * bnorm;
        let mut iterations = 0;
        while !converged && iterations < max_cycles {
            self.compiled.v_cycle(&self.cycle, b, x, &mut ws);
            iterations += 1;
            let r = self.compiled.residual_norm(b, x);
            residuals.push(r);
            converged = r <= rel_tol * bnorm;
        }
        SolveStats {
            iterations,
            residuals,
            converged,
        }
    }

    /// AMG-preconditioned conjugate gradients: one V-cycle per
    /// application of the preconditioner.
    ///
    /// # Panics
    ///
    /// Panics on vector length mismatch.
    pub fn pcg(&self, b: &[T], x: &mut [T], rel_tol: f64, max_iters: usize) -> SolveStats {
        let a = &self.compiled.levels[0].a_csr;
        let n = a.rows();
        assert_eq!(b.len(), n, "b length");
        assert_eq!(x.len(), n, "x length");
        let bnorm = norm2(b).to_f64().max(f64::MIN_POSITIVE);
        let mut ws = Workspace::new();

        let mut r = vec![T::ZERO; n];
        residual(a, x, b, &mut r);
        let mut residuals = vec![norm2(&r).to_f64()];
        if residuals[0] <= rel_tol * bnorm {
            return SolveStats {
                iterations: 0,
                residuals,
                converged: true,
            };
        }
        // z = M^{-1} r via one V-cycle from zero.
        let mut z = vec![T::ZERO; n];
        self.compiled.v_cycle(&self.cycle, &r, &mut z, &mut ws);
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![T::ZERO; n];
        let mut converged = false;
        let mut iterations = 0;
        for _ in 0..max_iters {
            a.spmv(&p, &mut ap).expect("validated dimensions");
            let pap = dot(&p, &ap);
            if pap.to_f64().abs() < 1e-300 {
                break;
            }
            let alpha = rz / pap;
            axpy(alpha, &p, x);
            axpy(-alpha, &ap, &mut r);
            iterations += 1;
            let rn = norm2(&r).to_f64();
            residuals.push(rn);
            if rn <= rel_tol * bnorm {
                converged = true;
                break;
            }
            z.fill(T::ZERO);
            self.compiled.v_cycle(&self.cycle, &r, &mut z, &mut ws);
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            xpay(&z, beta, &mut p);
        }
        SolveStats {
            iterations,
            residuals,
            converged,
        }
    }
}

/// Plain (unpreconditioned) conjugate gradients, for baselines.
///
/// # Panics
///
/// Panics on vector length mismatch or a non-square matrix.
pub fn cg<T: Scalar>(
    a: &Csr<T>,
    b: &[T],
    x: &mut [T],
    rel_tol: f64,
    max_iters: usize,
) -> SolveStats {
    assert_eq!(a.rows(), a.cols(), "cg needs a square matrix");
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let bnorm = norm2(b).to_f64().max(f64::MIN_POSITIVE);
    let mut r = vec![T::ZERO; n];
    residual(a, x, b, &mut r);
    let mut residuals = vec![norm2(&r).to_f64()];
    if residuals[0] <= rel_tol * bnorm {
        return SolveStats {
            iterations: 0,
            residuals,
            converged: true,
        };
    }
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    let mut ap = vec![T::ZERO; n];
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..max_iters {
        a.spmv(&p, &mut ap).expect("validated dimensions");
        let pap = dot(&p, &ap);
        if pap.to_f64().abs() < 1e-300 {
            break;
        }
        let alpha = rr / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        iterations += 1;
        let rn = norm2(&r).to_f64();
        residuals.push(rn);
        if rn <= rel_tol * bnorm {
            converged = true;
            break;
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        xpay(&r, beta, &mut p);
    }
    SolveStats {
        iterations,
        residuals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{laplacian_2d_5pt, laplacian_2d_9pt, laplacian_3d_7pt};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37) % 17) as f64 / 17.0 + 0.1)
            .collect()
    }

    #[test]
    fn amg_converges_on_2d_poisson() {
        let a = laplacian_2d_5pt::<f64>(30, 30);
        let n = a.rows();
        let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
        let b = rhs(n);
        let mut x = vec![0.0; n];
        let stats = solver.solve(&b, &mut x, 1e-8, 60);
        assert!(stats.converged, "residuals: {:?}", stats.residuals);
        assert!(
            stats.convergence_factor() < 0.6,
            "slow convergence: {}",
            stats.convergence_factor()
        );
    }

    #[test]
    fn amg_converges_on_9pt_and_3d() {
        for a in [
            laplacian_2d_9pt::<f64>(24, 24),
            laplacian_3d_7pt::<f64>(9, 9, 9),
        ] {
            let n = a.rows();
            let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
            let b = rhs(n);
            let mut x = vec![0.0; n];
            let stats = solver.solve(&b, &mut x, 1e-8, 80);
            assert!(stats.converged, "residuals: {:?}", stats.residuals);
        }
    }

    #[test]
    fn amg_beats_plain_cg_in_iterations() {
        let a = laplacian_2d_5pt::<f64>(32, 32);
        let n = a.rows();
        let b = rhs(n);
        let solver = AmgSolver::new(a.clone(), &AmgConfig::default(), CycleConfig::default());
        let mut x1 = vec![0.0; n];
        let amg_stats = solver.solve(&b, &mut x1, 1e-8, 100);
        let mut x2 = vec![0.0; n];
        let cg_stats = cg(&a, &b, &mut x2, 1e-8, 2000);
        assert!(amg_stats.converged && cg_stats.converged);
        assert!(
            amg_stats.iterations < cg_stats.iterations,
            "amg {} vs cg {}",
            amg_stats.iterations,
            cg_stats.iterations
        );
    }

    #[test]
    fn pcg_accelerates_amg() {
        let a = laplacian_2d_9pt::<f64>(28, 28);
        let n = a.rows();
        let b = rhs(n);
        let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
        let mut x1 = vec![0.0; n];
        let amg_stats = solver.solve(&b, &mut x1, 1e-10, 200);
        let mut x2 = vec![0.0; n];
        let pcg_stats = solver.pcg(&b, &mut x2, 1e-10, 200);
        assert!(pcg_stats.converged);
        assert!(pcg_stats.iterations <= amg_stats.iterations);
    }

    #[test]
    fn solution_is_actually_correct() {
        let a = laplacian_2d_5pt::<f64>(12, 12);
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) * 0.25).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b).unwrap();
        let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
        let mut x = vec![0.0; n];
        let stats = solver.solve(&b, &mut x, 1e-12, 100);
        assert!(stats.converged);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "max error {err}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_2d_5pt::<f64>(8, 8);
        let n = a.rows();
        let solver = AmgSolver::new(a, &AmgConfig::default(), CycleConfig::default());
        let b = vec![0.0; n];
        let mut x = vec![0.0; n];
        let stats = solver.solve(&b, &mut x, 1e-10, 10);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }
}

//! Smoothers: weighted Jacobi and Gauss–Seidel, plus residual
//! computation.
//!
//! The paper notes AMG's "relaxations like Jacobi and Gauss-Seidel
//! methods with SpMV kernel". Weighted Jacobi is expressed directly over
//! SpMV (`x += omega D^{-1} (b - A x)`), which is what lets SMAT's tuned
//! kernels accelerate the solve phase; Gauss–Seidel sweeps the CSR rows
//! in place.

use serde::{Deserialize, Serialize};
use smat_matrix::{Csr, Scalar};

/// Which smoother a solver uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Relaxation {
    /// Weighted Jacobi with the given damping factor (2/3 is the
    /// standard choice for Poisson-like problems).
    Jacobi {
        /// Damping factor `omega`.
        omega: f64,
    },
    /// Forward Gauss–Seidel.
    GaussSeidel,
    /// Symmetric Gauss–Seidel: a forward sweep followed by a backward
    /// sweep (the symmetric smoother required for AMG-preconditioned CG
    /// to stay a symmetric preconditioner).
    SymmetricGaussSeidel,
}

impl Default for Relaxation {
    fn default() -> Self {
        Relaxation::Jacobi { omega: 2.0 / 3.0 }
    }
}

/// Computes the residual `r = b - A x`.
///
/// # Panics
///
/// Panics on vector length mismatches.
pub fn residual<T: Scalar>(a: &Csr<T>, x: &[T], b: &[T], r: &mut [T]) {
    assert_eq!(b.len(), a.rows(), "b length");
    assert_eq!(r.len(), a.rows(), "r length");
    a.spmv(x, r).expect("validated dimensions");
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
}

/// One weighted-Jacobi sweep using a supplied `A*x` product (so callers
/// can route the SpMV through a tuned kernel): `x += omega D^{-1} (b - ax)`.
///
/// # Panics
///
/// Panics on vector length mismatches or a zero diagonal entry.
pub fn jacobi_update<T: Scalar>(diag: &[T], omega: f64, ax: &[T], b: &[T], x: &mut [T]) {
    assert_eq!(diag.len(), x.len(), "diag length");
    assert_eq!(ax.len(), x.len(), "ax length");
    assert_eq!(b.len(), x.len(), "b length");
    let w = T::from_f64(omega);
    for i in 0..x.len() {
        assert!(diag[i] != T::ZERO, "zero diagonal at row {i}");
        x[i] += w * (b[i] - ax[i]) / diag[i];
    }
}

/// One weighted-Jacobi sweep computing the product internally with the
/// reference CSR SpMV.
///
/// # Panics
///
/// Panics on vector length mismatches or a zero diagonal entry.
pub fn jacobi<T: Scalar>(
    a: &Csr<T>,
    diag: &[T],
    omega: f64,
    b: &[T],
    x: &mut [T],
    scratch: &mut [T],
) {
    a.spmv(x, scratch).expect("validated dimensions");
    jacobi_update(diag, omega, scratch, b, x);
}

#[inline]
fn gs_row<T: Scalar>(a: &Csr<T>, b: &[T], x: &mut [T], i: usize) {
    let (cols, vals) = a.row(i);
    let mut sigma = T::ZERO;
    let mut diag = T::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        if j == i {
            diag = v;
        } else {
            sigma += v * x[j];
        }
    }
    assert!(diag != T::ZERO, "zero diagonal at row {i}");
    x[i] = (b[i] - sigma) / diag;
}

/// One forward Gauss–Seidel sweep.
///
/// # Panics
///
/// Panics on vector length mismatches or a zero diagonal entry.
pub fn gauss_seidel<T: Scalar>(a: &Csr<T>, b: &[T], x: &mut [T]) {
    assert_eq!(x.len(), a.rows(), "x length");
    assert_eq!(b.len(), a.rows(), "b length");
    for i in 0..a.rows() {
        gs_row(a, b, x, i);
    }
}

/// One backward Gauss–Seidel sweep (rows in reverse order).
///
/// # Panics
///
/// Panics on vector length mismatches or a zero diagonal entry.
pub fn gauss_seidel_backward<T: Scalar>(a: &Csr<T>, b: &[T], x: &mut [T]) {
    assert_eq!(x.len(), a.rows(), "x length");
    assert_eq!(b.len(), a.rows(), "b length");
    for i in (0..a.rows()).rev() {
        gs_row(a, b, x, i);
    }
}

/// One symmetric Gauss–Seidel sweep: forward then backward.
///
/// # Panics
///
/// Panics on vector length mismatches or a zero diagonal entry.
pub fn symmetric_gauss_seidel<T: Scalar>(a: &Csr<T>, b: &[T], x: &mut [T]) {
    gauss_seidel(a, b, x);
    gauss_seidel_backward(a, b, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{laplacian_2d_5pt, tridiagonal};
    use smat_matrix::utils::norm2;

    fn error_norm(a: &Csr<f64>, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; a.rows()];
        residual(a, x, b, &mut r);
        norm2(&r)
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = tridiagonal::<f64>(20);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; 20];
        a.spmv(&x, &mut b).unwrap();
        assert!(error_norm(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn jacobi_reduces_residual() {
        // Small grid: the smooth error mode (which Jacobi damps slowest)
        // still decays measurably within 50 sweeps.
        let a = laplacian_2d_5pt::<f64>(6, 6);
        let n = a.rows();
        let b = vec![1.0; n];
        let diag = a.diagonal();
        let mut x = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        let r0 = error_norm(&a, &x, &b);
        for _ in 0..50 {
            jacobi(&a, &diag, 2.0 / 3.0, &b, &mut x, &mut scratch);
        }
        let r1 = error_norm(&a, &x, &b);
        assert!(r1 < 0.5 * r0, "jacobi stalled: {r0} -> {r1}");
    }

    #[test]
    fn gauss_seidel_beats_jacobi_per_sweep() {
        let a = laplacian_2d_5pt::<f64>(10, 10);
        let n = a.rows();
        let b = vec![1.0; n];
        let diag = a.diagonal();
        let mut xj = vec![0.0; n];
        let mut xgs = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        for _ in 0..10 {
            jacobi(&a, &diag, 2.0 / 3.0, &b, &mut xj, &mut scratch);
            gauss_seidel(&a, &b, &mut xgs);
        }
        assert!(error_norm(&a, &xgs, &b) < error_norm(&a, &xj, &b));
    }

    #[test]
    fn jacobi_update_matches_jacobi() {
        let a = tridiagonal::<f64>(15);
        let diag = a.diagonal();
        let b: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let mut x1 = vec![0.5; 15];
        let mut x2 = x1.clone();
        let mut scratch = vec![0.0; 15];
        jacobi(&a, &diag, 0.7, &b, &mut x1, &mut scratch);
        let mut ax = vec![0.0; 15];
        a.spmv(&x2.clone(), &mut ax).unwrap();
        jacobi_update(&diag, 0.7, &ax, &b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn symmetric_gs_beats_forward_gs_per_sweep() {
        let a = laplacian_2d_5pt::<f64>(12, 12);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x_f = vec![0.0; n];
        let mut x_s = vec![0.0; n];
        for _ in 0..6 {
            gauss_seidel(&a, &b, &mut x_f);
            symmetric_gauss_seidel(&a, &b, &mut x_s);
        }
        assert!(error_norm(&a, &x_s, &b) < error_norm(&a, &x_f, &b));
    }

    #[test]
    fn backward_sweep_converges_too() {
        let a = laplacian_2d_5pt::<f64>(8, 8);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let r0 = error_norm(&a, &x, &b);
        // GS spectral radius on this grid is ~0.88: 20 sweeps give ~0.08.
        for _ in 0..20 {
            gauss_seidel_backward(&a, &b, &mut x);
        }
        assert!(error_norm(&a, &x, &b) < 0.2 * r0);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let a = Csr::<f64>::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let mut x = vec![0.0; 2];
        gauss_seidel(&a, &[1.0, 1.0], &mut x);
    }
}

//! A persistent parking worker pool for the SpMV kernels.
//!
//! The pre-pool kernels paid per-call parallelism overhead twice: every
//! parallel SpMV spawned fresh scoped OS threads, and the work queue
//! took a mutex per item. This crate replaces both with a process-wide
//! pool sized to the hardware (or to [`set_thread_target`]):
//!
//! * **Workers are started once**, on first dispatch, and then park on a
//!   condvar. Waking them for a new job is a lock + `notify_all`, not a
//!   `clone`/`spawn`/`join` cycle — [`spawn_count`] stays flat across
//!   any number of [`parallel_for`] calls.
//! * **Chunks are claimed through a single atomic cursor**
//!   (`fetch_add`), so the steady-state dispatch performs **no heap
//!   allocation and no per-item locking**. The caller participates as
//!   the `N`-th worker instead of blocking idle.
//!
//! Jobs are published as an epoch (`seq`) under one mutex; each worker
//! observes every epoch exactly once and checks out by decrementing a
//! pending counter. The dispatcher returns only after every worker has
//! checked out, which is what makes lending the stack-borrowed closure
//! to the workers sound.
//!
//! Robustness rules, matching the rest of the workspace:
//!
//! * A panic inside a chunk is caught in whichever thread ran it, the
//!   first payload is stored, every remaining chunk still completes, and
//!   the payload is re-thrown on the *calling* thread — so the caller's
//!   existing `catch_unwind` isolation (e.g. the tuning pipeline's
//!   guarded measurement) sees the same behavior as before.
//! * A dispatch that finds the pool busy (another thread mid-dispatch)
//!   runs the job inline serially instead of convoying on a lock; same
//!   for nested calls from inside a worker.
//! * The failpoint site `pool.dispatch` sits at dispatch entry:
//!   scripted `fail` forces the inline-serial fallback, `delay` stalls
//!   the dispatcher, `panic` unwinds before any pool state is touched.
//!
//! # Examples
//!
//! ```
//! let sums: Vec<std::sync::atomic::AtomicU64> =
//!     (0..8).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
//! smat_pool::parallel_for(8, &|chunk| {
//!     sums[chunk].store(chunk as u64 + 1, std::sync::atomic::Ordering::Relaxed);
//! });
//! let total: u64 = sums
//!     .iter()
//!     .map(|s| s.load(std::sync::atomic::Ordering::Relaxed))
//!     .sum();
//! assert_eq!(total, 36);
//! ```

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError, TryLockError};

/// Requested pool size, consulted once when the pool is first built.
static TARGET: AtomicUsize = AtomicUsize::new(0);
/// Total OS threads ever spawned by the pool (the whole point: this
/// stays flat once the pool exists).
static SPAWNS: AtomicU64 = AtomicU64::new(0);
/// Parallel dispatches actually fanned out to the workers (inline
/// fallbacks are not counted).
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
/// Dispatches diverted to the inline-serial fallback by the
/// `pool.dispatch` failpoint. The runtime's degradation ladder watches
/// this counter to detect a faulting pool.
static DISPATCH_FAULTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set inside pool workers so nested [`parallel_for`] calls run
    /// inline instead of deadlocking on their own pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The published job: an epoch counter plus a type-erased borrow of the
/// dispatcher's closure. `pending` counts workers that have not yet
/// checked out of the current epoch.
struct JobSlot {
    seq: u64,
    chunks: usize,
    body: Option<BodyPtr>,
    pending: usize,
}

/// Raw pointer to the dispatcher's closure. Sending it to workers is
/// sound because the dispatcher blocks until every worker has checked
/// out of the epoch that borrowed it.
struct BodyPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls are fine) and its
// lifetime is enforced by the epoch protocol described above.
unsafe impl Send for BodyPtr {}

struct Pool {
    threads: usize,
    workers: usize,
    job: Mutex<JobSlot>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The dispatcher parks here until `pending` drops to zero.
    done_cv: Condvar,
    /// Next chunk index to claim; reset per epoch under the job lock.
    cursor: AtomicUsize,
    /// First panic payload of the current job, re-thrown by the caller.
    panic_box: Mutex<Option<Box<dyn Any + Send>>>,
    /// Held for the duration of one fan-out; `try_lock` contention sends
    /// concurrent dispatchers down the inline-serial fallback.
    dispatch_lock: Mutex<()>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let target = TARGET.load(Ordering::Relaxed);
        let threads = if target > 0 {
            target
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let workers = threads.saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            threads,
            workers,
            job: Mutex::new(JobSlot {
                seq: 0,
                chunks: 0,
                body: None,
                pending: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panic_box: Mutex::new(None),
            dispatch_lock: Mutex::new(()),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("smat-pool-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
            SPAWNS.fetch_add(1, Ordering::Relaxed);
        }
        pool
    })
}

/// Requests a pool of exactly `n` threads (`n - 1` parked workers plus
/// the dispatching caller). Only effective before the pool is built —
/// the first dispatch (or [`current_num_threads`] call) freezes the
/// size for the process lifetime, so configure it early; later calls
/// are silently ignored.
pub fn set_thread_target(n: usize) {
    TARGET.store(n.max(1), Ordering::Relaxed);
}

/// Number of threads that cooperate on a [`parallel_for`]: the parked
/// workers plus the calling thread. Builds the pool on first call.
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Total OS threads ever spawned by the pool. Constant after the first
/// dispatch — the zero-spawn steady state is asserted by tests.
pub fn spawn_count() -> u64 {
    SPAWNS.load(Ordering::Relaxed)
}

/// Number of dispatches that fanned out to the workers (inline-serial
/// fallbacks — single chunk, busy pool, nested call, scripted fault —
/// are not counted).
pub fn dispatch_count() -> u64 {
    DISPATCHES.load(Ordering::Relaxed)
}

/// Number of dispatches the `pool.dispatch` failpoint diverted to the
/// inline-serial fallback. Always 0 without the `failpoints` feature.
/// The results of diverted dispatches are still correct — this counter
/// only reports that the pool path faulted, so callers (the runtime's
/// degradation ladder) can demote to a serial plan and re-probe later.
pub fn dispatch_fault_count() -> u64 {
    DISPATCH_FAULTS.load(Ordering::Relaxed)
}

/// Claims chunks from the shared cursor until the job is exhausted.
/// Panics are caught per chunk; the first payload is kept for the
/// dispatcher to re-throw.
fn run_chunks(pool: &Pool, body: &(dyn Fn(usize) + Sync), chunks: usize) {
    loop {
        let ci = pool.cursor.fetch_add(1, Ordering::Relaxed);
        if ci >= chunks {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(ci))) {
            let mut slot = lock(&pool.panic_box);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let (body, chunks) = {
            let mut job = lock(&pool.job);
            while job.seq == seen {
                job = pool
                    .work_cv
                    .wait(job)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            seen = job.seq;
            (job.body.as_ref().map(|b| b.0), job.chunks)
        };
        if let Some(ptr) = body {
            // SAFETY: the dispatcher that published this epoch blocks
            // until we check out below, so the borrow is live.
            let f = unsafe { &*ptr };
            run_chunks(pool, f, chunks);
        }
        let mut job = lock(&pool.job);
        job.pending -= 1;
        if job.pending == 0 {
            pool.done_cv.notify_all();
        }
    }
}

#[inline]
fn run_inline(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    for ci in 0..chunks {
        body(ci);
    }
}

/// Runs `body(0..chunks)` across the pool, returning when every chunk
/// has completed. Chunk indices are claimed through an atomic cursor,
/// so callers should pass a small multiple of
/// [`current_num_threads`] chunks for load balancing.
///
/// Steady state performs no heap allocation and no thread spawn. The
/// job runs inline serially when it is trivial (`chunks <= 1`), the
/// host has one core, another dispatch is in flight, the call is nested
/// inside a worker, or the `pool.dispatch` failpoint injects a failure.
///
/// # Panics
///
/// If `body` panics for some chunk, every other chunk still runs and
/// the first panic payload is re-thrown on the calling thread.
pub fn parallel_for(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 {
        body(0);
        return;
    }
    if IN_WORKER.with(|f| f.get()) {
        run_inline(chunks, body);
        return;
    }
    // Failpoint `pool.dispatch`: checked before any pool state is
    // touched, so a scripted `panic` unwinds cleanly, a `fail` forces
    // the inline-serial fallback and a `delay` stalls the dispatcher.
    if smat_failpoints::check("pool.dispatch").is_some() {
        DISPATCH_FAULTS.fetch_add(1, Ordering::Relaxed);
        run_inline(chunks, body);
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        run_inline(chunks, body);
        return;
    }
    let _guard = match pool.dispatch_lock.try_lock() {
        Ok(guard) => guard,
        // Busy pool: running inline beats convoying every caller
        // through one fan-out at a time (the chaos suite hammers a
        // shared engine from 16 threads).
        Err(TryLockError::WouldBlock) => {
            run_inline(chunks, body);
            return;
        }
        Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
    };
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    // Erase the borrow's lifetime to publish it to the workers. Sound
    // because this function does not return until `pending == 0`, i.e.
    // until no worker can still dereference it.
    let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
    };
    {
        let mut job = lock(&pool.job);
        pool.cursor.store(0, Ordering::Relaxed);
        job.seq += 1;
        job.chunks = chunks;
        job.body = Some(BodyPtr(ptr));
        job.pending = pool.workers;
        pool.work_cv.notify_all();
    }
    // The caller is the N-th worker.
    run_chunks(pool, body, chunks);
    {
        let mut job = lock(&pool.job);
        while job.pending > 0 {
            job = pool
                .done_cv
                .wait(job)
                .unwrap_or_else(PoisonError::into_inner);
        }
        job.body = None;
    }
    let payload = lock(&pool.panic_box).take();
    drop(_guard);
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), &|ci| {
            hits[ci].fetch_add(1, Ordering::Relaxed);
        });
        for (ci, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {ci}");
        }
    }

    #[test]
    fn disjoint_slice_writes_land() {
        let mut data = vec![0u64; 96];
        let base = data.as_mut_ptr() as usize;
        parallel_for(12, &|ci| {
            // SAFETY: each chunk index is claimed exactly once, and the
            // 8-element windows are disjoint.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut u64).add(ci * 8), 8) };
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (ci * 8 + i) as u64;
            }
        });
        let expect: Vec<u64> = (0..96).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn zero_and_single_chunk_jobs_run_inline() {
        parallel_for(0, &|_| panic!("no chunks, no calls"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, &|ci| {
            assert_eq!(ci, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn steady_state_spawns_no_threads() {
        // Warm the pool, then hammer it: the spawn counter must be flat.
        parallel_for(8, &|_| {});
        let spawned = spawn_count();
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            parallel_for(16, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 16);
        assert_eq!(spawn_count(), spawned, "steady state must not spawn");
        assert!(spawn_count() <= current_num_threads() as u64);
    }

    #[test]
    fn nested_dispatch_runs_inline_and_completes() {
        let counter = AtomicUsize::new(0);
        parallel_for(4, &|_| {
            parallel_for(4, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_chunk_propagates_to_caller_and_pool_survives() {
        let before = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_for(8, &|ci| {
                before.fetch_add(1, Ordering::Relaxed);
                if ci == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("chunk 3 exploded"), "payload: {msg}");
        // Chunks up to the panic certainly ran (the pooled path runs
        // them all; the single-core inline fallback stops at chunk 3),
        // and the pool still works afterwards.
        assert!(before.load(Ordering::Relaxed) >= 4);
        let after = AtomicUsize::new(0);
        parallel_for(8, &|_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_dispatchers_all_complete_correctly() {
        let threads = 8;
        let rounds = 50;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..rounds {
                        let counter = AtomicUsize::new(0);
                        parallel_for(16, &|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(counter.load(Ordering::Relaxed), 16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no dispatcher may panic");
        }
    }
}

//! Exercises the *pooled* (non-inline) dispatch path regardless of the
//! host's core count: `set_thread_target` runs in its own process here
//! (integration tests are separate binaries), so it wins the
//! first-touch race and the pool really parks workers.

use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn forced_pool_parks_workers_and_dispatches_without_spawning() {
    smat_pool::set_thread_target(3);
    assert_eq!(smat_pool::current_num_threads(), 3);
    // Building the 3-thread pool spawned exactly its 2 workers.
    assert_eq!(smat_pool::spawn_count(), 2);

    let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
    for _ in 0..200 {
        smat_pool::parallel_for(hits.len(), &|ci| {
            hits[ci].fetch_add(1, Ordering::Relaxed);
        });
    }
    for (ci, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 200, "chunk {ci}");
    }
    // Steady state: the 200 dispatches fanned out (counted) but never
    // spawned another thread.
    assert_eq!(smat_pool::spawn_count(), 2);
    assert!(smat_pool::dispatch_count() >= 200);

    // A panic inside a pooled chunk lands on the dispatcher, all other
    // chunks still run, and the pool keeps serving afterwards.
    let ran = AtomicUsize::new(0);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        smat_pool::parallel_for(16, &|ci| {
            ran.fetch_add(1, Ordering::Relaxed);
            if ci == 5 {
                panic!("pooled chunk exploded");
            }
        });
    }))
    .expect_err("panic must reach the dispatcher");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str payload>");
    assert!(msg.contains("pooled chunk exploded"), "payload: {msg}");
    assert_eq!(ran.load(Ordering::Relaxed), 16, "all chunks still ran");
    let after = AtomicUsize::new(0);
    smat_pool::parallel_for(8, &|_| {
        after.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(after.load(Ordering::Relaxed), 8);
    assert_eq!(smat_pool::spawn_count(), 2);
}

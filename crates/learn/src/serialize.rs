//! JSON persistence for trained artifacts.
//!
//! The paper's model "is generated once in off-line stage, and used
//! repeatedly for different input matrices" — which requires saving it to
//! disk. JSON keeps the rules human-inspectable (they are IF-THEN
//! sentences at heart).

use crate::order::RuleGroups;
use crate::rules::RuleSet;
use crate::tree::DecisionTree;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Error saving or loading a learned artifact.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Saves any serializable artifact as pretty JSON.
///
/// The write is atomic: the JSON goes to a `<path>.tmp` sibling first
/// and is renamed into place, so a crash mid-write can never leave a
/// half-written file that a later loader would trust.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let text = serde_json::to_string_pretty(value)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    // Failpoints `persist.write` / `persist.rename`: scripted failures
    // before the tmp write and between write and rename, the two spots
    // where a crash tests the atomicity claim above.
    let write_then_rename = || -> std::io::Result<()> {
        if let Some(fault) = smat_failpoints::check("persist.write") {
            return Err(fault.into());
        }
        std::fs::write(&tmp, &text)?;
        if let Some(fault) = smat_failpoints::check("persist.rename") {
            return Err(fault.into());
        }
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write_then_rename() {
        // Best-effort cleanup so a failed save does not litter.
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

/// Loads a JSON artifact.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or deserialization failure.
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, PersistError> {
    if let Some(fault) = smat_failpoints::check("persist.read") {
        return Err(PersistError::Io(fault.into()));
    }
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Convenience alias: saves a ruleset.
///
/// # Errors
///
/// See [`save_json`].
pub fn save_ruleset(rs: &RuleSet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_json(rs, path)
}

/// Convenience alias: loads a ruleset.
///
/// # Errors
///
/// See [`load_json`].
pub fn load_ruleset(path: impl AsRef<Path>) -> Result<RuleSet, PersistError> {
    load_json(path)
}

/// Convenience alias: saves a decision tree.
///
/// # Errors
///
/// See [`save_json`].
pub fn save_tree(tree: &DecisionTree, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_json(tree, path)
}

/// Convenience alias: loads a decision tree.
///
/// # Errors
///
/// See [`load_json`].
pub fn load_tree(path: impl AsRef<Path>) -> Result<DecisionTree, PersistError> {
    load_json(path)
}

/// Convenience alias: saves rule groups.
///
/// # Errors
///
/// See [`save_json`].
pub fn save_groups(groups: &RuleGroups, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_json(groups, path)
}

/// Convenience alias: loads rule groups.
///
/// # Errors
///
/// See [`load_json`].
pub fn load_groups(path: impl AsRef<Path>) -> Result<RuleGroups, PersistError> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::order::RuleGroups;
    use crate::tree::{DecisionTree, TreeParams};

    fn fixture() -> (DecisionTree, RuleSet, Dataset) {
        let mut ds = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..30 {
            ds.push(vec![i as f64], usize::from(i >= 15)).unwrap();
        }
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let rs = RuleSet::from_tree(&tree, &ds);
        (tree, rs, ds)
    }

    #[test]
    fn tree_round_trip() {
        let (tree, _, _) = fixture();
        let dir = std::env::temp_dir().join("smat_learn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.json");
        save_tree(&tree, &path).unwrap();
        let back = load_tree(&path).unwrap();
        assert_eq!(back, tree);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ruleset_and_groups_round_trip() {
        let (_, rs, _) = fixture();
        let dir = std::env::temp_dir().join("smat_learn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("rules.json");
        save_ruleset(&rs, &p1).unwrap();
        assert_eq!(load_ruleset(&p1).unwrap(), rs);

        let groups = RuleGroups::from_ruleset(&rs, &[0, 1]);
        let p2 = dir.join("groups.json");
        save_groups(&groups, &p2).unwrap();
        assert_eq!(load_groups(&p2).unwrap(), groups);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_tree("/nonexistent/path/tree.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn load_garbage_is_json_error() {
        let dir = std::env::temp_dir().join("smat_learn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_tree(&path).unwrap_err();
        assert!(matches!(err, PersistError::Json(_)));
        std::fs::remove_file(&path).ok();
    }
}

//! C4.5-style decision tree induction with gain-ratio splits.
//!
//! This is the core of the C5.0 stand-in (see `DESIGN.md` §5): binary
//! splits `attr <= threshold` on continuous attributes, chosen to
//! maximize the gain ratio, grown to purity and then simplified by
//! pessimistic pruning ([`crate::prune`]).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of tree induction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Minimum number of records a split may leave on each side (C4.5's
    /// `-m`).
    pub min_leaf: usize,
    /// Hard depth cap (safety bound; generous by default).
    pub max_depth: usize,
    /// Confidence factor for pessimistic pruning (C4.5's `-c`, default
    /// 0.25). `1.0` disables pruning.
    pub prune_confidence: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            min_leaf: 2,
            max_depth: 40,
            prune_confidence: 0.25,
        }
    }
}

/// A node of the decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Training-class histogram at this node (indexed by class id).
    pub counts: Vec<usize>,
    /// Leaf or internal split.
    pub kind: NodeKind,
}

/// The two node shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class id.
        class: usize,
    },
    /// Binary test `values[attr] <= threshold`.
    Split {
        /// Attribute (column) index tested.
        attr: usize,
        /// Split threshold; `<=` goes left.
        threshold: f64,
        /// Subtree for `values[attr] <= threshold`.
        left: Box<Node>,
        /// Subtree for `values[attr] > threshold`.
        right: Box<Node>,
    },
}

impl Node {
    /// Records that reached this node during training.
    pub fn n(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Majority class at this node.
    pub fn majority(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Training errors if this node were a leaf predicting its majority.
    pub fn errors_as_leaf(&self) -> usize {
        self.n() - self.counts.iter().max().copied().unwrap_or(0)
    }
}

/// A trained decision tree.
///
/// # Examples
///
/// ```
/// use smat_learn::{Dataset, DecisionTree, TreeParams};
///
/// let mut ds = Dataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()]);
/// for i in 0..20 {
///     let x = i as f64 - 10.0;
///     ds.push(vec![x], usize::from(x > 0.0))?;
/// }
/// let tree = DecisionTree::fit(&ds, TreeParams::default());
/// assert_eq!(tree.predict(&[5.0]), 1);
/// assert_eq!(tree.predict(&[-5.0]), 0);
/// # Ok::<(), smat_learn::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Root node.
    pub root: Node,
    /// Attribute names, mirroring the training dataset's columns.
    pub attributes: Vec<String>,
    /// Class names, mirroring the training dataset.
    pub classes: Vec<String>,
}

impl DecisionTree {
    /// Induces a tree from `ds` and applies pessimistic pruning.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: TreeParams) -> Self {
        assert!(!ds.is_empty(), "cannot fit a tree on an empty dataset");
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut root = grow(ds, &indices, &params, 0);
        if params.prune_confidence < 1.0 {
            crate::prune::prune(&mut root, params.prune_confidence);
        }
        Self {
            root,
            attributes: ds.attributes().to_vec(),
            classes: ds.classes().to_vec(),
        }
    }

    /// Predicts the class index for an attribute vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than an attribute index used by the
    /// tree.
    pub fn predict(&self, values: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match &node.kind {
                NodeKind::Leaf { class } => return *class,
                NodeKind::Split {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    node = if values[*attr] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Fraction of `ds` records the tree classifies correctly.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 1.0;
        }
        let correct = ds
            .iter()
            .filter(|r| self.predict(&r.values) == r.label)
            .count();
        correct as f64 / ds.len() as f64
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match &n.kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Number of leaves (= extracted rules before simplification).
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match &n.kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match &n.kind {
                NodeKind::Leaf { .. } => 0,
                NodeKind::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

fn class_histogram(ds: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; ds.classes().len()];
    for &i in indices {
        counts[ds.records()[i].label] += 1;
    }
    counts
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// Best split over all attributes: `(attr, threshold, gain_ratio)`.
fn best_split(ds: &Dataset, indices: &[usize], min_leaf: usize) -> Option<(usize, f64)> {
    let total = indices.len();
    let base_counts = class_histogram(ds, indices);
    let base_entropy = entropy(&base_counts, total);
    let n_classes = ds.classes().len();
    let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, gain_ratio)

    for attr in 0..ds.attributes().len() {
        // Sort record indices by this attribute's value.
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            ds.records()[a].values[attr].total_cmp(&ds.records()[b].values[attr])
        });
        let mut left_counts = vec![0usize; n_classes];
        for k in 0..total.saturating_sub(1) {
            let rec = &ds.records()[order[k]];
            left_counts[rec.label] += 1;
            let v = rec.values[attr];
            let v_next = ds.records()[order[k + 1]].values[attr];
            if v == v_next {
                continue; // threshold must separate distinct values
            }
            let n_left = k + 1;
            let n_right = total - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let right_counts: Vec<usize> = base_counts
                .iter()
                .zip(&left_counts)
                .map(|(&b, &l)| b - l)
                .collect();
            let cond = (n_left as f64 / total as f64) * entropy(&left_counts, n_left)
                + (n_right as f64 / total as f64) * entropy(&right_counts, n_right);
            let gain = base_entropy - cond;
            if gain <= 1e-9 {
                continue;
            }
            // Split information (entropy of the partition sizes).
            let pl = n_left as f64 / total as f64;
            let pr = n_right as f64 / total as f64;
            let split_info = -(pl * pl.log2() + pr * pr.log2());
            if split_info <= 1e-12 {
                continue;
            }
            let ratio = gain / split_info;
            let threshold = 0.5 * (v + v_next);
            if best.is_none_or(|(_, _, r)| ratio > r) {
                best = Some((attr, threshold, ratio));
            }
        }
    }
    best.map(|(a, t, _)| (a, t))
}

fn grow(ds: &Dataset, indices: &[usize], params: &TreeParams, depth: usize) -> Node {
    let counts = class_histogram(ds, indices);
    let majority = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= params.max_depth || indices.len() < 2 * params.min_leaf {
        return Node {
            counts,
            kind: NodeKind::Leaf { class: majority },
        };
    }
    match best_split(ds, indices, params.min_leaf) {
        None => Node {
            counts,
            kind: NodeKind::Leaf { class: majority },
        },
        Some((attr, threshold)) => {
            let (li, ri): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| ds.records()[i].values[attr] <= threshold);
            let left = grow(ds, &li, params, depth + 1);
            let right = grow(ds, &ri, params, depth + 1);
            Node {
                counts,
                kind: NodeKind::Split {
                    attr,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_dataset() -> Dataset {
        // Perfectly separable on x at 3.5.
        let mut ds = Dataset::new(
            vec!["x".into(), "noise".into()],
            vec!["lo".into(), "hi".into()],
        );
        for i in 0..40 {
            let x = (i % 8) as f64;
            let label = usize::from(x > 3.5);
            ds.push(vec![x, (i * 7 % 5) as f64], label).unwrap();
        }
        ds
    }

    #[test]
    fn learns_a_threshold() {
        let tree = DecisionTree::fit(&threshold_dataset(), TreeParams::default());
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[7.0, 0.0]), 1);
        assert_eq!(tree.accuracy(&threshold_dataset()), 1.0);
        // One split suffices.
        assert_eq!(tree.leaf_count(), 2);
        if let NodeKind::Split {
            attr, threshold, ..
        } = &tree.root.kind
        {
            assert_eq!(*attr, 0, "must split on x, not noise");
            assert!(*threshold > 3.0 && *threshold < 4.0);
        } else {
            panic!("expected a split at the root");
        }
    }

    #[test]
    fn learns_conjunction_with_two_levels() {
        // label = (a > 0.5) AND (b > 0.5): needs a two-level tree. (XOR is
        // deliberately not tested — greedy entropy splitting cannot see
        // past its zero first-level gain, a limitation shared with C4.5.)
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], vec!["0".into(), "1".into()]);
        for i in 0..80 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let label = usize::from(a > 0.5 && b > 0.5);
            ds.push(vec![a, b], label).unwrap();
        }
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut ds = Dataset::new(vec!["x".into()], vec!["only".into(), "other".into()]);
        for i in 0..10 {
            ds.push(vec![i as f64], 0).unwrap();
        }
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[100.0]), 0);
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        let mut ds = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        // 9 of class a, 1 of class b: a min_leaf of 3 forbids isolating it.
        for i in 0..9 {
            ds.push(vec![i as f64], 0).unwrap();
        }
        ds.push(vec![100.0], 1).unwrap();
        let params = TreeParams {
            min_leaf: 3,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&ds, params);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn majority_and_errors_helpers() {
        let n = Node {
            counts: vec![3, 5, 2],
            kind: NodeKind::Leaf { class: 1 },
        };
        assert_eq!(n.n(), 10);
        assert_eq!(n.majority(), 1);
        assert_eq!(n.errors_as_leaf(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let tree = DecisionTree::fit(&threshold_dataset(), TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn tied_values_are_never_split_between() {
        // All records share one attribute value; no split possible there.
        let mut ds = Dataset::new(vec!["c".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            ds.push(vec![1.0], i % 2).unwrap();
        }
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
    }
}

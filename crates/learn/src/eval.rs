//! Classifier evaluation: confusion matrices and cross-validation.

use crate::dataset::Dataset;
use crate::rules::RuleSet;
use crate::tree::{DecisionTree, TreeParams};
use std::fmt;

/// A confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Class names, indexing both axes.
    pub classes: Vec<String>,
    /// `counts[actual][predicted]`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from a classifier closure.
    pub fn from_fn(ds: &Dataset, mut classify: impl FnMut(&[f64]) -> usize) -> Self {
        let k = ds.classes().len();
        let mut counts = vec![vec![0usize; k]; k];
        for r in ds.iter() {
            counts[r.label][classify(&r.values)] += 1;
        }
        Self {
            classes: ds.classes().to_vec(),
            counts,
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 1.0;
        }
        let correct: usize = (0..self.classes.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `i` (diagonal over row sum).
    pub fn recall(&self, i: usize) -> f64 {
        let row: usize = self.counts[i].iter().sum();
        if row == 0 {
            return 1.0;
        }
        self.counts[i][i] as f64 / row as f64
    }

    /// Precision of class `i` (diagonal over column sum).
    pub fn precision(&self, i: usize) -> f64 {
        let col: usize = self.counts.iter().map(|r| r[i]).sum();
        if col == 0 {
            return 1.0;
        }
        self.counts[i][i] as f64 / col as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>14}", "actual\\pred")?;
        for c in &self.classes {
            write!(f, "{c:>8}")?;
        }
        writeln!(f)?;
        for (i, row) in self.counts.iter().enumerate() {
            write!(f, "{:>14}", self.classes[i])?;
            for &v in row {
                write!(f, "{v:>8}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Per-fold test accuracy of the tree classifier.
    pub tree_accuracy: Vec<f64>,
    /// Per-fold test accuracy of the extracted ruleset.
    pub ruleset_accuracy: Vec<f64>,
}

impl CrossValidation {
    /// Mean tree accuracy across folds.
    pub fn mean_tree(&self) -> f64 {
        mean(&self.tree_accuracy)
    }

    /// Mean ruleset accuracy across folds.
    pub fn mean_ruleset(&self) -> f64 {
        mean(&self.ruleset_accuracy)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs `k`-fold cross-validation: fits a tree + ruleset on each train
/// fold and evaluates both on the held-out fold.
///
/// # Panics
///
/// Panics if `k < 2` or `k > ds.len()`.
pub fn cross_validate(ds: &Dataset, params: TreeParams, k: usize, seed: u64) -> CrossValidation {
    let mut tree_accuracy = Vec::with_capacity(k);
    let mut ruleset_accuracy = Vec::with_capacity(k);
    for (test, train) in ds.folds(k, seed) {
        let tree = DecisionTree::fit(&train, params);
        let rules = RuleSet::from_tree(&tree, &train);
        tree_accuracy.push(tree.accuracy(&test));
        ruleset_accuracy.push(rules.accuracy(&test));
    }
    CrossValidation {
        tree_accuracy,
        ruleset_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..60 {
            let x = (i % 12) as f64;
            ds.push(vec![x], usize::from(x >= 6.0)).unwrap();
        }
        ds
    }

    #[test]
    fn confusion_matrix_on_perfect_classifier() {
        let ds = separable();
        let cm = ConfusionMatrix::from_fn(&ds, |v| usize::from(v[0] >= 6.0));
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.recall(0), 1.0);
        assert_eq!(cm.precision(1), 1.0);
        assert_eq!(cm.counts[0][1], 0);
    }

    #[test]
    fn confusion_matrix_counts_errors() {
        let ds = separable();
        let cm = ConfusionMatrix::from_fn(&ds, |_| 0); // constant classifier
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(cm.recall(1), 0.0);
        // Column 1 is empty: precision defined as 1.
        assert_eq!(cm.precision(1), 1.0);
        assert!(cm.to_string().contains("actual"));
    }

    #[test]
    fn cross_validation_on_separable_data_is_high() {
        let cv = cross_validate(&separable(), TreeParams::default(), 5, 42);
        assert_eq!(cv.tree_accuracy.len(), 5);
        assert!(cv.mean_tree() > 0.9, "tree cv = {}", cv.mean_tree());
        assert!(cv.mean_ruleset() > 0.9, "rules cv = {}", cv.mean_ruleset());
    }
}

//! Boosted decision trees — the headline feature C5.0 adds over C4.5
//! (AdaBoost-style committee of trees, here the multiclass SAMME
//! variant with deterministic weighted resampling).
//!
//! SMAT's pipeline uses the ruleset classifier (it needs IF-THEN rules
//! with confidence factors); the boosted committee is provided as the
//! higher-accuracy alternative C5.0 ships, useful for measuring how much
//! headroom the interpretable ruleset leaves on the table.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of boosting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostParams {
    /// Number of boosting rounds (C5.0's `-t`, commonly 10).
    pub rounds: usize,
    /// Parameters of each round's tree.
    pub tree: TreeParams,
    /// Seed for the weighted resampling.
    pub seed: u64,
}

impl Default for BoostParams {
    fn default() -> Self {
        Self {
            rounds: 10,
            tree: TreeParams::default(),
            seed: 0xB005,
        }
    }
}

/// A boosted committee of decision trees with per-tree vote weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoostedTrees {
    /// `(tree, alpha)` pairs; predictions are weighted votes.
    pub members: Vec<(DecisionTree, f64)>,
    /// Class names, mirroring the training dataset.
    pub classes: Vec<String>,
}

impl BoostedTrees {
    /// Fits a SAMME committee: each round fits a tree on a sample drawn
    /// with the current instance weights, then reweights toward the
    /// records the committee still gets wrong.
    ///
    /// Rounds whose weighted error reaches the multiclass random-guess
    /// bound `1 - 1/K` are discarded and boosting stops early; a round
    /// with zero error short-circuits (the committee is that tree).
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty or `params.rounds == 0`.
    pub fn fit(ds: &Dataset, params: BoostParams) -> Self {
        assert!(!ds.is_empty(), "cannot boost on an empty dataset");
        assert!(params.rounds > 0, "at least one round required");
        let n = ds.len();
        let k = ds.classes().len() as f64;
        let mut rng_state = params.seed;
        let mut weights = vec![1.0 / n as f64; n];
        let mut members: Vec<(DecisionTree, f64)> = Vec::new();

        for round in 0..params.rounds {
            // Round one trains on the full data (all weights are equal);
            // later rounds draw weighted resamples.
            let tree = if round == 0 {
                DecisionTree::fit(ds, params.tree)
            } else {
                let sample_idx = weighted_sample(&weights, n, &mut rng_state, round as u64);
                DecisionTree::fit(&ds.subset(&sample_idx), params.tree)
            };

            // Weighted error on the ORIGINAL dataset.
            let mut err = 0.0;
            let wrong: Vec<bool> = ds
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let miss = tree.predict(&r.values) != r.label;
                    if miss {
                        err += weights[i];
                    }
                    miss
                })
                .collect();

            if err <= 1e-12 {
                // Perfect tree: it alone decides.
                members.push((tree, 1.0));
                break;
            }
            if err >= 1.0 - 1.0 / k {
                // No better than multiclass chance: stop boosting.
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            // Reweight and renormalize.
            let mut total = 0.0;
            for (w, &miss) in weights.iter_mut().zip(&wrong) {
                if miss {
                    *w *= alpha.exp();
                }
                total += *w;
            }
            for w in &mut weights {
                *w /= total;
            }
            members.push((tree, alpha));
        }
        if members.is_empty() {
            // Fall back to a single unweighted tree so predict() works.
            members.push((DecisionTree::fit(ds, params.tree), 1.0));
        }
        Self {
            members,
            classes: ds.classes().to_vec(),
        }
    }

    /// Predicts by weighted vote.
    pub fn predict(&self, values: &[f64]) -> usize {
        let mut votes = vec![0.0f64; self.classes.len()];
        for (tree, alpha) in &self.members {
            votes[tree.predict(values)] += alpha;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Fraction of `ds` classified correctly.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 1.0;
        }
        let correct = ds
            .iter()
            .filter(|r| self.predict(&r.values) == r.label)
            .count();
        correct as f64 / ds.len() as f64
    }

    /// Number of committee members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the committee is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Deterministic weighted sampling with replacement (splitmix64 stream).
fn weighted_sample(weights: &[f64], n: usize, state: &mut u64, round: u64) -> Vec<usize> {
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;
    let mut next = || {
        *state = state
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_add(round.wrapping_mul(0xD1B54A32D192ED03));
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64 * total;
            cum.partition_point(|&c| c <= u).min(weights.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three bands on `a`, labels 0/1/0 — a depth-1 stump cannot separate
    /// the middle band from both sides at once.
    fn banded_dataset() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into()], vec!["out".into(), "mid".into()]);
        for i in 0..90 {
            let a = (i % 30) as f64;
            let label = usize::from((10.0..20.0).contains(&a));
            ds.push(vec![a], label).unwrap();
        }
        ds
    }

    fn stump_params() -> TreeParams {
        TreeParams {
            max_depth: 1,
            min_leaf: 1,
            prune_confidence: 1.0,
        }
    }

    #[test]
    fn boosting_stumps_beats_a_single_stump() {
        let ds = banded_dataset();
        let single = DecisionTree::fit(&ds, stump_params());
        let boosted = BoostedTrees::fit(
            &ds,
            BoostParams {
                rounds: 20,
                tree: stump_params(),
                seed: 1,
            },
        );
        assert!(
            boosted.accuracy(&ds) > single.accuracy(&ds),
            "boosted {} vs single {}",
            boosted.accuracy(&ds),
            single.accuracy(&ds)
        );
        assert!(boosted.len() > 1, "committee should have several members");
    }

    #[test]
    fn perfect_tree_short_circuits() {
        let mut ds = Dataset::new(vec!["x".into()], vec!["lo".into(), "hi".into()]);
        for i in 0..40 {
            ds.push(vec![i as f64], usize::from(i >= 20)).unwrap();
        }
        let boosted = BoostedTrees::fit(&ds, BoostParams::default());
        assert_eq!(boosted.accuracy(&ds), 1.0);
        // Round one trains on the full data; a perfect tree there
        // short-circuits the committee to a single member.
        assert_eq!(boosted.len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = banded_dataset();
        let p = BoostParams {
            rounds: 8,
            tree: stump_params(),
            seed: 9,
        };
        let a = BoostedTrees::fit(&ds, p);
        let b = BoostedTrees::fit(&ds, p);
        assert_eq!(a, b);
    }

    #[test]
    fn committee_predicts_in_class_range() {
        let ds = banded_dataset();
        let boosted = BoostedTrees::fit(&ds, BoostParams::default());
        for r in ds.iter() {
            assert!(boosted.predict(&r.values) < ds.classes().len());
        }
        assert!(!boosted.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let ds = banded_dataset();
        let boosted = BoostedTrees::fit(&ds, BoostParams::default());
        let json = serde_json::to_string(&boosted).unwrap();
        let back: BoostedTrees = serde_json::from_str(&json).unwrap();
        assert_eq!(back, boosted);
    }
}

//! Pessimistic (error-based) pruning, C4.5 style.
//!
//! Each subtree's training error is inflated to the upper confidence
//! bound of the binomial error rate at confidence factor `cf`; a subtree
//! is collapsed to a leaf when the leaf's pessimistic error does not
//! exceed the subtree's.
//!
//! The bound is the same one C4.5 computes: the error probability `p`
//! such that the binomial CDF `P(X <= e | n, p)` equals `cf`. For `e = 0`
//! it has the closed form `1 - cf^(1/n)` (C4.5's well-known
//! `U25(0, 1) = 0.75`); otherwise it is found by bisection.

use crate::tree::{Node, NodeKind};

/// Binomial CDF `P(X <= e)` for `X ~ Bin(n, p)`, computed in log space
/// for stability.
fn binomial_cdf(e: usize, n: usize, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if e >= n { 1.0 } else { 0.0 };
    }
    let lp = p.ln();
    let lq = (1.0 - p).ln();
    let mut log_coef = 0.0f64; // ln C(n, 0)
    let mut acc = 0.0f64;
    for i in 0..=e.min(n) {
        if i > 0 {
            log_coef += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        acc += (log_coef + i as f64 * lp + (n - i) as f64 * lq).exp();
    }
    acc.min(1.0)
}

/// C4.5's pessimistic error count: `n` times the upper confidence bound
/// of the error rate given `e` observed errors in `n` cases.
pub fn pessimistic_errors(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let cf = cf.clamp(1e-6, 0.999_999);
    let n_int = n.round().max(1.0) as usize;
    let e_int = (e.round().max(0.0) as usize).min(n_int);
    if e_int >= n_int {
        return n;
    }
    // Closed form for zero observed errors.
    if e_int == 0 {
        return n * (1.0 - cf.powf(1.0 / n));
    }
    // Bisection: binomial_cdf(e, n, p) is decreasing in p; find p with
    // cdf = cf, starting from the observed rate.
    let (mut lo, mut hi) = (e_int as f64 / n, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if binomial_cdf(e_int, n_int, mid) > cf {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    n * 0.5 * (lo + hi)
}

/// Prunes `node` in place, returning its pessimistic error estimate.
pub fn prune(node: &mut Node, cf: f64) -> f64 {
    let n = node.n() as f64;
    let leaf_est = pessimistic_errors(n, node.errors_as_leaf() as f64, cf);
    let subtree_est = match &mut node.kind {
        NodeKind::Leaf { .. } => return leaf_est,
        NodeKind::Split { left, right, .. } => prune(left, cf) + prune(right, cf),
    };
    if leaf_est <= subtree_est + 0.1 {
        // Collapsing cannot do (noticeably) worse: replace with a leaf.
        node.kind = NodeKind::Leaf {
            class: node.majority(),
        };
        leaf_est
    } else {
        subtree_est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::{DecisionTree, TreeParams};

    #[test]
    fn matches_known_c45_values() {
        // U25(0, 1) = 0.75 and U25(0, 6) ≈ 0.206 are the textbook values.
        assert!((pessimistic_errors(1.0, 0.0, 0.25) - 0.75).abs() < 1e-9);
        let u06 = pessimistic_errors(6.0, 0.0, 0.25) / 6.0;
        assert!((u06 - 0.206).abs() < 0.005, "U25(0,6) = {u06}");
    }

    #[test]
    fn binomial_cdf_sanity() {
        assert!((binomial_cdf(1, 2, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(binomial_cdf(2, 2, 0.5), 1.0);
        assert_eq!(binomial_cdf(0, 5, 0.0), 1.0);
        assert_eq!(binomial_cdf(0, 5, 1.0), 0.0);
    }

    #[test]
    fn pessimistic_errors_monotone_in_confidence() {
        // Lower cf (more pessimistic) inflates the estimate more.
        let loose = pessimistic_errors(100.0, 5.0, 0.5);
        let tight = pessimistic_errors(100.0, 5.0, 0.05);
        assert!(tight > loose);
        assert!(loose >= 5.0, "upper bound below observed errors");
        assert_eq!(pessimistic_errors(0.0, 0.0, 0.25), 0.0);
        assert_eq!(pessimistic_errors(10.0, 10.0, 0.25), 10.0);
    }

    #[test]
    fn pruning_removes_noise_splits() {
        // Scattered label noise: isolating each mislabeled record costs
        // many fragmented leaves whose pessimistic bounds together exceed
        // the single-leaf bound, so pruning must collapse the tree. (A
        // single separable outlier at the boundary would legitimately
        // survive C4.5 pruning — its two pure leaves bound cheaper.)
        let mut ds = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..30 {
            let label = usize::from(i == 5 || i == 15 || i == 25);
            ds.push(vec![i as f64], label).unwrap();
        }
        let unpruned = DecisionTree::fit(
            &ds,
            TreeParams {
                min_leaf: 1,
                prune_confidence: 1.0,
                ..TreeParams::default()
            },
        );
        let pruned = DecisionTree::fit(
            &ds,
            TreeParams {
                min_leaf: 1,
                prune_confidence: 0.25,
                ..TreeParams::default()
            },
        );
        assert!(unpruned.node_count() > 1, "unpruned tree should split");
        assert_eq!(pruned.node_count(), 1, "pruning should collapse noise");
    }

    #[test]
    fn pruning_keeps_real_structure() {
        let mut ds = Dataset::new(vec!["x".into()], vec!["lo".into(), "hi".into()]);
        for i in 0..50 {
            ds.push(vec![i as f64], usize::from(i >= 25)).unwrap();
        }
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        assert!(tree.node_count() >= 3, "genuine split must survive pruning");
        assert_eq!(tree.accuracy(&ds), 1.0);
    }
}

//! Rule ordering, tailoring and grouping — the paper's "Rule Tailoring
//! and Grouping" runtime preparation (§6).
//!
//! 1. **Ordering**: rules are re-ordered by *estimated contribution* —
//!    "rules reducing error rate the most appear first".
//! 2. **Tailoring**: the ruleset is cut down to the shortest prefix whose
//!    training accuracy is within a tolerance (the paper accepts a 1%
//!    gap, keeping 15 of 40 rules on its Intel platform).
//! 3. **Grouping**: surviving rules are grouped per class; each group's
//!    confidence factor is the maximum rule confidence inside it, and
//!    groups are consulted in a fixed class order (DIA → ELL → CSR → COO
//!    in SMAT) with an early-exit "optimistic strategy".

use crate::dataset::Dataset;
use crate::rules::{Rule, RuleSet};
use serde::{Deserialize, Serialize};

/// Default accepted accuracy gap between the tailored prefix and the
/// full ruleset (the paper's 1%).
pub const DEFAULT_TAILOR_TOLERANCE: f64 = 0.01;

/// Re-orders rules by estimated contribution: greedily moves forward the
/// rule whose addition to the ordered prefix reduces the training error
/// the most (ties broken toward higher-confidence rules).
///
/// Returns a new ruleset; the input order is untouched.
pub fn order_by_contribution(rs: &RuleSet, ds: &Dataset) -> RuleSet {
    let mut remaining: Vec<Rule> = rs.rules.clone();
    let mut ordered: Vec<Rule> = Vec::with_capacity(remaining.len());
    let mut current = RuleSet {
        rules: vec![],
        default_class: rs.default_class,
        attributes: rs.attributes.clone(),
        classes: rs.classes.clone(),
    };
    while !remaining.is_empty() {
        let base_correct = count_correct(&current, ds);
        let mut best: Option<(usize, usize, f64)> = None; // (idx, correct, confidence)
        for (i, cand) in remaining.iter().enumerate() {
            current.rules.push(cand.clone());
            let correct = count_correct(&current, ds);
            current.rules.pop();
            let key = (correct, cand.confidence());
            if best.is_none_or(|(_, bc, bconf)| key > (bc, bconf)) {
                best = Some((i, correct, cand.confidence()));
            }
        }
        let (idx, correct, _) = best.expect("remaining is non-empty");
        // Even a rule that does not improve training accuracy is kept (it
        // may fire on unseen inputs); contribution only dictates order.
        let _ = base_correct;
        let _ = correct;
        let rule = remaining.remove(idx);
        ordered.push(rule.clone());
        current.rules.push(rule);
    }
    current.rules = ordered;
    current
}

fn count_correct(rs: &RuleSet, ds: &Dataset) -> usize {
    ds.iter()
        .filter(|r| rs.classify(&r.values).0 == r.label)
        .count()
}

/// Tailors an (already ordered) ruleset: keeps the shortest prefix whose
/// training accuracy is within `tolerance` of the full ruleset's.
///
/// # Panics
///
/// Panics if `tolerance` is negative.
pub fn tailor(rs: &RuleSet, ds: &Dataset, tolerance: f64) -> RuleSet {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let full_acc = rs.accuracy(ds);
    let mut prefix = RuleSet {
        rules: vec![],
        default_class: rs.default_class,
        attributes: rs.attributes.clone(),
        classes: rs.classes.clone(),
    };
    for rule in &rs.rules {
        if prefix.accuracy(ds) + tolerance >= full_acc {
            break;
        }
        prefix.rules.push(rule.clone());
    }
    prefix
}

/// Rules of one class, with the group confidence factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassGroup {
    /// The class this group predicts.
    pub class: usize,
    /// Rules predicting that class, in ruleset order.
    pub rules: Vec<Rule>,
    /// Group confidence: the largest rule confidence in the group (the
    /// paper's "format confidence factor").
    pub confidence: f64,
}

/// Class-grouped rules consulted in a fixed order with early exit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleGroups {
    /// Groups in consultation order.
    pub groups: Vec<ClassGroup>,
    /// Class predicted when no group matches.
    pub default_class: usize,
}

/// The outcome of consulting the rule groups for one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDecision {
    /// Predicted class.
    pub class: usize,
    /// Confidence of the prediction: the matching group's confidence, or
    /// `0.0` when the default class answered.
    pub confidence: f64,
    /// Whether a rule (rather than the default class) fired.
    pub matched: bool,
}

impl RuleGroups {
    /// Groups `rs`'s rules by class, consulting classes in `class_order`.
    /// Classes without rules get an empty group (confidence 0).
    pub fn from_ruleset(rs: &RuleSet, class_order: &[usize]) -> Self {
        let groups = class_order
            .iter()
            .map(|&class| {
                let rules: Vec<Rule> = rs
                    .rules
                    .iter()
                    .filter(|r| r.class == class)
                    .cloned()
                    .collect();
                let confidence = rules.iter().map(|r| r.confidence()).fold(0.0f64, f64::max);
                ClassGroup {
                    class,
                    rules,
                    confidence,
                }
            })
            .collect();
        Self {
            groups,
            default_class: rs.default_class,
        }
    }

    /// Consults groups in order; the first group with a matching rule
    /// decides (the paper's optimistic early exit). Falls back to the
    /// default class with zero confidence.
    pub fn decide(&self, values: &[f64]) -> GroupDecision {
        for g in &self.groups {
            if g.rules.iter().any(|r| r.matches(values)) {
                return GroupDecision {
                    class: g.class,
                    confidence: g.confidence,
                    matched: true,
                };
            }
        }
        GroupDecision {
            class: self.default_class,
            confidence: 0.0,
            matched: false,
        }
    }

    /// Total number of rules across groups.
    pub fn rule_count(&self) -> usize {
        self.groups.iter().map(|g| g.rules.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Condition, Op};

    fn schema() -> (Vec<String>, Vec<String>) {
        (
            vec!["x".into(), "y".into()],
            vec!["A".into(), "B".into(), "C".into()],
        )
    }

    fn rule(attr: usize, op: Op, thr: f64, class: usize, covered: usize, correct: usize) -> Rule {
        Rule {
            conditions: vec![Condition {
                attr,
                op,
                threshold: thr,
            }],
            class,
            covered,
            correct,
        }
    }

    fn dataset() -> Dataset {
        // x <= 5 -> A ; x > 5 & y <= 2 -> B ; else C
        let (attrs, classes) = schema();
        let mut ds = Dataset::new(attrs, classes);
        for i in 0..30 {
            let x = (i % 10) as f64;
            let y = (i % 5) as f64;
            let label = if x <= 5.0 {
                0
            } else if y <= 2.0 {
                1
            } else {
                2
            };
            ds.push(vec![x, y], label).unwrap();
        }
        ds
    }

    fn ruleset() -> RuleSet {
        let (attrs, classes) = schema();
        let mut rs = RuleSet {
            rules: vec![
                // Deliberately listed worst-first.
                rule(1, Op::Gt, 2.0, 2, 6, 4),
                rule(0, Op::Le, 5.0, 0, 18, 18),
                rule(0, Op::Gt, 5.0, 1, 12, 8),
            ],
            default_class: 0,
            attributes: attrs,
            classes,
        };
        for r in &mut rs.rules {
            r.recount(&dataset());
        }
        rs
    }

    #[test]
    fn ordering_puts_high_contribution_first() {
        let ds = dataset();
        let ordered = order_by_contribution(&ruleset(), &ds);
        assert_eq!(ordered.rules.len(), 3);
        // Contribution is measured against the whole classifier including
        // the default class (A). The x>5 -> B rule reduces error the most
        // here: records it leaves unmatched fall through to the default,
        // which already answers the A records correctly. The y>2 -> C rule
        // alone would shadow A records with wrong C predictions.
        assert_eq!(ordered.rules[0].class, 1);
        assert!(ordered.accuracy(&ds) >= ruleset().accuracy(&ds));
    }

    #[test]
    fn tailoring_cuts_redundant_tail() {
        let ds = dataset();
        let ordered = order_by_contribution(&ruleset(), &ds);
        let full_acc = ordered.accuracy(&ds);
        let cut = tailor(&ordered, &ds, DEFAULT_TAILOR_TOLERANCE);
        assert!(cut.len() <= ordered.len());
        assert!(cut.accuracy(&ds) + DEFAULT_TAILOR_TOLERANCE >= full_acc);
    }

    #[test]
    fn tailoring_with_huge_tolerance_keeps_nothing() {
        let ds = dataset();
        let cut = tailor(&ruleset(), &ds, 1.0);
        assert_eq!(cut.len(), 0);
    }

    #[test]
    fn groups_follow_class_order_and_confidence_is_max() {
        let rs = ruleset();
        let groups = RuleGroups::from_ruleset(&rs, &[2, 1, 0]);
        assert_eq!(groups.groups[0].class, 2);
        assert_eq!(groups.rule_count(), 3);
        // Group for class 0 holds the perfect rule.
        let g0 = groups.groups.iter().find(|g| g.class == 0).unwrap();
        assert_eq!(g0.confidence, 1.0);
    }

    #[test]
    fn decide_early_exits_in_group_order() {
        let rs = ruleset();
        // Class 2's group is consulted first; x=9, y=4 matches its rule.
        let groups = RuleGroups::from_ruleset(&rs, &[2, 1, 0]);
        let d = groups.decide(&[9.0, 4.0]);
        assert_eq!(d.class, 2);
        assert!(d.matched);
        // x=1 matches class 0's rule only.
        let d = groups.decide(&[1.0, 0.0]);
        assert_eq!(d.class, 0);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn decide_falls_back_to_default() {
        let (attrs, classes) = schema();
        let rs = RuleSet {
            rules: vec![rule(0, Op::Gt, 100.0, 1, 0, 0)],
            default_class: 2,
            attributes: attrs,
            classes,
        };
        let groups = RuleGroups::from_ruleset(&rs, &[0, 1, 2]);
        let d = groups.decide(&[1.0, 1.0]);
        assert_eq!(d.class, 2);
        assert!(!d.matched);
        assert_eq!(d.confidence, 0.0);
    }
}

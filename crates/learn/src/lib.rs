//! A compact decision-tree / ruleset learner — the SMAT reproduction's
//! stand-in for the closed-source C5.0 tool the paper uses (§5).
//!
//! The pipeline mirrors what SMAT needs from C5.0:
//!
//! 1. build a feature [`Dataset`] (the "matrix feature database");
//! 2. induce a [`DecisionTree`] with gain-ratio splits and pessimistic
//!    pruning (C4.5, the published core of C5.0);
//! 3. convert it to an IF-THEN [`RuleSet`] whose rules carry the paper's
//!    *confidence factor* (correct/covered on training data);
//! 4. order rules by estimated contribution, tailor to the accurate
//!    prefix, and group per class with early-exit consultation
//!    ([`order_by_contribution`], [`tailor`], [`RuleGroups`]).
//!
//! # Examples
//!
//! ```
//! use smat_learn::{Dataset, DecisionTree, RuleSet, TreeParams};
//!
//! let mut ds = Dataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()]);
//! for i in -10..10 {
//!     ds.push(vec![i as f64], usize::from(i >= 0))?;
//! }
//! let tree = DecisionTree::fit(&ds, TreeParams::default());
//! let rules = RuleSet::from_tree(&tree, &ds);
//! assert_eq!(rules.classify(&[3.0]).0, 1);
//! assert!(rules.accuracy(&ds) == 1.0);
//! # Ok::<(), smat_learn::DatasetError>(())
//! ```

#![warn(missing_docs)]

mod boost;
mod dataset;
mod eval;
mod order;
mod prune;
mod rules;
mod serialize;
mod tree;

pub use boost::{BoostParams, BoostedTrees};
pub use dataset::{Dataset, DatasetError, Record};
pub use eval::{cross_validate, ConfusionMatrix, CrossValidation};
pub use order::{
    order_by_contribution, tailor, ClassGroup, GroupDecision, RuleGroups, DEFAULT_TAILOR_TOLERANCE,
};
pub use prune::pessimistic_errors;
pub use rules::{Condition, Op, Rule, RuleSet};
pub use serialize::{
    load_groups, load_json, load_ruleset, load_tree, save_groups, save_json, save_ruleset,
    save_tree, PersistError,
};
pub use tree::{DecisionTree, Node, NodeKind, TreeParams};

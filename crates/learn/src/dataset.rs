//! Tabular datasets for the decision-tree learner.
//!
//! A dataset is the "matrix feature database" of the paper's Figure 4:
//! one record per training matrix, continuous attribute columns (the
//! Table 2 parameters) and a categorical target (`Best_Format`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A record had the wrong number of attribute values.
    WrongArity {
        /// Expected number of values.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A record's label index exceeded the number of classes.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Number of classes in the dataset.
        classes: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::WrongArity { expected, found } => {
                write!(f, "record has {found} values, expected {expected}")
            }
            DatasetError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// One labeled record: attribute values plus a class index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Attribute values, in dataset column order.
    pub values: Vec<f64>,
    /// Index into the dataset's class list.
    pub label: usize,
}

/// A labeled dataset with named continuous attributes and a categorical
/// target.
///
/// # Examples
///
/// ```
/// use smat_learn::Dataset;
///
/// let mut ds = Dataset::new(
///     vec!["x".into(), "y".into()],
///     vec!["A".into(), "B".into()],
/// );
/// ds.push(vec![1.0, 2.0], 0)?;
/// ds.push(vec![5.0, 1.0], 1)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.class_counts(), vec![1, 1]);
/// # Ok::<(), smat_learn::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    attributes: Vec<String>,
    classes: Vec<String>,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates an empty dataset with the given attribute and class names.
    ///
    /// # Panics
    ///
    /// Panics if `attributes` or `classes` is empty.
    pub fn new(attributes: Vec<String>, classes: Vec<String>) -> Self {
        assert!(!attributes.is_empty(), "at least one attribute required");
        assert!(!classes.is_empty(), "at least one class required");
        Self {
            attributes,
            classes,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WrongArity`] or [`DatasetError::BadLabel`]
    /// when the record does not match the schema.
    pub fn push(&mut self, values: Vec<f64>, label: usize) -> Result<(), DatasetError> {
        if values.len() != self.attributes.len() {
            return Err(DatasetError::WrongArity {
                expected: self.attributes.len(),
                found: values.len(),
            });
        }
        if label >= self.classes.len() {
            return Err(DatasetError::BadLabel {
                label,
                classes: self.classes.len(),
            });
        }
        self.records.push(Record { values, label });
        Ok(())
    }

    /// Attribute (column) names.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Class names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Records per class, indexed by class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes.len()];
        for r in &self.records {
            counts[r.label] += 1;
        }
        counts
    }

    /// The most frequent class (smallest index wins ties); `0` when
    /// empty.
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Creates an empty dataset with the same schema.
    pub fn like(&self) -> Self {
        Self {
            attributes: self.attributes.clone(),
            classes: self.classes.clone(),
            records: Vec::new(),
        }
    }

    /// Builds a dataset with the same schema from a subset of record
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut out = self.like();
        out.records = indices.iter().map(|&i| self.records[i].clone()).collect();
        out
    }

    /// Projects the dataset onto a subset of attribute columns (given by
    /// index), preserving labels — the paper's §3 claim that "it is also
    /// convenient to add or remove parameters from the learning model".
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or contains an out-of-range index.
    pub fn project(&self, keep: &[usize]) -> Self {
        assert!(!keep.is_empty(), "at least one attribute must be kept");
        for &k in keep {
            assert!(
                k < self.attributes.len(),
                "attribute index {k} out of range"
            );
        }
        Self {
            attributes: keep.iter().map(|&k| self.attributes[k].clone()).collect(),
            classes: self.classes.clone(),
            records: self
                .records
                .iter()
                .map(|r| Record {
                    values: keep.iter().map(|&k| r.values[k]).collect(),
                    label: r.label,
                })
                .collect(),
        }
    }

    /// Returns a copy with the given attribute columns set to a constant
    /// (0.0), so no split can use them, while keeping attribute indices
    /// stable. This is how a feature is "removed from the learning
    /// model" without invalidating rule indices at prediction time.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn neutralize(&self, attrs: &[usize]) -> Self {
        for &a in attrs {
            assert!(
                a < self.attributes.len(),
                "attribute index {a} out of range"
            );
        }
        let mut out = self.clone();
        for r in &mut out.records {
            for &a in attrs {
                r.values[a] = 0.0;
            }
        }
        out
    }

    /// Appends every record of `other` (which must have the same schema)
    /// — the paper's §3 claim that the database is "open to add new
    /// matrices and corresponding records ... to improve the prediction
    /// accuracy".
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WrongArity`] if the schemas differ in
    /// attribute count (attribute *names* are trusted to match).
    pub fn merge(&mut self, other: &Dataset) -> Result<(), DatasetError> {
        if other.attributes.len() != self.attributes.len() {
            return Err(DatasetError::WrongArity {
                expected: self.attributes.len(),
                found: other.attributes.len(),
            });
        }
        for r in &other.records {
            self.push(r.values.clone(), r.label)?;
        }
        Ok(())
    }

    /// Splits records into train/test partitions with a deterministic
    /// shuffle: `test_fraction` of records (rounded down) go to the test
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `[0, 1)`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Self, Self) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test_fraction must be in [0, 1)"
        );
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        shuffle(&mut order, seed);
        let n_test = (self.records.len() as f64 * test_fraction) as usize;
        let test = self.subset(&order[..n_test]);
        let train = self.subset(&order[n_test..]);
        (train, test)
    }

    /// Splits into `k` folds for cross-validation (deterministic
    /// shuffle); fold `i` is the i-th (test, train) pair.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len()`.
    pub fn folds(&self, k: usize, seed: u64) -> Vec<(Self, Self)> {
        assert!(k >= 2, "at least two folds required");
        assert!(k <= self.len(), "more folds than records");
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        shuffle(&mut order, seed);
        let mut out = Vec::with_capacity(k);
        for f in 0..k {
            let test_idx: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == f)
                .map(|(_, &r)| r)
                .collect();
            let train_idx: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != f)
                .map(|(_, &r)| r)
                .collect();
            out.push((self.subset(&test_idx), self.subset(&train_idx)));
        }
        out
    }
}

/// Deterministic Fisher–Yates shuffle driven by a splitmix64 stream (no
/// dependency on `rand` for the learner crate's core path).
fn shuffle(v: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(
            vec!["a".into(), "b".into()],
            vec!["X".into(), "Y".into(), "Z".into()],
        );
        for i in 0..12 {
            ds.push(vec![i as f64, (i * i) as f64], i % 3).unwrap();
        }
        ds
    }

    #[test]
    fn push_validates_schema() {
        let mut ds = toy();
        assert!(matches!(
            ds.push(vec![1.0], 0),
            Err(DatasetError::WrongArity { .. })
        ));
        assert!(matches!(
            ds.push(vec![1.0, 2.0], 3),
            Err(DatasetError::BadLabel { .. })
        ));
        assert_eq!(ds.len(), 12);
    }

    #[test]
    fn class_counts_and_majority() {
        let ds = toy();
        assert_eq!(ds.class_counts(), vec![4, 4, 4]);
        assert_eq!(ds.majority_class(), 0); // tie broken toward index 0

        let mut skew = ds.like();
        skew.push(vec![0.0, 0.0], 2).unwrap();
        skew.push(vec![0.0, 0.0], 2).unwrap();
        skew.push(vec![0.0, 0.0], 1).unwrap();
        assert_eq!(skew.majority_class(), 2);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let ds = toy();
        let (tr1, te1) = ds.split(0.25, 7);
        let (tr2, te2) = ds.split(0.25, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), ds.len());
        assert_eq!(te1.len(), 3);
        let (_, te3) = ds.split(0.25, 8);
        assert!(te1 != te3 || ds.len() < 4, "different seed, same split");
    }

    #[test]
    fn folds_partition_exactly() {
        let ds = toy();
        let folds = ds.folds(4, 3);
        assert_eq!(folds.len(), 4);
        let total: usize = folds.iter().map(|(te, _)| te.len()).sum();
        assert_eq!(total, ds.len());
        for (te, tr) in &folds {
            assert_eq!(te.len() + tr.len(), ds.len());
        }
    }

    #[test]
    fn subset_preserves_schema() {
        let ds = toy();
        let s = ds.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attributes(), ds.attributes());
        assert_eq!(s.records()[1], ds.records()[5]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_panics() {
        Dataset::new(vec![], vec!["X".into()]);
    }

    #[test]
    fn project_keeps_selected_columns() {
        let ds = toy();
        let p = ds.project(&[1]);
        assert_eq!(p.attributes(), &["b".to_string()]);
        assert_eq!(p.len(), ds.len());
        assert_eq!(p.records()[3].values, vec![9.0]);
        assert_eq!(p.records()[3].label, ds.records()[3].label);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn project_rejects_bad_index() {
        toy().project(&[5]);
    }

    #[test]
    fn merge_appends_matching_schema() {
        let mut a = toy();
        let b = toy();
        let n = a.len();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2 * n);
        assert_eq!(a.records()[n], b.records()[0]);

        let mut narrow = Dataset::new(vec!["x".into()], vec!["X".into(), "Y".into(), "Z".into()]);
        assert!(matches!(
            narrow.merge(&b),
            Err(DatasetError::WrongArity { .. })
        ));
        let _ = narrow;
    }

    #[test]
    fn neutralize_flattens_columns() {
        let ds = toy();
        let n = ds.neutralize(&[1]);
        assert!(n.records().iter().all(|r| r.values[1] == 0.0));
        // Column 0 untouched, labels untouched.
        assert_eq!(n.records()[5].values[0], ds.records()[5].values[0]);
        assert_eq!(n.records()[5].label, ds.records()[5].label);
        assert_eq!(n.attributes(), ds.attributes());
    }
}

//! Ruleset extraction from a decision tree, with per-rule confidence
//! factors.
//!
//! The paper chooses C5.0's *ruleset* output over the raw tree (§5.1):
//! rules are more accurate, convert naturally to IF-THEN sentences, and
//! carry a confidence factor — "the ratio of the number of correctly
//! classified matrices to the number of matrices falling in this rule".

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, Node, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of a rule condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `attribute <= threshold`.
    Le,
    /// `attribute > threshold`.
    Gt,
}

/// One conjunct of a rule: `attribute op threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Attribute (column) index.
    pub attr: usize,
    /// Comparison operator.
    pub op: Op,
    /// Threshold value.
    pub threshold: f64,
}

impl Condition {
    /// Whether an attribute vector satisfies this condition.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() <= self.attr`.
    pub fn matches(&self, values: &[f64]) -> bool {
        match self.op {
            Op::Le => values[self.attr] <= self.threshold,
            Op::Gt => values[self.attr] > self.threshold,
        }
    }
}

/// An IF-THEN rule with training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Conjunction of conditions (empty = always matches).
    pub conditions: Vec<Condition>,
    /// Predicted class.
    pub class: usize,
    /// Training records matching the conditions.
    pub covered: usize,
    /// Matching records whose label equals `class`.
    pub correct: usize,
}

impl Rule {
    /// Whether an attribute vector satisfies every condition.
    pub fn matches(&self, values: &[f64]) -> bool {
        self.conditions.iter().all(|c| c.matches(values))
    }

    /// The paper's confidence factor: `correct / covered` in `[0, 1]`
    /// (`0` for a rule that covers nothing).
    pub fn confidence(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.correct as f64 / self.covered as f64
        }
    }

    /// Laplace-corrected accuracy `(correct + 1) / (covered + 2)`, used
    /// internally for simplification decisions (robust on tiny covers).
    pub fn laplace(&self) -> f64 {
        (self.correct as f64 + 1.0) / (self.covered as f64 + 2.0)
    }

    /// Recomputes `covered`/`correct` against a dataset.
    pub fn recount(&mut self, ds: &Dataset) {
        self.covered = 0;
        self.correct = 0;
        for r in ds.iter() {
            if self.matches(&r.values) {
                self.covered += 1;
                if r.label == self.class {
                    self.correct += 1;
                }
            }
        }
    }
}

/// An ordered ruleset with a default class.
///
/// Classification is first-match-wins in rule order; the default class
/// answers when no rule matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Ordered rules.
    pub rules: Vec<Rule>,
    /// Class predicted when no rule matches.
    pub default_class: usize,
    /// Attribute names (for display).
    pub attributes: Vec<String>,
    /// Class names (for display).
    pub classes: Vec<String>,
}

impl RuleSet {
    /// Extracts one rule per root-to-leaf path of `tree`, simplifies each
    /// rule greedily against `ds`, drops duplicates and dead rules, and
    /// recounts statistics.
    ///
    /// # Panics
    ///
    /// Panics if `ds`'s schema does not match the tree's.
    pub fn from_tree(tree: &DecisionTree, ds: &Dataset) -> Self {
        assert_eq!(
            tree.attributes,
            ds.attributes(),
            "dataset schema must match the tree"
        );
        let mut rules = Vec::new();
        let mut path = Vec::new();
        extract(&tree.root, &mut path, &mut rules);
        for rule in &mut rules {
            normalize(rule);
            rule.recount(ds);
            simplify(rule, ds);
        }
        // Deduplicate (simplification can make paths collide) and drop
        // rules that no longer cover anything.
        let mut seen: Vec<Rule> = Vec::new();
        for r in rules {
            if r.covered > 0
                && !seen
                    .iter()
                    .any(|s| s.conditions == r.conditions && s.class == r.class)
            {
                seen.push(r);
            }
        }
        Self {
            rules: seen,
            default_class: ds.majority_class(),
            attributes: tree.attributes.clone(),
            classes: tree.classes.clone(),
        }
    }

    /// Classifies an attribute vector: returns the class and the index of
    /// the matching rule (`None` = default class used).
    pub fn classify(&self, values: &[f64]) -> (usize, Option<usize>) {
        for (i, r) in self.rules.iter().enumerate() {
            if r.matches(values) {
                return (r.class, Some(i));
            }
        }
        (self.default_class, None)
    }

    /// Fraction of `ds` classified correctly.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 1.0;
        }
        let correct = ds
            .iter()
            .filter(|r| self.classify(&r.values).0 == r.label)
            .count();
        correct as f64 / ds.len() as f64
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the ruleset is empty (classification falls through to the
    /// default class).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            write!(f, "Rule {:>2}: IF ", i + 1)?;
            if r.conditions.is_empty() {
                write!(f, "true")?;
            }
            for (k, c) in r.conditions.iter().enumerate() {
                if k > 0 {
                    write!(f, " AND ")?;
                }
                let op = match c.op {
                    Op::Le => "<=",
                    Op::Gt => ">",
                };
                write!(f, "{} {} {:.4}", self.attributes[c.attr], op, c.threshold)?;
            }
            writeln!(
                f,
                " THEN {}  (conf {:.2}, {}/{})",
                self.classes[r.class],
                r.confidence(),
                r.correct,
                r.covered
            )?;
        }
        writeln!(f, "Default: {}", self.classes[self.default_class])
    }
}

/// Collects root-to-leaf paths as rules (statistics filled later).
fn extract(node: &Node, path: &mut Vec<Condition>, out: &mut Vec<Rule>) {
    match &node.kind {
        NodeKind::Leaf { class } => out.push(Rule {
            conditions: path.clone(),
            class: *class,
            covered: 0,
            correct: 0,
        }),
        NodeKind::Split {
            attr,
            threshold,
            left,
            right,
        } => {
            path.push(Condition {
                attr: *attr,
                op: Op::Le,
                threshold: *threshold,
            });
            extract(left, path, out);
            path.pop();
            path.push(Condition {
                attr: *attr,
                op: Op::Gt,
                threshold: *threshold,
            });
            extract(right, path, out);
            path.pop();
        }
    }
}

/// Merges redundant conditions on the same attribute and operator,
/// keeping the tightest bound.
fn normalize(rule: &mut Rule) {
    let mut kept: Vec<Condition> = Vec::with_capacity(rule.conditions.len());
    for &c in &rule.conditions {
        if let Some(prev) = kept.iter_mut().find(|p| p.attr == c.attr && p.op == c.op) {
            prev.threshold = match c.op {
                Op::Le => prev.threshold.min(c.threshold),
                Op::Gt => prev.threshold.max(c.threshold),
            };
        } else {
            kept.push(c);
        }
    }
    rule.conditions = kept;
}

/// Greedy condition dropping: removes any condition whose removal does
/// not lower the rule's Laplace accuracy on the training data (C4.5rules'
/// simplification, with Laplace instead of the pessimistic test).
fn simplify(rule: &mut Rule, ds: &Dataset) {
    loop {
        let base = rule.laplace();
        let mut best: Option<(usize, f64, usize, usize)> = None;
        for i in 0..rule.conditions.len() {
            let mut candidate = rule.clone();
            candidate.conditions.remove(i);
            candidate.recount(ds);
            let l = candidate.laplace();
            if l >= base && best.is_none_or(|(_, bl, _, _)| l > bl) {
                best = Some((i, l, candidate.covered, candidate.correct));
            }
        }
        match best {
            Some((i, _, covered, correct)) => {
                rule.conditions.remove(i);
                rule.covered = covered;
                rule.correct = correct;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    fn two_band_dataset() -> Dataset {
        // class 0 iff x <= 10; y is noise.
        let mut ds = Dataset::new(vec!["x".into(), "y".into()], vec!["A".into(), "B".into()]);
        for i in 0..60 {
            let x = (i % 20) as f64;
            ds.push(vec![x, (i % 7) as f64], usize::from(x > 10.0))
                .unwrap();
        }
        ds
    }

    #[test]
    fn rules_reproduce_tree_predictions() {
        let ds = two_band_dataset();
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let rs = RuleSet::from_tree(&tree, &ds);
        assert!(rs.accuracy(&ds) >= tree.accuracy(&ds) - 1e-12);
        for r in ds.iter() {
            assert_eq!(rs.classify(&r.values).0, r.label);
        }
    }

    #[test]
    fn confidence_is_ratio_of_correct_to_covered() {
        let mut rule = Rule {
            conditions: vec![Condition {
                attr: 0,
                op: Op::Le,
                threshold: 10.0,
            }],
            class: 0,
            covered: 0,
            correct: 0,
        };
        let ds = two_band_dataset();
        rule.recount(&ds);
        assert!(rule.covered > 0);
        assert_eq!(rule.confidence(), 1.0);
        assert!(rule.laplace() < 1.0);

        let empty = Rule {
            conditions: vec![Condition {
                attr: 0,
                op: Op::Gt,
                threshold: 1e9,
            }],
            class: 0,
            covered: 0,
            correct: 0,
        };
        assert_eq!(empty.confidence(), 0.0);
    }

    #[test]
    fn normalize_merges_same_attr_conditions() {
        let mut rule = Rule {
            conditions: vec![
                Condition {
                    attr: 0,
                    op: Op::Le,
                    threshold: 10.0,
                },
                Condition {
                    attr: 0,
                    op: Op::Le,
                    threshold: 5.0,
                },
                Condition {
                    attr: 0,
                    op: Op::Gt,
                    threshold: 1.0,
                },
            ],
            class: 0,
            covered: 0,
            correct: 0,
        };
        normalize(&mut rule);
        assert_eq!(rule.conditions.len(), 2);
        assert_eq!(rule.conditions[0].threshold, 5.0);
        assert_eq!(rule.conditions[1].threshold, 1.0);
    }

    #[test]
    fn simplification_drops_noise_conditions() {
        // Build a rule with an irrelevant extra condition on y.
        let ds = two_band_dataset();
        let mut rule = Rule {
            conditions: vec![
                Condition {
                    attr: 0,
                    op: Op::Le,
                    threshold: 10.0,
                },
                Condition {
                    attr: 1,
                    op: Op::Le,
                    threshold: 6.5, // matches all y anyway
                },
            ],
            class: 0,
            covered: 0,
            correct: 0,
        };
        rule.recount(&ds);
        simplify(&mut rule, &ds);
        assert_eq!(rule.conditions.len(), 1, "noise condition must go");
        assert_eq!(rule.conditions[0].attr, 0);
    }

    #[test]
    fn default_class_answers_unmatched_inputs() {
        let ds = two_band_dataset();
        let rs = RuleSet {
            rules: vec![Rule {
                conditions: vec![Condition {
                    attr: 0,
                    op: Op::Gt,
                    threshold: 100.0,
                }],
                class: 1,
                covered: 1,
                correct: 1,
            }],
            default_class: 0,
            attributes: ds.attributes().to_vec(),
            classes: ds.classes().to_vec(),
        };
        let (class, rule) = rs.classify(&[5.0, 0.0]);
        assert_eq!(class, 0);
        assert!(rule.is_none());
    }

    #[test]
    fn display_renders_if_then() {
        let ds = two_band_dataset();
        let tree = DecisionTree::fit(&ds, TreeParams::default());
        let rs = RuleSet::from_tree(&tree, &ds);
        let text = rs.to_string();
        assert!(text.contains("IF"));
        assert!(text.contains("THEN"));
        assert!(text.contains("Default:"));
    }
}

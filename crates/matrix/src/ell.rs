//! ELLPACK (ELL) storage.
//!
//! ELL packs each row's nonzeros to the left and stores the result as a
//! dense `rows x max_row_degree` matrix in column-major order (Figure 2(d)
//! of the paper). It thrives when row degrees are uniform (`var_RD` small,
//! `ER_ELL` close to 1) and collapses when a single long row forces heavy
//! padding — the behavior SMAT's `max_RD`/`var_RD` features capture.

use crate::error::{MatrixError, Result};
use crate::{ConversionLimits, Csr, Scalar};
use serde::{Deserialize, Serialize};

/// Default cap on `max_RD * rows` (the dense ELL storage) as a multiple of
/// the source matrix's `nnz`; conversions above it are refused.
pub const DEFAULT_ELL_FILL_LIMIT: usize = 32;

/// A sparse matrix in ELLPACK format.
///
/// `data` and `indices` are `width * rows` column-major arrays: slot `p` of
/// row `r` lives at `p * rows + r`. Padding slots store `T::ZERO` with
/// column index `0`, which is harmless in the SpMV because the product is
/// zero (the paper's implementations do the same).
///
/// # Examples
///
/// ```
/// use smat_matrix::{Csr, Ell};
///
/// let csr = Csr::<f64>::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])?;
/// let ell = Ell::from_csr(&csr)?;
/// assert_eq!(ell.width(), 2); // max row degree
/// assert_eq!(ell.to_csr(), csr);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ell<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    width: usize,
    data: Vec<T>,
    indices: Vec<usize>,
}

impl<T: Scalar> Ell<T> {
    /// Converts a CSR matrix to ELL with the [default fill
    /// limit](DEFAULT_ELL_FILL_LIMIT).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when padding would
    /// exceed the limit.
    pub fn from_csr(csr: &Csr<T>) -> Result<Self> {
        Self::from_csr_with_limit(csr, DEFAULT_ELL_FILL_LIMIT)
    }

    /// Converts a CSR matrix to ELL, refusing if the dense storage would
    /// exceed `fill_limit * nnz` elements.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the bound is
    /// exceeded.
    pub fn from_csr_with_limit(csr: &Csr<T>, fill_limit: usize) -> Result<Self> {
        Self::from_csr_with(
            csr,
            &ConversionLimits {
                ell_fill_limit: fill_limit,
                ..ConversionLimits::unlimited()
            },
        )
    }

    /// Converts a CSR matrix to ELL under explicit [`ConversionLimits`]:
    /// the fill-ratio cap plus an optional hard byte budget, both checked
    /// from `max_RD` *before* the dense storage is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the fill
    /// limit is exceeded, or [`MatrixError::BudgetExceeded`] when the
    /// estimated allocation exceeds the byte budget.
    pub fn from_csr_with(csr: &Csr<T>, limits: &ConversionLimits) -> Result<Self> {
        let fill_limit = limits.ell_fill_limit;
        let rows = csr.rows();
        let width = (0..rows).map(|r| csr.row_degree(r)).max().unwrap_or(0);
        let dense = width.saturating_mul(rows);
        let budget = fill_limit.saturating_mul(csr.nnz().max(1));
        if dense > budget {
            return Err(MatrixError::ConversionTooExpensive {
                format: "ELL",
                would_store: dense,
                limit: budget,
            });
        }
        // Allocation estimate: dense value slots plus the parallel
        // column-index array.
        limits.check_bytes(
            "ELL",
            dense.saturating_mul(T::BYTES.saturating_add(std::mem::size_of::<usize>())),
        )?;
        let mut data = vec![T::ZERO; dense];
        let mut indices = vec![0usize; dense];
        for r in 0..rows {
            let (cols_r, vals_r) = csr.row(r);
            for (p, (&c, &v)) in cols_r.iter().zip(vals_r).enumerate() {
                data[p * rows + r] = v;
                indices[p * rows + r] = c;
            }
        }
        Ok(Self {
            rows,
            cols: csr.cols(),
            nnz: csr.nnz(),
            width,
            data,
            indices,
        })
    }

    /// Converts back to CSR, dropping padding.
    pub fn to_csr(&self) -> Csr<T> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            for p in 0..self.width {
                let v = self.data[p * self.rows + r];
                let c = self.indices[p * self.rows + r];
                if v != T::ZERO || (c != 0 && p > 0) {
                    // Padding is (ZERO, 0); a genuine stored zero at column 0
                    // in slot 0 is indistinguishable and dropped, which is
                    // acceptable: structure-only zeros do not affect SpMV.
                    if v != T::ZERO {
                        triplets.push((r, c, v));
                    }
                }
            }
        }
        Csr::from_triplets(self.rows, self.cols, &triplets)
            .expect("ell produces in-bounds triplets")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of logical nonzeros recorded at conversion time.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Packed width = maximum row degree (the paper's `max_RD`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column-major packed values.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Column-major packed column indices.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Fraction of stored slots that are true nonzeros (the paper's
    /// `ER_ELL = NNZ / (max_RD * M)`).
    pub fn fill_ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.data.len() as f64
    }

    /// Reference SpMV `y = A * x` following the paper's Figure 2(d)
    /// column-major loop.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on vector length
    /// mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "ell spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "ell spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        y.fill(T::ZERO);
        for p in 0..self.width {
            let col = &self.data[p * self.rows..(p + 1) * self.rows];
            let idx = &self.indices[p * self.rows..(p + 1) * self.rows];
            for r in 0..self.rows {
                y[r] += col[r] * x[idx[r]];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_csr() -> Csr<f64> {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_packing() {
        let ell = Ell::from_csr(&example_csr()).unwrap();
        assert_eq!(ell.width(), 3); // row 2 has 3 entries
        assert_eq!(ell.nnz(), 9);
        // First packed column holds each row's first nonzero.
        assert_eq!(&ell.data()[0..4], &[1.0, 2.0, 8.0, 9.0]);
        assert_eq!(&ell.indices()[0..4], &[0, 1, 0, 1]);
    }

    #[test]
    fn round_trip_csr() {
        let csr = example_csr();
        assert_eq!(Ell::from_csr(&csr).unwrap().to_csr(), csr);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = example_csr();
        let ell = Ell::from_csr(&csr).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [3.0; 4];
        csr.spmv(&x, &mut y1).unwrap();
        ell.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn fill_limit_refuses_skewed_matrices() {
        // One dense row among many empty-ish ones: max_RD * M huge vs nnz.
        let n = 256;
        let mut triplets: Vec<(usize, usize, f64)> = (0..n).map(|c| (0, c, 1.0)).collect();
        triplets.push((n - 1, 0, 1.0));
        let csr = Csr::from_triplets(n, n, &triplets).unwrap();
        let res = Ell::from_csr_with_limit(&csr, 4);
        assert!(matches!(
            res,
            Err(MatrixError::ConversionTooExpensive { format: "ELL", .. })
        ));
    }

    #[test]
    fn byte_budget_refuses_one_dense_row() {
        // One dense row forces max_RD = n: the estimated allocation is
        // n * n slots even though nnz is tiny.
        let n = 256;
        let mut triplets: Vec<(usize, usize, f64)> = (0..n).map(|c| (0, c, 1.0)).collect();
        triplets.push((n - 1, 0, 1.0));
        let csr = Csr::from_triplets(n, n, &triplets).unwrap();
        let limits = ConversionLimits {
            budget_bytes: Some(64 * 1024),
            ..ConversionLimits::unlimited()
        };
        assert!(matches!(
            Ell::from_csr_with(&csr, &limits),
            Err(MatrixError::BudgetExceeded { format: "ELL", .. })
        ));
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        let ell = Ell::from_csr(&example_csr()).unwrap();
        // 9 nonzeros in 3 * 4 = 12 slots.
        assert!((ell.fill_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn spmv_dimension_errors() {
        let ell = Ell::from_csr(&example_csr()).unwrap();
        let mut y = [0.0; 4];
        assert!(ell.spmv(&[0.0; 5], &mut y).is_err());
        assert!(ell.spmv(&[0.0; 4], &mut y[..2]).is_err());
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let csr = Csr::<f64>::from_triplets(3, 3, &[]).unwrap();
        let ell = Ell::from_csr(&csr).unwrap();
        assert_eq!(ell.width(), 0);
        let mut y = [5.0; 3];
        ell.spmv(&[1.0; 3], &mut y).unwrap();
        assert_eq!(y, [0.0; 3]);

        let csr = Csr::<f64>::from_triplets(3, 3, &[(1, 2, 4.0)]).unwrap();
        let ell = Ell::from_csr(&csr).unwrap();
        assert_eq!(ell.width(), 1);
        assert_eq!(ell.to_csr(), csr);
    }
}

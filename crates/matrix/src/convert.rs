//! The [`Format`] identifier and [`AnyMatrix`], a matrix stored in any
//! supported format (the paper's four basic ones plus the HYB extension).
//!
//! SMAT's runtime decides a format *per input matrix*; `AnyMatrix` is the
//! value that decision produces: the same logical matrix, physically stored
//! in whichever format the tuner picked.

use crate::bcsr::DEFAULT_BCSR_FILL_LIMIT;
use crate::dia::DEFAULT_DIA_FILL_LIMIT;
use crate::ell::DEFAULT_ELL_FILL_LIMIT;
use crate::error::Result;
use crate::{Bcsr, Coo, Csr, Dia, Ell, Hyb, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Caps applied to format conversions: the classic fill-ratio limits for
/// DIA/ELL plus an optional hard byte budget estimated *before* any
/// storage is allocated (from `Ndiags * rows` for DIA, `max_RD * rows`
/// for ELL, and the ELL/COO split sizes for HYB).
///
/// The byte budget is the resource-exhaustion guard: a pathological input
/// (one dense row, a near-random diagonal scatter) is refused with
/// [`crate::MatrixError::BudgetExceeded`] instead of being allowed to
/// exhaust memory mid-conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionLimits {
    /// Cap on DIA fill as a multiple of `nnz` (see
    /// [`DEFAULT_DIA_FILL_LIMIT`]).
    pub dia_fill_limit: usize,
    /// Cap on ELL fill as a multiple of `nnz` (see
    /// [`DEFAULT_ELL_FILL_LIMIT`]).
    pub ell_fill_limit: usize,
    /// Cap on BCSR stored block elements as a multiple of `nnz` (see
    /// [`DEFAULT_BCSR_FILL_LIMIT`]). Limits serialized before the BCSR
    /// tier fail to deserialize and fall back to the regenerate path
    /// (the vendored serde stub has no `#[serde(default)]`).
    pub bcsr_fill_limit: usize,
    /// Hard cap on the bytes a single conversion may allocate; `None`
    /// disables the check.
    pub budget_bytes: Option<usize>,
}

impl Default for ConversionLimits {
    fn default() -> Self {
        Self {
            dia_fill_limit: DEFAULT_DIA_FILL_LIMIT,
            ell_fill_limit: DEFAULT_ELL_FILL_LIMIT,
            bcsr_fill_limit: DEFAULT_BCSR_FILL_LIMIT,
            budget_bytes: None,
        }
    }
}

impl ConversionLimits {
    /// Limits with no byte budget and effectively no fill caps — every
    /// conversion that fits in memory is allowed.
    pub fn unlimited() -> Self {
        Self {
            dia_fill_limit: usize::MAX,
            ell_fill_limit: usize::MAX,
            bcsr_fill_limit: usize::MAX,
            budget_bytes: None,
        }
    }

    /// Checks an up-front allocation estimate against the byte budget.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MatrixError::BudgetExceeded`] when a budget is
    /// configured and `required_bytes` exceeds it.
    pub fn check_bytes(&self, format: &'static str, required_bytes: usize) -> Result<()> {
        if let Some(budget) = self.budget_bytes {
            if required_bytes > budget {
                return Err(crate::MatrixError::BudgetExceeded {
                    format,
                    required_bytes,
                    budget_bytes: budget,
                });
            }
        }
        Ok(())
    }
}

/// A storage format SMAT tunes over: the paper's four basic formats
/// plus the [`Hyb`] extension (see that type's docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Format {
    /// DIAgonal format.
    Dia,
    /// ELLPACK format.
    Ell,
    /// Compressed sparse row — the default/unified interface format.
    Csr,
    /// COOrdinate format.
    Coo,
    /// Hybrid ELL+COO — the extension format demonstrating the paper's
    /// "add new formats" claim.
    Hyb,
    /// Block CSR with 2x2 register blocks.
    Bcsr2,
    /// Block CSR with 4x4 register blocks.
    Bcsr4,
}

impl Format {
    /// Number of formats.
    pub const COUNT: usize = 7;

    /// The paper's four basic formats, in rule-group evaluation order
    /// (§6): DIA first because it wins by the largest margin when
    /// applicable, ELL next for its regular behavior, CSR third because
    /// its features are already computed, COO last.
    pub const BASIC: [Format; 4] = [Format::Dia, Format::Ell, Format::Csr, Format::Coo];

    /// All formats, in [`Format::index`] order.
    pub const ALL: [Format; Format::COUNT] = [
        Format::Dia,
        Format::Ell,
        Format::Csr,
        Format::Coo,
        Format::Hyb,
        Format::Bcsr2,
        Format::Bcsr4,
    ];

    /// Short uppercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Format::Dia => "DIA",
            Format::Ell => "ELL",
            Format::Csr => "CSR",
            Format::Coo => "COO",
            Format::Hyb => "HYB",
            Format::Bcsr2 => "BCSR2",
            Format::Bcsr4 => "BCSR4",
        }
    }

    /// Stable small integer id (useful as an array index).
    pub fn index(self) -> usize {
        match self {
            Format::Dia => 0,
            Format::Ell => 1,
            Format::Csr => 2,
            Format::Coo => 3,
            Format::Hyb => 4,
            Format::Bcsr2 => 5,
            Format::Bcsr4 => 6,
        }
    }

    /// Inverse of [`Format::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= Format::COUNT`.
    pub fn from_index(i: usize) -> Self {
        Format::ALL[i]
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Format`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError(pub String);

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sparse format {:?}", self.0)
    }
}

impl std::error::Error for ParseFormatError {}

impl FromStr for Format {
    type Err = ParseFormatError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "DIA" => Ok(Format::Dia),
            "ELL" => Ok(Format::Ell),
            "CSR" => Ok(Format::Csr),
            "COO" => Ok(Format::Coo),
            "HYB" => Ok(Format::Hyb),
            "BCSR2" => Ok(Format::Bcsr2),
            "BCSR4" => Ok(Format::Bcsr4),
            _ => Err(ParseFormatError(s.to_string())),
        }
    }
}

/// A sparse matrix stored in any one of the supported formats.
///
/// # Examples
///
/// ```
/// use smat_matrix::{AnyMatrix, Csr, Format};
///
/// let csr = Csr::<f64>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)])?;
/// let any = AnyMatrix::convert_from_csr(&csr, Format::Dia)?;
/// assert_eq!(any.format(), Format::Dia);
/// let mut y = [0.0; 2];
/// any.spmv(&[3.0, 4.0], &mut y)?;
/// assert_eq!(y, [3.0, 8.0]);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMatrix<T> {
    /// DIA-stored matrix.
    Dia(Dia<T>),
    /// ELL-stored matrix.
    Ell(Ell<T>),
    /// CSR-stored matrix.
    Csr(Csr<T>),
    /// COO-stored matrix.
    Coo(Coo<T>),
    /// HYB-stored matrix.
    Hyb(Hyb<T>),
    /// 2x2 block-CSR-stored matrix.
    Bcsr2(Bcsr<T>),
    /// 4x4 block-CSR-stored matrix.
    Bcsr4(Bcsr<T>),
}

impl<T: Scalar> AnyMatrix<T> {
    /// Converts a CSR matrix into the requested physical format.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MatrixError::ConversionTooExpensive`] from the
    /// DIA/ELL converters when zero fill would blow up.
    pub fn convert_from_csr(csr: &Csr<T>, format: Format) -> Result<Self> {
        Self::convert_from_csr_with(csr, format, &ConversionLimits::default())
    }

    /// Converts a CSR matrix into the requested physical format under
    /// explicit [`ConversionLimits`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::MatrixError::ConversionTooExpensive`] when a
    /// DIA/ELL fill limit is exceeded, or
    /// [`crate::MatrixError::BudgetExceeded`] when the estimated
    /// allocation exceeds the byte budget.
    pub fn convert_from_csr_with(
        csr: &Csr<T>,
        format: Format,
        limits: &ConversionLimits,
    ) -> Result<Self> {
        // Failpoint `convert.alloc`: scripted allocation refusal ahead
        // of the format match, so every target (including the CSR
        // clone) can be made to fail like an exhausted allocator.
        if let Some(fault) = smat_failpoints::check("convert.alloc") {
            return Err(crate::MatrixError::InvalidStructure(fault.to_string()));
        }
        Ok(match format {
            Format::Dia => AnyMatrix::Dia(Dia::from_csr_with(csr, limits)?),
            Format::Ell => AnyMatrix::Ell(Ell::from_csr_with(csr, limits)?),
            Format::Csr => AnyMatrix::Csr(csr.clone()),
            Format::Coo => AnyMatrix::Coo(Coo::from_csr(csr)),
            Format::Hyb => AnyMatrix::Hyb(Hyb::from_csr_with(csr, limits)?),
            Format::Bcsr2 => AnyMatrix::Bcsr2(Bcsr::from_csr_with(csr, 2, 2, limits)?),
            Format::Bcsr4 => AnyMatrix::Bcsr4(Bcsr::from_csr_with(csr, 4, 4, limits)?),
        })
    }

    /// Which format this matrix is physically stored in.
    pub fn format(&self) -> Format {
        match self {
            AnyMatrix::Dia(_) => Format::Dia,
            AnyMatrix::Ell(_) => Format::Ell,
            AnyMatrix::Csr(_) => Format::Csr,
            AnyMatrix::Coo(_) => Format::Coo,
            AnyMatrix::Hyb(_) => Format::Hyb,
            AnyMatrix::Bcsr2(_) => Format::Bcsr2,
            AnyMatrix::Bcsr4(_) => Format::Bcsr4,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            AnyMatrix::Dia(m) => m.rows(),
            AnyMatrix::Ell(m) => m.rows(),
            AnyMatrix::Csr(m) => m.rows(),
            AnyMatrix::Coo(m) => m.rows(),
            AnyMatrix::Hyb(m) => m.rows(),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            AnyMatrix::Dia(m) => m.cols(),
            AnyMatrix::Ell(m) => m.cols(),
            AnyMatrix::Csr(m) => m.cols(),
            AnyMatrix::Coo(m) => m.cols(),
            AnyMatrix::Hyb(m) => m.cols(),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => m.cols(),
        }
    }

    /// Number of logical nonzeros.
    pub fn nnz(&self) -> usize {
        match self {
            AnyMatrix::Dia(m) => m.nnz(),
            AnyMatrix::Ell(m) => m.nnz(),
            AnyMatrix::Csr(m) => m.nnz(),
            AnyMatrix::Coo(m) => m.nnz(),
            AnyMatrix::Hyb(m) => m.nnz(),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => m.nnz(),
        }
    }

    /// Converts (back) to CSR regardless of current format.
    pub fn to_csr(&self) -> Csr<T> {
        match self {
            AnyMatrix::Dia(m) => m.to_csr(),
            AnyMatrix::Ell(m) => m.to_csr(),
            AnyMatrix::Csr(m) => m.clone(),
            AnyMatrix::Coo(m) => m.to_csr(),
            AnyMatrix::Hyb(m) => m.to_csr(),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => m.to_csr(),
        }
    }

    /// Reference SpMV in whatever format the matrix is stored.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MatrixError::DimensionMismatch`] on vector length
    /// mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        match self {
            AnyMatrix::Dia(m) => m.spmv(x, y),
            AnyMatrix::Ell(m) => m.spmv(x, y),
            AnyMatrix::Csr(m) => m.spmv(x, y),
            AnyMatrix::Coo(m) => m.spmv(x, y),
            AnyMatrix::Hyb(m) => m.spmv(x, y),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => m.spmv(x, y),
        }
    }
}

impl<T: Scalar> From<Csr<T>> for AnyMatrix<T> {
    fn from(m: Csr<T>) -> Self {
        AnyMatrix::Csr(m)
    }
}

impl<T: Scalar> From<Coo<T>> for AnyMatrix<T> {
    fn from(m: Coo<T>) -> Self {
        AnyMatrix::Coo(m)
    }
}

impl<T: Scalar> From<Dia<T>> for AnyMatrix<T> {
    fn from(m: Dia<T>) -> Self {
        AnyMatrix::Dia(m)
    }
}

impl<T: Scalar> From<Ell<T>> for AnyMatrix<T> {
    fn from(m: Ell<T>) -> Self {
        AnyMatrix::Ell(m)
    }
}

impl<T: Scalar> From<Hyb<T>> for AnyMatrix<T> {
    fn from(m: Hyb<T>) -> Self {
        AnyMatrix::Hyb(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr<f64> {
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn format_names_round_trip() {
        for f in Format::ALL {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
            assert_eq!(Format::from_index(f.index()), f);
        }
        assert!("BCSR".parse::<Format>().is_err());
        assert_eq!("csr".parse::<Format>().unwrap(), Format::Csr);
    }

    #[test]
    fn order_matches_paper_rule_groups() {
        assert_eq!(
            Format::BASIC,
            [Format::Dia, Format::Ell, Format::Csr, Format::Coo]
        );
        assert_eq!(Format::ALL.len(), Format::COUNT);
        assert_eq!(Format::from_index(4), Format::Hyb);
        assert_eq!(Format::from_index(5), Format::Bcsr2);
        assert_eq!(Format::from_index(6), Format::Bcsr4);
        assert_eq!("hyb".parse::<Format>().unwrap(), Format::Hyb);
        assert_eq!("bcsr2".parse::<Format>().unwrap(), Format::Bcsr2);
    }

    #[test]
    fn all_conversions_preserve_matrix() {
        let csr = example();
        for f in Format::ALL {
            let any = AnyMatrix::convert_from_csr(&csr, f).unwrap();
            assert_eq!(any.format(), f);
            assert_eq!(any.rows(), 3);
            assert_eq!(any.cols(), 3);
            assert_eq!(any.nnz(), 5);
            assert_eq!(any.to_csr(), csr, "round trip via {f}");
        }
    }

    #[test]
    fn spmv_agrees_across_formats() {
        let csr = example();
        let x = [1.0, 2.0, 3.0];
        let mut expect = [0.0; 3];
        csr.spmv(&x, &mut expect).unwrap();
        for f in Format::ALL {
            let any = AnyMatrix::convert_from_csr(&csr, f).unwrap();
            let mut y = [42.0; 3];
            any.spmv(&x, &mut y).unwrap();
            assert_eq!(y, expect, "spmv via {f}");
        }
    }

    #[test]
    fn limits_gate_conversions_per_format() {
        let csr = example();
        let tight = ConversionLimits {
            budget_bytes: Some(8),
            ..ConversionLimits::unlimited()
        };
        // CSR and COO are never converted through the budget estimator:
        // CSR is a clone of the input, COO is the same size as the input.
        assert!(AnyMatrix::convert_from_csr_with(&csr, Format::Csr, &tight).is_ok());
        assert!(AnyMatrix::convert_from_csr_with(&csr, Format::Coo, &tight).is_ok());
        for f in [
            Format::Dia,
            Format::Ell,
            Format::Hyb,
            Format::Bcsr2,
            Format::Bcsr4,
        ] {
            assert!(
                matches!(
                    AnyMatrix::convert_from_csr_with(&csr, f, &tight),
                    Err(crate::MatrixError::BudgetExceeded { .. })
                ),
                "{f} must refuse an 8-byte budget"
            );
        }
        assert_eq!(
            AnyMatrix::convert_from_csr_with(&csr, Format::Dia, &ConversionLimits::default())
                .unwrap(),
            AnyMatrix::convert_from_csr(&csr, Format::Dia).unwrap()
        );
    }

    #[test]
    fn from_impls() {
        let csr = example();
        let any: AnyMatrix<f64> = csr.clone().into();
        assert_eq!(any.format(), Format::Csr);
        let any: AnyMatrix<f64> = Coo::from_csr(&csr).into();
        assert_eq!(any.format(), Format::Coo);
        let any: AnyMatrix<f64> = Dia::from_csr(&csr).unwrap().into();
        assert_eq!(any.format(), Format::Dia);
        let any: AnyMatrix<f64> = Ell::from_csr(&csr).unwrap().into();
        assert_eq!(any.format(), Format::Ell);
        let any: AnyMatrix<f64> = Hyb::from_csr(&csr).into();
        assert_eq!(any.format(), Format::Hyb);
    }
}

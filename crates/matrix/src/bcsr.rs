//! Block Compressed Sparse Row (BCSR) storage.
//!
//! BCSR groups the matrix into dense `br x bc` register blocks and stores
//! one column index per *block* instead of per nonzero (the classic
//! register-blocking transform of Im & Yelick's Sparsity and OSKI, which
//! the paper's related-work section cites as the blocked tier of an
//! auto-tuned SpMV library). Matrices whose nonzeros cluster into small
//! dense tiles — FEM discretizations, multi-dof PDE systems — trade a
//! little zero fill for shorter index streams and register-resident
//! accumulators.
//!
//! The fill trade-off is the same one DIA and ELL face, so conversion is
//! gated by the same [`ConversionLimits`] machinery: a fill-ratio cap
//! ([`DEFAULT_BCSR_FILL_LIMIT`]) refuses hopelessly scattered patterns,
//! and the optional byte budget is checked from the block count *before*
//! the dense block storage is allocated.

use crate::error::{MatrixError, Result};
use crate::{ConversionLimits, Csr, Scalar};
use serde::{Deserialize, Serialize};

/// Default cap on stored block elements (`blocks * br * bc`) as a
/// multiple of the source matrix's `nnz`.
///
/// A conversion that would store more than `DEFAULT_BCSR_FILL_LIMIT *
/// nnz` elements (i.e. more than ~75% explicit-zero fill at the default
/// of 4) is refused: such a pattern has no dense block structure and the
/// blocked kernels would only amplify memory traffic.
pub const DEFAULT_BCSR_FILL_LIMIT: usize = 4;

/// A sparse matrix in Block CSR format with `br x bc` dense blocks.
///
/// `block_ptr`/`block_col` form a CSR structure over *blocks*: block row
/// `b` owns blocks `block_ptr[b]..block_ptr[b + 1]`, and block `k` covers
/// matrix columns `block_col[k] * bc ..`. Each block's values are stored
/// row-major in `values[k * br * bc ..][i * bc + j]`, zero-filled where
/// the source matrix has no entry. Edge blocks past the matrix bounds
/// are padded with zeros; `nnz` counts only the source nonzeros.
///
/// # Examples
///
/// ```
/// use smat_matrix::{Bcsr, Csr};
///
/// // A 4x4 matrix of two dense 2x2 tiles on the diagonal.
/// let csr = Csr::<f64>::from_triplets(
///     4,
///     4,
///     &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0),
///       (2, 2, 5.0), (2, 3, 6.0), (3, 2, 7.0), (3, 3, 8.0)],
/// )?;
/// let bcsr = Bcsr::from_csr(&csr, 2, 2)?;
/// assert_eq!(bcsr.block_count(), 2); // zero fill-in: perfect blocking
/// assert_eq!(bcsr.to_csr(), csr);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bcsr<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    br: usize,
    bc: usize,
    block_ptr: Vec<usize>,
    block_col: Vec<usize>,
    values: Vec<T>,
}

/// Conversion-refusal label for a block size (the error taxonomy wants a
/// `&'static str`).
fn format_name(br: usize, bc: usize) -> &'static str {
    match (br, bc) {
        (2, 2) => "BCSR2",
        (4, 4) => "BCSR4",
        _ => "BCSR",
    }
}

impl<T: Scalar> Bcsr<T> {
    /// Converts a CSR matrix to `br x bc` BCSR with the [default fill
    /// limit](DEFAULT_BCSR_FILL_LIMIT).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the stored
    /// block elements would exceed `DEFAULT_BCSR_FILL_LIMIT * nnz`.
    ///
    /// # Panics
    ///
    /// Panics if `br` or `bc` is zero or greater than 8 (the kernels
    /// keep one accumulator register per block row).
    pub fn from_csr(csr: &Csr<T>, br: usize, bc: usize) -> Result<Self> {
        Self::from_csr_with(csr, br, bc, &ConversionLimits::default())
    }

    /// Converts a CSR matrix to `br x bc` BCSR under explicit
    /// [`ConversionLimits`]: the fill-ratio cap plus an optional hard
    /// byte budget, both checked from the block count *before* the dense
    /// block storage is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the fill
    /// limit is exceeded, or [`MatrixError::BudgetExceeded`] when the
    /// estimated allocation exceeds the byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `br` or `bc` is zero or greater than 8.
    pub fn from_csr_with(
        csr: &Csr<T>,
        br: usize,
        bc: usize,
        limits: &ConversionLimits,
    ) -> Result<Self> {
        assert!(
            (1..=8).contains(&br) && (1..=8).contains(&bc),
            "block dimensions must be in 1..=8"
        );
        let name = format_name(br, bc);
        let rows = csr.rows();
        let cols = csr.cols();
        let block_rows = rows.div_ceil(br);
        // First pass: the distinct block columns of every block row. The
        // per-row column lists are already sorted, so a merge + dedup
        // gives sorted block columns without hashing.
        let mut block_ptr = Vec::with_capacity(block_rows + 1);
        block_ptr.push(0usize);
        let mut block_col: Vec<usize> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for b in 0..block_rows {
            scratch.clear();
            for r in b * br..((b + 1) * br).min(rows) {
                let (idx, _) = csr.row(r);
                scratch.extend(idx.iter().map(|&c| c / bc));
            }
            scratch.sort_unstable();
            scratch.dedup();
            block_col.extend_from_slice(&scratch);
            block_ptr.push(block_col.len());
        }
        let stored = block_col.len().saturating_mul(br * bc);
        let budget = limits.bcsr_fill_limit.saturating_mul(csr.nnz().max(1));
        if stored > budget {
            return Err(MatrixError::ConversionTooExpensive {
                format: name,
                would_store: stored,
                limit: budget,
            });
        }
        // Allocation estimate: the dense block values plus both index
        // arrays, checked before `values` is allocated.
        limits.check_bytes(
            name,
            stored.saturating_mul(T::BYTES).saturating_add(
                (block_col.len() + block_ptr.len()).saturating_mul(std::mem::size_of::<usize>()),
            ),
        )?;
        // Fill pass: scatter each entry into its block slot, located by
        // binary search within the (sorted) block row.
        let mut values = vec![T::ZERO; stored];
        for (r, c, v) in csr.iter() {
            let b = r / br;
            let row_blocks = &block_col[block_ptr[b]..block_ptr[b + 1]];
            // The block exists by construction of the first pass.
            let k = block_ptr[b]
                + row_blocks
                    .binary_search(&(c / bc))
                    .expect("block recorded in first pass");
            values[k * br * bc + (r % br) * bc + (c % bc)] = v;
        }
        Ok(Self {
            rows,
            cols,
            nnz: csr.nnz(),
            br,
            bc,
            block_ptr,
            block_col,
            values,
        })
    }

    /// Number of matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of nonzeros in the *source* matrix (explicit block fill
    /// zeros are not counted).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block row height.
    pub fn br(&self) -> usize {
        self.br
    }

    /// Block column width.
    pub fn bc(&self) -> usize {
        self.bc
    }

    /// Number of block rows (`ceil(rows / br)`).
    pub fn block_rows(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Total number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.block_col.len()
    }

    /// Block-row pointer array (length `block_rows() + 1`).
    pub fn block_ptr(&self) -> &[usize] {
        &self.block_ptr
    }

    /// Block column index per stored block.
    pub fn block_col(&self) -> &[usize] {
        &self.block_col
    }

    /// Dense block storage, row-major within each `br x bc` block.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Fraction of stored block elements that are explicit zero fill.
    pub fn fill_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.values.len() as f64
    }

    /// Converts back to CSR, dropping the explicit zero fill so a
    /// round trip through BCSR reproduces the source matrix exactly.
    pub fn to_csr(&self) -> Csr<T> {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.rows {
            let b = r / self.br;
            let i = r % self.br;
            for k in self.block_ptr[b]..self.block_ptr[b + 1] {
                let c0 = self.block_col[k] * self.bc;
                let blk = &self.values[k * self.br * self.bc..];
                for j in 0..self.bc.min(self.cols - c0.min(self.cols)) {
                    let v = blk[i * self.bc + j];
                    if v != T::ZERO {
                        col_idx.push(c0 + j);
                        vals.push(v);
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(self.rows, self.cols, row_ptr, col_idx, vals)
    }

    /// Sparse matrix-vector product `y = A * x` (serial reference; the
    /// tuned kernels live in `smat-kernels`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when `x` or `y` has
    /// the wrong length.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        for b in 0..self.block_rows() {
            let r0 = b * self.br;
            let rn = self.br.min(self.rows - r0);
            let mut acc = [T::ZERO; 8];
            for k in self.block_ptr[b]..self.block_ptr[b + 1] {
                let c0 = self.block_col[k] * self.bc;
                let cn = self.bc.min(self.cols - c0);
                let blk = &self.values[k * self.br * self.bc..];
                for (i, a) in acc.iter_mut().enumerate().take(rn) {
                    for j in 0..cn {
                        *a += blk[i * self.bc + j] * x[c0 + j];
                    }
                }
            }
            y[r0..r0 + rn].copy_from_slice(&acc[..rn]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{power_law, random_skewed};
    use crate::utils::max_abs_diff;

    fn dense_block_example() -> Csr<f64> {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
                (3, 2, 7.0),
                (3, 3, 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn perfect_blocks_have_zero_fill() {
        let csr = dense_block_example();
        let b = Bcsr::from_csr(&csr, 2, 2).unwrap();
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.fill_ratio(), 0.0);
        assert_eq!(b.to_csr(), csr);
    }

    #[test]
    fn round_trips_irregular_shapes() {
        for csr in [
            power_law::<f64>(37, 23, 1.8, 3),
            random_skewed::<f64>(5, 61, 4, 0.1, 7, 2),
            Csr::<f64>::from_triplets(1, 9, &[(0, 8, 2.5)]).unwrap(),
            Csr::<f64>::from_triplets(9, 1, &[(8, 0, 2.5)]).unwrap(),
            Csr::<f64>::from_triplets(3, 3, &[]).unwrap(),
        ] {
            for (br, bc) in [(2, 2), (4, 4), (3, 2)] {
                let b = Bcsr::from_csr_with(&csr, br, bc, &ConversionLimits::unlimited()).unwrap();
                assert_eq!(b.to_csr(), csr, "{br}x{bc} round trip");
                assert_eq!(b.nnz(), csr.nnz());
            }
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = power_law::<f64>(64, 40, 1.7, 9);
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut expect = vec![0.0; csr.rows()];
        csr.spmv(&x, &mut expect).unwrap();
        for (br, bc) in [(2, 2), (4, 4)] {
            let b = Bcsr::from_csr_with(&csr, br, bc, &ConversionLimits::unlimited()).unwrap();
            let mut y = vec![f64::NAN; csr.rows()];
            b.spmv(&x, &mut y).unwrap();
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{br}x{bc}");
        }
    }

    #[test]
    fn fill_limit_refuses_scattered_patterns() {
        // A scattered permutation blocks terribly at 4x4: every nonzero
        // gets its own block, 16x fill.
        let scatter: Vec<(usize, usize, f64)> = (0..32).map(|i| (i, (i * 7) % 32, 1.0)).collect();
        let csr = Csr::from_triplets(32, 32, &scatter).unwrap();
        let err = Bcsr::from_csr(&csr, 4, 4).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::ConversionTooExpensive {
                format: "BCSR4",
                ..
            }
        ));
    }

    #[test]
    fn byte_budget_checked_before_fill_pass() {
        let csr = dense_block_example();
        let limits = ConversionLimits {
            budget_bytes: Some(8),
            ..ConversionLimits::unlimited()
        };
        let err = Bcsr::from_csr_with(&csr, 2, 2, &limits).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::BudgetExceeded {
                format: "BCSR2",
                ..
            }
        ));
    }
}

//! Dense vector helpers shared by kernels, solvers and benchmarks.

use crate::Scalar;

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot of different lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2<T: Scalar>(a: &[T]) -> T {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy of different lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the "xpay" update used by CG).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xpay<T: Scalar>(x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "xpay of different lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Maximum absolute difference between two vectors — the comparison metric
/// used to validate optimized kernels against reference SpMV.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_diff<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "comparing different lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs().to_f64())
        .fold(0.0, f64::max)
}

/// Relative L2 error `||a - b|| / max(||b||, eps)`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn rel_error<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "comparing different lengths");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = (x - y).to_f64();
        num += d * d;
        den += y.to_f64() * y.to_f64();
    }
    (num.sqrt()) / den.sqrt().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0f64, 4.0]), 5.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = [1.0f64, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn xpay_updates_in_place() {
        let mut y = [1.0f64, 2.0];
        xpay(&[10.0, 20.0], 0.5, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn error_metrics() {
        assert_eq!(max_abs_diff(&[1.0f64, 2.0], &[1.0, 2.5]), 0.5);
        assert!(rel_error(&[1.0f64, 0.0], &[1.0, 0.0]) < 1e-15);
        assert!(rel_error(&[2.0f64], &[1.0]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "dot of different lengths")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0f64], &[1.0, 2.0]);
    }
}

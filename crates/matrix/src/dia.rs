//! DIAgonal (DIA) storage.
//!
//! DIA stores dense diagonals (Figure 2(c) of the paper). Its strength is
//! fully regular access to the `x` vector; its weakness is zero fill when
//! occupied diagonals are only sparsely populated. SMAT's feature
//! parameters `Ndiags`, `NTdiags_ratio` and `ER_DIA` quantify exactly this
//! trade-off.

use crate::error::{MatrixError, Result};
use crate::{ConversionLimits, Csr, Scalar};
use serde::{Deserialize, Serialize};

/// Default cap on `Ndiags * rows` (the dense storage a DIA conversion
/// allocates) as a multiple of the source matrix's `nnz`.
///
/// The paper's Figure 1 caption observes DIA degrades at coarse AMG levels
/// "due to high zero-filling ratio"; a conversion whose fill would exceed
/// this factor is refused rather than allowed to exhaust memory.
pub const DEFAULT_DIA_FILL_LIMIT: usize = 32;

/// A sparse matrix in DIAgonal format.
///
/// `offsets[d]` is the diagonal's offset from the principal diagonal
/// (negative = below). `data` is laid out diagonal-major with stride
/// `rows`: element `(r, r + offsets[d])` lives at `data[d * rows + r]`,
/// matching the paper's indexing `data[Istart + i * stride + n]`.
///
/// # Examples
///
/// ```
/// use smat_matrix::{Csr, Dia};
///
/// // Tridiagonal 4x4.
/// let csr = Csr::<f64>::from_triplets(
///     4,
///     4,
///     &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
///       (2, 1, -1.0), (2, 2, 2.0), (2, 3, -1.0), (3, 2, -1.0), (3, 3, 2.0)],
/// )?;
/// let dia = Dia::from_csr(&csr)?;
/// assert_eq!(dia.offsets(), &[-1, 0, 1]);
/// assert_eq!(dia.to_csr(), csr);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dia<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    offsets: Vec<isize>,
    data: Vec<T>,
}

impl<T: Scalar> Dia<T> {
    /// Converts a CSR matrix to DIA with the [default fill
    /// limit](DEFAULT_DIA_FILL_LIMIT).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the dense
    /// diagonal storage would exceed `DEFAULT_DIA_FILL_LIMIT * nnz`
    /// elements.
    pub fn from_csr(csr: &Csr<T>) -> Result<Self> {
        Self::from_csr_with_limit(csr, DEFAULT_DIA_FILL_LIMIT)
    }

    /// Converts a CSR matrix to DIA, refusing if the dense storage would
    /// exceed `fill_limit * nnz` elements.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the bound is
    /// exceeded.
    pub fn from_csr_with_limit(csr: &Csr<T>, fill_limit: usize) -> Result<Self> {
        Self::from_csr_with(
            csr,
            &ConversionLimits {
                dia_fill_limit: fill_limit,
                ..ConversionLimits::unlimited()
            },
        )
    }

    /// Converts a CSR matrix to DIA under explicit [`ConversionLimits`]:
    /// the fill-ratio cap plus an optional hard byte budget, both checked
    /// from `Ndiags` *before* the dense storage is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ConversionTooExpensive`] when the fill
    /// limit is exceeded, or [`MatrixError::BudgetExceeded`] when the
    /// estimated allocation exceeds the byte budget.
    pub fn from_csr_with(csr: &Csr<T>, limits: &ConversionLimits) -> Result<Self> {
        let fill_limit = limits.dia_fill_limit;
        let rows = csr.rows();
        let cols = csr.cols();
        // First pass: which diagonals are occupied?
        let diag_span = rows + cols; // offsets range over (-rows, cols)
        let mut occupied = vec![false; diag_span.max(1)];
        for (r, c, _) in csr.iter() {
            occupied[(c as isize - r as isize + rows as isize - 1) as usize] = true;
        }
        let offsets: Vec<isize> = occupied
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o)
            .map(|(i, _)| i as isize - rows as isize + 1)
            .collect();
        let dense = offsets.len().saturating_mul(rows);
        let budget = fill_limit.saturating_mul(csr.nnz().max(1));
        if dense > budget {
            return Err(MatrixError::ConversionTooExpensive {
                format: "DIA",
                would_store: dense,
                limit: budget,
            });
        }
        // Allocation estimate: the dense value array plus the offsets.
        limits.check_bytes(
            "DIA",
            dense
                .saturating_mul(T::BYTES)
                .saturating_add(offsets.len().saturating_mul(std::mem::size_of::<isize>())),
        )?;
        // Map offset -> slot for the fill pass.
        let mut slot = vec![usize::MAX; diag_span.max(1)];
        for (d, &off) in offsets.iter().enumerate() {
            slot[(off + rows as isize - 1) as usize] = d;
        }
        let mut data = vec![T::ZERO; dense];
        for (r, c, v) in csr.iter() {
            let d = slot[(c as isize - r as isize + rows as isize - 1) as usize];
            data[d * rows + r] = v;
        }
        Ok(Self {
            rows,
            cols,
            nnz: csr.nnz(),
            offsets,
            data,
        })
    }

    /// Converts back to CSR, dropping the zero fill.
    pub fn to_csr(&self) -> Csr<T> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for (d, &off) in self.offsets.iter().enumerate() {
            for r in 0..self.rows {
                let c = r as isize + off;
                if c < 0 || c >= self.cols as isize {
                    continue;
                }
                let v = self.data[d * self.rows + r];
                if v != T::ZERO {
                    triplets.push((r, c as usize, v));
                }
            }
        }
        Csr::from_triplets(self.rows, self.cols, &triplets)
            .expect("dia produces in-bounds triplets")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of *logical* nonzeros (excluding zero fill), as recorded at
    /// conversion time.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored diagonals (the paper's `Ndiags`).
    #[inline]
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// Offsets of the stored diagonals from the principal one.
    #[inline]
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// The dense diagonal storage (diagonal-major, stride = `rows`).
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Fraction of stored elements that are true nonzeros (the paper's
    /// `ER_DIA = NNZ / (Ndiags * M)`).
    pub fn fill_ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.data.len() as f64
    }

    /// Reference SpMV `y = A * x` following the paper's Figure 2(c) loop.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on vector length
    /// mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "dia spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "dia spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        y.fill(T::ZERO);
        let stride = self.rows;
        for (d, &k) in self.offsets.iter().enumerate() {
            let i_start = 0.max(-k) as usize;
            let j_start = 0.max(k) as usize;
            let n = (self.rows - i_start).min(self.cols - j_start);
            let diag = &self.data[d * stride + i_start..d * stride + i_start + n];
            for idx in 0..n {
                y[i_start + idx] += diag[idx] * x[j_start + idx];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 example matrix has diagonals at -2, 0, 1.
    fn example_csr() -> Csr<f64> {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_offsets() {
        let dia = Dia::from_csr(&example_csr()).unwrap();
        assert_eq!(dia.offsets(), &[-2, 0, 1]);
        assert_eq!(dia.ndiags(), 3);
        assert_eq!(dia.nnz(), 9);
    }

    #[test]
    fn round_trip_csr() {
        let csr = example_csr();
        let dia = Dia::from_csr(&csr).unwrap();
        assert_eq!(dia.to_csr(), csr);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = example_csr();
        let dia = Dia::from_csr(&csr).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [9.0; 4];
        csr.spmv(&x, &mut y1).unwrap();
        dia.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn rectangular_matrices() {
        let csr =
            Csr::<f64>::from_triplets(2, 4, &[(0, 0, 1.0), (0, 3, 2.0), (1, 2, 3.0)]).unwrap();
        let dia = Dia::from_csr(&csr).unwrap();
        assert_eq!(dia.to_csr(), csr);
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        csr.spmv(&x, &mut y1).unwrap();
        dia.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);

        let tall =
            Csr::<f64>::from_triplets(4, 2, &[(0, 0, 1.0), (3, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let dia = Dia::from_csr(&tall).unwrap();
        assert_eq!(dia.to_csr(), tall);
    }

    #[test]
    fn fill_limit_refuses_scattered_matrices() {
        // Anti-diagonal-ish scatter: every entry on its own diagonal.
        let n = 64;
        let triplets: Vec<_> = (0..n).map(|i| (i, (i * i + 1) % n, 1.0f64)).collect();
        let csr = Csr::from_triplets(n, n, &triplets).unwrap();
        let res = Dia::from_csr_with_limit(&csr, 2);
        assert!(matches!(
            res,
            Err(MatrixError::ConversionTooExpensive { format: "DIA", .. })
        ));
    }

    #[test]
    fn byte_budget_refuses_before_allocating() {
        let csr = example_csr();
        // 3 diagonals * 4 rows * 8 bytes + 3 offsets * 8 bytes = 120.
        let tight = ConversionLimits {
            budget_bytes: Some(64),
            ..ConversionLimits::unlimited()
        };
        assert!(matches!(
            Dia::from_csr_with(&csr, &tight),
            Err(MatrixError::BudgetExceeded { format: "DIA", .. })
        ));
        let ample = ConversionLimits {
            budget_bytes: Some(1024),
            ..ConversionLimits::unlimited()
        };
        assert!(Dia::from_csr_with(&csr, &ample).is_ok());
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        let csr = example_csr();
        let dia = Dia::from_csr(&csr).unwrap();
        // 9 nonzeros stored in 3 diagonals * 4 rows = 12 slots.
        assert!((dia.fill_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn spmv_dimension_errors() {
        let dia = Dia::from_csr(&example_csr()).unwrap();
        let mut y = [0.0; 4];
        assert!(dia.spmv(&[0.0; 3], &mut y).is_err());
        assert!(dia.spmv(&[0.0; 4], &mut y[..2]).is_err());
    }

    #[test]
    fn empty_and_single() {
        let csr = Csr::<f64>::from_triplets(3, 3, &[]).unwrap();
        let dia = Dia::from_csr(&csr).unwrap();
        assert_eq!(dia.ndiags(), 0);
        let mut y = [1.0; 3];
        dia.spmv(&[1.0; 3], &mut y).unwrap();
        assert_eq!(y, [0.0; 3]);
    }
}

//! Structural fingerprints: a compact hash of a sparse matrix's
//! *sparsity pattern*, ignoring the stored values.
//!
//! SMAT's tuning decision depends only on structure — every one of the
//! paper's Table 2 feature parameters (dimensions, row-degree moments,
//! diagonal counts, fill ratios, power-law `R`) is a function of the
//! pattern, never of the numeric values. Two matrices with the same
//! pattern therefore get the same decision, which is what makes a
//! fingerprint-keyed tuning cache sound: the AMG application regenerates
//! operators with recurring structure but fresh values at every setup,
//! and the cache lets those skip feature extraction, rule evaluation and
//! the execute-and-measure fallback entirely.
//!
//! The fingerprint is `(rows, cols, nnz)` plus a 128-bit digest (two
//! independently seeded 64-bit FNV-1a streams) over the row-pointer and
//! column-index arrays. Collisions would require two different patterns
//! to agree on dimensions, nnz *and* both digest halves; at 128 digest
//! bits that is out of reach for any realistic workload.

use crate::csr::Csr;
use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};

/// FNV-1a offset bases for the two digest halves. The first is the
/// standard 64-bit offset basis; the second is an arbitrary distinct
/// odd constant so the halves decorrelate.
const SEEDS: [u64; 2] = [0xcbf2_9ce4_8422_2325, 0x9e37_79b9_7f4a_7c15];
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A hashable identity for a matrix's sparsity structure.
///
/// Equal fingerprints mean (up to hash collisions) equal patterns:
/// same shape, same nonzero positions. Values play no part, so a matrix
/// refilled with new numbers keeps its fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructuralFingerprint {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// 128-bit pattern digest over `row_ptr` and `col_idx`.
    pub digest: [u64; 2],
}

impl StructuralFingerprint {
    /// Computes the fingerprint of an arbitrary CSR pattern.
    pub fn of_pattern(rows: usize, cols: usize, row_ptr: &[usize], col_idx: &[usize]) -> Self {
        let mut digest = SEEDS;
        for half in &mut digest {
            // Hash the row structure, then a separator, then the columns,
            // so (row_ptr, col_idx) pairs can't alias across the boundary.
            for &p in row_ptr {
                *half = fnv_step(*half, p as u64);
            }
            *half = fnv_step(*half, u64::MAX);
            for &c in col_idx {
                *half = fnv_step(*half, c as u64);
            }
        }
        StructuralFingerprint {
            rows,
            cols,
            nnz: col_idx.len(),
            digest,
        }
    }
}

/// Feeds one 64-bit word into an FNV-1a stream. Whole words rather than
/// bytes: one multiply per index keeps the hit path of the tuning cache
/// an order of magnitude below feature extraction.
#[inline]
fn fnv_step(mut h: u64, word: u64) -> u64 {
    h ^= word;
    h.wrapping_mul(FNV_PRIME)
}

impl<T: Scalar> Csr<T> {
    /// The fingerprint of this matrix's sparsity structure.
    ///
    /// Cost is one linear pass over `row_ptr` and `col_idx` — far below
    /// feature extraction, which also needs per-diagonal bookkeeping.
    pub fn fingerprint(&self) -> StructuralFingerprint {
        StructuralFingerprint::of_pattern(self.rows(), self.cols(), self.row_ptr(), self.col_idx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_uniform, tridiagonal};

    #[test]
    fn values_do_not_affect_the_fingerprint() {
        let a = tridiagonal::<f64>(200);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= -3.25;
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn dimensions_and_pattern_feed_the_key() {
        let a = tridiagonal::<f64>(100);
        let b = tridiagonal::<f64>(101);
        assert_ne!(a.fingerprint(), b.fingerprint());

        let c = random_uniform::<f64>(100, 100, 3, 1);
        let d = random_uniform::<f64>(100, 100, 3, 2);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn transposed_pattern_differs() {
        let m = random_uniform::<f64>(60, 40, 4, 7);
        assert_ne!(m.fingerprint(), m.transpose().fingerprint());
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let m = random_uniform::<f64>(80, 80, 5, 3);
        assert_eq!(m.fingerprint(), m.clone().fingerprint());
    }

    #[test]
    fn serde_round_trip() {
        let fp = tridiagonal::<f64>(64).fingerprint();
        let json = serde_json::to_string(&fp).unwrap();
        let back: StructuralFingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
    }
}

//! Sparse matrix storage formats and generators for the SMAT (PLDI'13)
//! reproduction.
//!
//! This crate provides the four basic storage formats the paper tunes
//! over — [`Csr`], [`Coo`], [`Dia`] and [`Ell`] — together with validated
//! conversions between them ([`AnyMatrix`]), Matrix Market I/O
//! ([`io`]), dense-vector helpers ([`utils`]) and the synthetic matrix
//! generators ([`gen`]) that stand in for the University of Florida
//! collection.
//!
//! All formats are generic over [`Scalar`] (`f32` or `f64`), matching the
//! paper's single-/double-precision evaluation.
//!
//! # Examples
//!
//! Build a matrix in the unified CSR interface format and convert it to
//! the format a tuner picked:
//!
//! ```
//! use smat_matrix::{AnyMatrix, Csr, Format};
//!
//! let a = Csr::<f64>::from_triplets(3, 3, &[(0, 0, 4.0), (1, 1, 4.0), (2, 2, 4.0)])?;
//! let tuned = AnyMatrix::convert_from_csr(&a, Format::Dia)?;
//! let mut y = vec![0.0; 3];
//! tuned.spmv(&[1.0, 2.0, 3.0], &mut y)?;
//! assert_eq!(y, [4.0, 8.0, 12.0]);
//! # Ok::<(), smat_matrix::MatrixError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod bcsr;
mod convert;
mod coo;
mod csr;
mod dia;
mod ell;
mod error;
mod fingerprint;
mod hyb;
mod scalar;

pub mod gen;
pub mod io;
pub mod utils;

pub use bcsr::{Bcsr, DEFAULT_BCSR_FILL_LIMIT};
pub use convert::{AnyMatrix, ConversionLimits, Format, ParseFormatError};
pub use coo::Coo;
pub use csr::{Csr, Iter as CsrIter};
pub use dia::{Dia, DEFAULT_DIA_FILL_LIMIT};
pub use ell::{Ell, DEFAULT_ELL_FILL_LIMIT};
pub use error::{MatrixError, Result};
pub use fingerprint::StructuralFingerprint;
pub use hyb::{Hyb, HYB_WIDTH_ROW_FRACTION};
pub use scalar::Scalar;

//! HYB (hybrid ELL + COO) storage — the extension format.
//!
//! The paper's related-work section discusses cuSPARSE's HYB format — an
//! ELL part for the regular bulk of each row plus a COO part for the
//! overflow — and claims SMAT "is possible to add new formats by
//! extracting novel parameters and integrating its implementations in
//! kernel library". This module is that claim exercised end to end: HYB
//! participates in conversion, the kernel library, training labels and
//! the rule groups exactly like the four basic formats.

use crate::error::{MatrixError, Result};
use crate::{ConversionLimits, Coo, Csr, Ell, Scalar};
use serde::{Deserialize, Serialize};

/// A sparse matrix in hybrid ELL+COO format.
///
/// The first [`Hyb::width`] entries of each row are packed into an ELL
/// part; the remainder spills into a COO part. The width is chosen with
/// the standard cuSPARSE-style heuristic: the largest `k` such that at
/// least a third of the rows still have `k` or more entries, so the ELL
/// part stays dense while heavy tails stop poisoning `max_RD`.
///
/// # Examples
///
/// ```
/// use smat_matrix::{Csr, Hyb};
///
/// // One heavy row among many light ones: ELL would pad every row to
/// // width 4; HYB keeps a width-1 ELL part and spills the heavy tail.
/// let m = Csr::<f64>::from_triplets(
///     6,
///     4,
///     &[
///         (0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (0, 3, 4.0),
///         (1, 1, 5.0), (2, 2, 6.0), (3, 0, 7.0), (4, 3, 8.0), (5, 2, 9.0),
///     ],
/// )?;
/// let h = Hyb::from_csr(&m);
/// assert_eq!(h.width(), 1);
/// assert_eq!(h.coo_part().nnz(), 3);
/// assert_eq!(h.to_csr(), m);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hyb<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    width: usize,
    ell: Ell<T>,
    coo: Coo<T>,
}

/// Fraction of rows that must reach a candidate ELL width for it to be
/// accepted (the cuSPARSE heuristic's 1/3).
pub const HYB_WIDTH_ROW_FRACTION: f64 = 1.0 / 3.0;

impl<T: Scalar> Hyb<T> {
    /// Converts from CSR with the automatic width heuristic.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        Self::from_csr_with_width(csr, auto_width(csr))
    }

    /// Converts from CSR under explicit [`ConversionLimits`]: the
    /// automatic-width ELL/COO split sizes are estimated up front and
    /// checked against the byte budget before any storage is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::BudgetExceeded`] when the estimated
    /// allocation exceeds the configured budget.
    pub fn from_csr_with(csr: &Csr<T>, limits: &ConversionLimits) -> Result<Self> {
        let width = auto_width(csr);
        let rows = csr.rows();
        // ELL part: width * rows slots of (value + column index); COO
        // part: one (row, col, value) triple per spilled entry.
        let ell_slots = width.saturating_mul(rows);
        let coo_entries: usize = (0..rows)
            .map(|r| csr.row_degree(r).saturating_sub(width))
            .sum();
        let slot = T::BYTES.saturating_add(std::mem::size_of::<usize>());
        let triple = T::BYTES.saturating_add(2 * std::mem::size_of::<usize>());
        limits.check_bytes(
            "HYB",
            ell_slots
                .saturating_mul(slot)
                .saturating_add(coo_entries.saturating_mul(triple)),
        )?;
        Ok(Self::from_csr_with_width(csr, width))
    }

    /// Converts from CSR, packing the first `width` entries of each row
    /// into the ELL part and the rest into the COO part.
    pub fn from_csr_with_width(csr: &Csr<T>, width: usize) -> Self {
        let rows = csr.rows();
        let cols = csr.cols();
        let mut ell_triplets: Vec<(usize, usize, T)> = Vec::new();
        let mut coo_r = Vec::new();
        let mut coo_c = Vec::new();
        let mut coo_v = Vec::new();
        for r in 0..rows {
            let (cs, vs) = csr.row(r);
            let cut = cs.len().min(width);
            for (&c, &v) in cs[..cut].iter().zip(&vs[..cut]) {
                ell_triplets.push((r, c, v));
            }
            for (&c, &v) in cs[cut..].iter().zip(&vs[cut..]) {
                coo_r.push(r);
                coo_c.push(c);
                coo_v.push(v);
            }
        }
        let ell_csr = Csr::from_triplets(rows, cols, &ell_triplets)
            .expect("triplets from a valid csr are in bounds");
        let ell = Ell::from_csr_with_limit(&ell_csr, usize::MAX)
            .expect("width-capped part never exceeds an unlimited budget");
        let coo = Coo::new(rows, cols, coo_r, coo_c, coo_v).expect("entries from a valid csr");
        Self {
            rows,
            cols,
            nnz: csr.nnz(),
            width,
            ell,
            coo,
        }
    }

    /// Converts back to CSR. Like [`Ell::to_csr`], explicit stored zeros
    /// are dropped (ELL padding is indistinguishable from them), so the
    /// result equals the zero-pruned original.
    pub fn to_csr(&self) -> Csr<T> {
        let mut triplets: Vec<(usize, usize, T)> = self.ell.to_csr().iter().collect();
        triplets.extend(self.coo.iter().filter(|&(_, _, v)| v != T::ZERO));
        Csr::from_triplets(self.rows, self.cols, &triplets)
            .expect("both parts hold in-bounds entries")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of logical nonzeros across both parts.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// ELL-part width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The packed regular part.
    #[inline]
    pub fn ell_part(&self) -> &Ell<T> {
        &self.ell
    }

    /// The overflow part.
    #[inline]
    pub fn coo_part(&self) -> &Coo<T> {
        &self.coo
    }

    /// Fraction of nonzeros held by the ELL part.
    pub fn ell_fraction(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.ell.nnz() as f64 / self.nnz as f64
    }

    /// Reference SpMV `y = A * x`: ELL sweep plus COO scatter.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on vector length
    /// mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "hyb spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "hyb spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        self.ell.spmv(x, y).expect("validated dimensions");
        for (r, c, v) in self.coo.iter() {
            y[r] += v * x[c];
        }
        Ok(())
    }
}

/// The automatic ELL width: largest `k >= 1` with at least
/// `HYB_WIDTH_ROW_FRACTION` of the rows having `k` or more entries
/// (0 for an empty matrix).
fn auto_width<T: Scalar>(csr: &Csr<T>) -> usize {
    let rows = csr.rows();
    if rows == 0 || csr.nnz() == 0 {
        return 0;
    }
    let max_rd = (0..rows).map(|r| csr.row_degree(r)).max().unwrap_or(0);
    // rows_with_deg_ge[k] = number of rows with degree >= k.
    let mut hist = vec![0usize; max_rd + 2];
    for r in 0..rows {
        hist[csr.row_degree(r)] += 1;
    }
    let mut ge = 0usize;
    let need = ((rows as f64 * HYB_WIDTH_ROW_FRACTION).ceil() as usize).max(1);
    let mut width = 1;
    for k in (1..=max_rd).rev() {
        ge += hist[k];
        if ge >= need {
            width = k;
            break;
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{fixed_degree, power_law};

    fn skewed() -> Csr<f64> {
        // 7 uniform rows of degree 2 plus one heavy row of degree 6.
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..7 {
            triplets.push((r, r % 8, 1.0 + r as f64));
            triplets.push((r, (r + 3) % 8, 2.0));
        }
        for c in 0..6 {
            triplets.push((7, c, 0.5));
        }
        Csr::from_triplets(8, 8, &triplets).unwrap()
    }

    #[test]
    fn width_heuristic_ignores_heavy_tail() {
        let m = skewed();
        let h = Hyb::from_csr(&m);
        assert_eq!(h.width(), 2, "one heavy row must not widen the ELL part");
        assert_eq!(h.nnz(), m.nnz());
        assert_eq!(h.coo_part().nnz(), 4, "heavy row overflow spills to COO");
        assert!(h.ell_fraction() > 0.7);
    }

    #[test]
    fn round_trip_csr() {
        for m in [
            skewed(),
            power_law::<f64>(300, 60, 2.0, 3),
            fixed_degree::<f64>(100, 100, 5, 0, 1),
        ] {
            assert_eq!(Hyb::from_csr(&m).to_csr(), m);
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let m = power_law::<f64>(400, 80, 1.8, 9);
        let h = Hyb::from_csr(&m);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y1 = vec![0.0; m.rows()];
        let mut y2 = vec![5.0; m.rows()];
        m.spmv(&x, &mut y1).unwrap();
        h.spmv(&x, &mut y2).unwrap();
        assert!(crate::utils::max_abs_diff(&y1, &y2) < 1e-12);
    }

    #[test]
    fn uniform_matrix_has_empty_coo_part() {
        let m = fixed_degree::<f64>(200, 200, 6, 0, 2);
        let h = Hyb::from_csr(&m);
        assert_eq!(h.width(), 6);
        assert_eq!(h.coo_part().nnz(), 0);
        assert_eq!(h.ell_fraction(), 1.0);
    }

    #[test]
    fn explicit_width_and_edge_cases() {
        let m = skewed();
        let h = Hyb::from_csr_with_width(&m, 1);
        assert_eq!(h.width(), 1);
        assert_eq!(h.to_csr(), m);
        // Width 0: everything in COO.
        let h = Hyb::from_csr_with_width(&m, 0);
        assert_eq!(h.ell_part().nnz(), 0);
        assert_eq!(h.to_csr(), m);
        // Empty matrix.
        let z = Csr::<f64>::from_triplets(3, 3, &[]).unwrap();
        let h = Hyb::from_csr(&z);
        assert_eq!(h.width(), 0);
        let mut y = [1.0; 3];
        h.spmv(&[1.0; 3], &mut y).unwrap();
        assert_eq!(y, [0.0; 3]);
    }

    #[test]
    fn byte_budget_checks_the_split_estimate() {
        let m = skewed();
        let tight = ConversionLimits {
            budget_bytes: Some(16),
            ..ConversionLimits::unlimited()
        };
        assert!(matches!(
            Hyb::from_csr_with(&m, &tight),
            Err(MatrixError::BudgetExceeded { format: "HYB", .. })
        ));
        let ample = ConversionLimits {
            budget_bytes: Some(1 << 20),
            ..ConversionLimits::unlimited()
        };
        let h = Hyb::from_csr_with(&m, &ample).unwrap();
        assert_eq!(h, Hyb::from_csr(&m), "budgeted path matches unbudgeted");
    }

    #[test]
    fn spmv_dimension_errors() {
        let h = Hyb::from_csr(&skewed());
        let mut y = [0.0; 8];
        assert!(h.spmv(&[1.0; 7], &mut y).is_err());
        assert!(h.spmv(&[1.0; 8], &mut y[..3]).is_err());
    }
}

//! Matrix Market (`.mtx`) reader and writer.
//!
//! The UF sparse matrix collection the paper trains on is distributed in
//! this format; supporting it lets real collection matrices be dropped
//! into the synthetic corpus or the benchmark suite.
//!
//! Supported header: `%%MatrixMarket matrix coordinate
//! {real|integer|pattern} {general|symmetric|skew-symmetric}`. Complex
//! matrices are rejected — the paper likewise "exclude\[s\] the matrices
//! with complex values".

use crate::error::{MatrixError, Result};
use crate::{Csr, Scalar};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    Pattern,
}

/// Symmetry of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmSymmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a sparse matrix in Matrix Market coordinate format.
///
/// Symmetric and skew-symmetric files are expanded to their full (general)
/// form, mirroring how SpMV libraries consume them. `pattern` files get
/// value `1.0` for every entry.
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] on malformed input (bad header, complex
/// field, array format, short lines, out-of-range indices) and
/// [`MatrixError::Io`] on read failures.
///
/// # Examples
///
/// ```
/// use smat_matrix::io::{read_matrix_market, write_matrix_market};
///
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 2.5\n";
/// let m = read_matrix_market::<f64, _>(text.as_bytes())?;
/// assert_eq!(m.get(0, 0), Some(1.5));
///
/// let mut out = Vec::new();
/// write_matrix_market(&m, &mut out)?;
/// let back = read_matrix_market::<f64, _>(&out[..])?;
/// assert_eq!(back, m);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<Csr<T>> {
    // Failpoint `io.read`: lets tests script read failures (torn
    // streams, flaky mounts) without a faulty reader implementation.
    if let Some(fault) = smat_failpoints::check("io.read") {
        return Err(MatrixError::Io(fault.into()));
    }
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line.
    let (lno, header) = match lines.next() {
        Some((i, l)) => (i + 1, l?),
        None => {
            return Err(MatrixError::Parse {
                line: 1,
                message: "empty file".into(),
            })
        }
    };
    // The spec prints `%%MatrixMarket` in mixed case and real-world
    // corpora mix qualifier casings (`Real`/`real`, `SYMMETRIC`), so
    // every token is matched case-insensitively. Errors quote the
    // token as written in the file, not a normalized copy.
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 5
        || !toks[0].eq_ignore_ascii_case("%%matrixmarket")
        || !toks[1].eq_ignore_ascii_case("matrix")
    {
        return Err(MatrixError::Parse {
            line: lno,
            message: format!("bad header: {header:?}"),
        });
    }
    if !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(MatrixError::Parse {
            line: lno,
            message: format!(
                "unsupported format {:?}, only coordinate is supported",
                toks[2]
            ),
        });
    }
    let field = if toks[3].eq_ignore_ascii_case("real") {
        MmField::Real
    } else if toks[3].eq_ignore_ascii_case("integer") {
        MmField::Integer
    } else if toks[3].eq_ignore_ascii_case("pattern") {
        MmField::Pattern
    } else {
        return Err(MatrixError::Parse {
            line: lno,
            message: format!(
                "unsupported field {:?} (complex matrices are excluded)",
                toks[3]
            ),
        });
    };
    let symmetry = if toks[4].eq_ignore_ascii_case("general") {
        MmSymmetry::General
    } else if toks[4].eq_ignore_ascii_case("symmetric") {
        MmSymmetry::Symmetric
    } else if toks[4].eq_ignore_ascii_case("skew-symmetric") {
        MmSymmetry::SkewSymmetric
    } else {
        return Err(MatrixError::Parse {
            line: lno,
            message: format!("unsupported symmetry {:?}", toks[4]),
        });
    };

    // Size line (skipping comments / blanks).
    let (mut rows, mut cols) = (0usize, 0usize);
    let mut size_seen = false;
    let mut nnz_declared = 0usize;
    let mut entries_read = 0usize;
    let mut last_lno = lno;
    let mut triplets: Vec<(usize, usize, T)> = Vec::new();
    for (i, line) in lines {
        let lno = i + 1;
        last_lno = lno;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if !size_seen {
            let mut it = trimmed.split_whitespace();
            rows = parse_usize(it.next(), lno)?;
            cols = parse_usize(it.next(), lno)?;
            nnz_declared = parse_usize(it.next(), lno)?;
            size_seen = true;
            triplets.reserve(nnz_declared);
            continue;
        }
        entries_read += 1;
        let mut it = trimmed.split_whitespace();
        let r = parse_usize(it.next(), lno)?;
        let c = parse_usize(it.next(), lno)?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MatrixError::Parse {
                line: lno,
                message: format!("entry ({r}, {c}) outside 1..={rows} x 1..={cols}"),
            });
        }
        let v = match field {
            MmField::Pattern => T::ONE,
            MmField::Real | MmField::Integer => {
                let tok = it.next().ok_or_else(|| MatrixError::Parse {
                    line: lno,
                    message: "missing value".into(),
                })?;
                let f: f64 = tok.parse().map_err(|_| MatrixError::Parse {
                    line: lno,
                    message: format!("bad value {tok:?}"),
                })?;
                // Rust's float parser accepts "nan"/"inf" tokens;
                // admitting them here would poison every downstream
                // measurement and tuned product, so they are rejected
                // at the boundary.
                if !f.is_finite() {
                    return Err(MatrixError::Parse {
                        line: lno,
                        message: format!("non-finite value {tok:?} (matrix values must be finite)"),
                    });
                }
                T::from_f64(f)
            }
        };
        let (r, c) = (r - 1, c - 1);
        triplets.push((r, c, v));
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    triplets.push((c, r, v));
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r != c {
                    triplets.push((c, r, -v));
                }
            }
        }
    }
    if !size_seen {
        return Err(MatrixError::Parse {
            line: lno + 1,
            message: "missing size line".into(),
        });
    }
    if entries_read != nnz_declared {
        return Err(MatrixError::Parse {
            line: last_lno,
            message: format!(
                "truncated or padded file: header declares {nnz_declared} entries, found {entries_read}"
            ),
        });
    }
    Csr::from_triplets(rows, cols, &triplets)
}

fn parse_usize(tok: Option<&str>, line: usize) -> Result<usize> {
    let tok = tok.ok_or_else(|| MatrixError::Parse {
        line,
        message: "line too short".into(),
    })?;
    tok.parse().map_err(|_| MatrixError::Parse {
        line,
        message: format!("expected integer, found {tok:?}"),
    })
}

/// Reads a Matrix Market file from `path`.
///
/// # Errors
///
/// See [`read_matrix_market`].
pub fn read_matrix_market_file<T: Scalar>(path: impl AsRef<Path>) -> Result<Csr<T>> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a CSR matrix as `coordinate real general` Matrix Market.
///
/// A mutable reference can be passed as the writer.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] on write failures.
pub fn write_matrix_market<T: Scalar, W: Write>(m: &Csr<T>, mut writer: W) -> Result<()> {
    if let Some(fault) = smat_failpoints::check("io.write") {
        return Err(MatrixError::Io(fault.into()));
    }
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

/// Writes a CSR matrix as Matrix Market to `path`.
///
/// # Errors
///
/// See [`write_matrix_market`].
pub fn write_matrix_market_file<T: Scalar>(m: &Csr<T>, path: impl AsRef<Path>) -> Result<()> {
    write_matrix_market(m, std::io::BufWriter::new(std::fs::File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 3\n1 1 1.0\n2 3 -2.5\n3 1 4\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), Some(-2.5));
    }

    #[test]
    fn expands_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 1 3.0\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(3.0));
        assert_eq!(m.get(1, 0), Some(3.0));
    }

    #[test]
    fn expands_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(3.0));
        assert_eq!(m.get(0, 1), Some(-3.0));
    }

    #[test]
    fn pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market::<f32, _>(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn header_tokens_match_case_insensitively() {
        // The banner itself is mixed case in the spec, and corpora mix
        // qualifier casings freely.
        let mixed = "%%MatrixMarket Matrix Coordinate Real General\n% c\n2 2 2\n1 1 1.0\n2 2 2.0\n";
        let m = read_matrix_market::<f64, _>(mixed.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 2);
        let shouty = "%%MATRIXMARKET MATRIX COORDINATE REAL SYMMETRIC\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market::<f64, _>(shouty.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(3.0));
        assert_eq!(m.get(1, 0), Some(3.0));
        let skew = "%%MatrixMarket matrix coordinate real Skew-Symmetric\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market::<f64, _>(skew.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(-3.0));
        let pattern = "%%MatrixMarket matrix coordinate PATTERN General\n2 2 1\n1 2\n";
        let m = read_matrix_market::<f32, _>(pattern.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn genuine_header_mismatch_quotes_original_token_with_line() {
        // A real mismatch must still fail, on line 1, quoting the token
        // as written — not a lowercased copy.
        let complex = "%%MatrixMarket matrix coordinate Complex general\n1 1 1\n1 1 1 0\n";
        match read_matrix_market::<f64, _>(complex.as_bytes()).unwrap_err() {
            MatrixError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("\"Complex\""), "message: {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let array = "%%MatrixMarket matrix Array real general\n2 2\n1\n2\n3\n4\n";
        match read_matrix_market::<f64, _>(array.as_bytes()).unwrap_err() {
            MatrixError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("\"Array\""), "message: {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let herm = "%%MatrixMarket matrix coordinate real Hermitian\n1 1 1\n1 1 1\n";
        match read_matrix_market::<f64, _>(herm.as_bytes()).unwrap_err() {
            MatrixError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("\"Hermitian\""), "message: {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_complex_and_array() {
        let complex = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(matches!(
            read_matrix_market::<f64, _>(complex.as_bytes()),
            Err(MatrixError::Parse { .. })
        ));
        let array = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        assert!(read_matrix_market::<f64, _>(array.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_and_short_lines() {
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n";
        assert!(read_matrix_market::<f64, _>(short.as_bytes()).is_err());
        let empty = "";
        assert!(read_matrix_market::<f64, _>(empty.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_finite_values_at_parse_time() {
        // Rust's f64 parser accepts all of these tokens; the reader
        // must not.
        for tok in ["nan", "NaN", "inf", "-inf", "Infinity", "1e999"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 {tok}\n");
            let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
            match &err {
                MatrixError::Parse { line, message } => {
                    assert_eq!(*line, 3, "token {tok:?}");
                    assert!(message.contains("non-finite"), "token {tok:?}: {message}");
                }
                other => panic!("expected Parse for {tok:?}, got {other:?}"),
            }
        }
        // Symmetric expansion cannot smuggle one in either.
        let sym = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 nan\n";
        assert!(read_matrix_market::<f64, _>(sym.as_bytes()).is_err());
        // Integer-typed files go through the same gate.
        let int = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 inf\n";
        assert!(read_matrix_market::<f64, _>(int.as_bytes()).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let m =
            Csr::<f64>::from_triplets(3, 4, &[(0, 3, 1.25), (1, 0, -2.0), (2, 2, 0.5)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("smat_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let m = Csr::<f32>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        write_matrix_market_file(&m, &path).unwrap();
        let back = read_matrix_market_file::<f32>(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }
}

//! Unstructured random sparse matrices.

use crate::{Csr, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a random sparse matrix where each row's degree is drawn
/// uniformly from `[1, 2 * avg_degree]` and column positions are uniform.
///
/// This is the "general unstructured" archetype: high `var_RD`, no
/// diagonal structure — the territory where CSR wins in the paper's
/// Table 1 (linear programming, optimization, economics, ...).
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0`, or `avg_degree == 0`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::random_uniform;
///
/// let m = random_uniform::<f64>(100, 100, 8, 42);
/// assert_eq!(m.rows(), 100);
/// assert!(m.nnz() > 0);
/// // Deterministic for a fixed seed.
/// assert_eq!(m, random_uniform::<f64>(100, 100, 8, 42));
/// ```
pub fn random_uniform<T: Scalar>(rows: usize, cols: usize, avg_degree: usize, seed: u64) -> Csr<T> {
    assert!(rows > 0 && cols > 0, "empty matrix requested");
    assert!(avg_degree > 0, "avg_degree must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * avg_degree);
    for r in 0..rows {
        let deg = rng.gen_range(1..=(2 * avg_degree).min(cols));
        push_row(&mut triplets, &mut rng, r, cols, deg);
    }
    Csr::from_triplets(rows, cols, &triplets).expect("generator produces in-bounds triplets")
}

/// Generates a random sparse matrix with (near-)fixed row degree
/// `degree ± jitter`.
///
/// Low `var_RD` and `ER_ELL` near 1: the ELL-friendly archetype
/// (combinatorial problems, least squares in the paper's Table 1).
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0`, `degree == 0`, or
/// `degree + jitter > cols`.
pub fn fixed_degree<T: Scalar>(
    rows: usize,
    cols: usize,
    degree: usize,
    jitter: usize,
    seed: u64,
) -> Csr<T> {
    assert!(rows > 0 && cols > 0, "empty matrix requested");
    assert!(degree > 0, "degree must be positive");
    assert!(
        degree + jitter <= cols,
        "degree + jitter exceeds column count"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * degree);
    for r in 0..rows {
        let deg = if jitter == 0 {
            degree
        } else {
            rng.gen_range(degree.saturating_sub(jitter).max(1)..=degree + jitter)
        };
        push_row(&mut triplets, &mut rng, r, cols, deg);
    }
    Csr::from_triplets(rows, cols, &triplets).expect("generator produces in-bounds triplets")
}

/// Generates a random sparse matrix with skewed row degrees: most rows
/// draw uniformly from `[1, 2 * avg_degree]`, but a `heavy_fraction` of
/// rows are "heavy" with degree up to `heavy_factor * avg_degree`.
///
/// Real unstructured matrices (linear programming, optimization,
/// economics in the paper's Table 1) have a few dense rows among many
/// light ones — exactly the profile that makes ELL's `max_RD` padding
/// and DIA's diagonal census explode, leaving CSR the winner.
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0`, `avg_degree == 0`,
/// `heavy_factor == 0`, or `heavy_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::random_skewed;
///
/// let m = random_skewed::<f64>(500, 500, 8, 0.05, 16, 42);
/// let max_deg = (0..m.rows()).map(|r| m.row_degree(r)).max().unwrap();
/// assert!(max_deg > 16, "heavy rows exist: {max_deg}");
/// ```
pub fn random_skewed<T: Scalar>(
    rows: usize,
    cols: usize,
    avg_degree: usize,
    heavy_fraction: f64,
    heavy_factor: usize,
    seed: u64,
) -> Csr<T> {
    assert!(rows > 0 && cols > 0, "empty matrix requested");
    assert!(avg_degree > 0, "avg_degree must be positive");
    assert!(heavy_factor > 0, "heavy_factor must be positive");
    assert!(
        (0.0..=1.0).contains(&heavy_fraction),
        "heavy_fraction must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * avg_degree);
    for r in 0..rows {
        let deg = if rng.gen::<f64>() < heavy_fraction {
            rng.gen_range(avg_degree..=(heavy_factor * avg_degree).min(cols).max(avg_degree))
        } else {
            rng.gen_range(1..=(2 * avg_degree).min(cols))
        };
        push_row(&mut triplets, &mut rng, r, cols, deg);
    }
    Csr::from_triplets(rows, cols, &triplets).expect("generator produces in-bounds triplets")
}

/// Appends `deg` distinct random entries for row `r`.
fn push_row<T: Scalar>(
    triplets: &mut Vec<(usize, usize, T)>,
    rng: &mut SmallRng,
    r: usize,
    cols: usize,
    deg: usize,
) {
    let deg = deg.min(cols);
    if deg * 4 >= cols {
        // Dense-ish row: reservoir-style selection avoids rejection loops.
        let mut picked: Vec<usize> = (0..cols).collect();
        for i in 0..deg {
            let j = rng.gen_range(i..cols);
            picked.swap(i, j);
        }
        for &c in &picked[..deg] {
            triplets.push((r, c, random_value(rng)));
        }
    } else {
        let mut seen = std::collections::HashSet::with_capacity(deg);
        while seen.len() < deg {
            let c = rng.gen_range(0..cols);
            if seen.insert(c) {
                triplets.push((r, c, random_value(rng)));
            }
        }
    }
}

/// A nonzero value in `[-1, -0.1] ∪ [0.1, 1]` — bounded away from zero so
/// structural nonzeros never vanish numerically.
pub(crate) fn random_value<T: Scalar>(rng: &mut SmallRng) -> T {
    let mag = 0.1 + 0.9 * rng.gen::<f64>();
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    T::from_f64(sign * mag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_uniform::<f64>(50, 60, 5, 7);
        let b = random_uniform::<f64>(50, 60, 5, 7);
        let c = random_uniform::<f64>(50, 60, 5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degrees_in_expected_range() {
        let m = random_uniform::<f64>(200, 200, 6, 1);
        for r in 0..m.rows() {
            let d = m.row_degree(r);
            assert!((1..=12).contains(&d), "row {r} degree {d}");
        }
    }

    #[test]
    fn fixed_degree_is_fixed() {
        let m = fixed_degree::<f64>(100, 100, 7, 0, 3);
        assert!((0..m.rows()).all(|r| m.row_degree(r) == 7));
        assert_eq!(m.nnz(), 700);
    }

    #[test]
    fn fixed_degree_jitter_bounds() {
        let m = fixed_degree::<f64>(100, 100, 7, 2, 3);
        for r in 0..m.rows() {
            let d = m.row_degree(r);
            assert!((5..=9).contains(&d));
        }
    }

    #[test]
    fn values_bounded_away_from_zero() {
        let m = random_uniform::<f64>(30, 30, 4, 11);
        for &v in m.values() {
            assert!(v.abs() >= 0.1 && v.abs() <= 1.0);
        }
    }

    #[test]
    fn dense_rows_have_distinct_columns() {
        // deg*4 >= cols path
        let m = fixed_degree::<f64>(10, 8, 6, 0, 5);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 60);
    }

    #[test]
    #[should_panic(expected = "degree + jitter exceeds")]
    fn jitter_overflow_panics() {
        fixed_degree::<f64>(10, 5, 5, 1, 0);
    }
}

//! Power-law (scale-free) graph matrices.
//!
//! The paper adopts the observation from Yang et al. \[36\] that COO "gains
//! good performance on small-world network" matrices and uses the
//! power-law exponent `R` of the row-degree distribution `P(k) ~ k^-R`
//! as a COO-affinity feature, preferring `R` in `[1, 4]`. This generator
//! produces adjacency-like matrices whose degree distribution follows a
//! discrete power law with a chosen exponent.

use super::random::random_value;
use crate::{Csr, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an `n x n` sparse matrix whose row degrees follow
/// `P(k) ~ k^-exponent` for `k` in `[1, max_degree]`.
///
/// Column positions are uniform. The resulting matrix has a handful of
/// very heavy rows and a long tail of light rows — the shape that defeats
/// ELL (huge `max_RD`, tiny `ER_ELL`) and row-parallel CSR (load
/// imbalance).
///
/// # Panics
///
/// Panics if `n == 0`, `max_degree == 0` or `max_degree > n`, or
/// `exponent <= 0`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::power_law;
///
/// let m = power_law::<f64>(1000, 200, 2.0, 7);
/// assert_eq!(m.rows(), 1000);
/// let max_deg = (0..m.rows()).map(|r| m.row_degree(r)).max().unwrap();
/// assert!(max_deg > 20); // heavy-tail head exists
/// ```
pub fn power_law<T: Scalar>(n: usize, max_degree: usize, exponent: f64, seed: u64) -> Csr<T> {
    assert!(n > 0, "empty matrix requested");
    assert!(
        max_degree > 0 && max_degree <= n,
        "max_degree must be in 1..=n"
    );
    assert!(exponent > 0.0, "exponent must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Cumulative distribution over k = 1..=max_degree with P(k) ~ k^-exp.
    let mut cdf = Vec::with_capacity(max_degree);
    let mut acc = 0.0f64;
    for k in 1..=max_degree {
        acc += (k as f64).powf(-exponent);
        cdf.push(acc);
    }
    let total = acc;

    let mut triplets = Vec::new();
    for r in 0..n {
        let u = rng.gen::<f64>() * total;
        let k = cdf.partition_point(|&c| c < u) + 1;
        let k = k.min(max_degree);
        // Sample k distinct columns.
        if k * 4 >= n {
            let mut picked: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                picked.swap(i, j);
            }
            for &c in &picked[..k] {
                triplets.push((r, c, random_value::<T>(&mut rng)));
            }
        } else {
            let mut seen = std::collections::HashSet::with_capacity(k);
            while seen.len() < k {
                let c = rng.gen_range(0..n);
                if seen.insert(c) {
                    triplets.push((r, c, random_value::<T>(&mut rng)));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            power_law::<f64>(300, 50, 2.0, 5),
            power_law::<f64>(300, 50, 2.0, 5)
        );
    }

    #[test]
    fn heavy_tail_shape() {
        let m = power_law::<f64>(2000, 400, 2.0, 9);
        let degs: Vec<usize> = (0..m.rows()).map(|r| m.row_degree(r)).collect();
        let ones = degs.iter().filter(|&&d| d == 1).count();
        let heavy = degs.iter().filter(|&&d| d > 50).count();
        // With exponent 2, over half the rows have degree 1 and a few are heavy.
        assert!(ones > m.rows() / 3, "ones = {ones}");
        assert!(heavy > 0, "no heavy rows");
        assert!(heavy < m.rows() / 20, "too many heavy rows: {heavy}");
    }

    #[test]
    fn steeper_exponent_means_lighter_matrix() {
        let shallow = power_law::<f64>(1000, 100, 1.5, 3);
        let steep = power_law::<f64>(1000, 100, 3.5, 3);
        assert!(steep.nnz() < shallow.nnz());
    }

    #[test]
    fn all_rows_nonempty() {
        let m = power_law::<f64>(500, 100, 2.5, 1);
        assert!((0..m.rows()).all(|r| m.row_degree(r) >= 1));
    }

    #[test]
    #[should_panic(expected = "max_degree")]
    fn oversized_degree_panics() {
        power_law::<f64>(10, 20, 2.0, 0);
    }
}

//! Block-sparse matrices: dense sub-blocks scattered on a block grid.
//!
//! The paper notes that "when there exist many dense sub-blocks in a
//! sparse matrix, the corresponding blocking variants (i.e. BCSR, BDIA,
//! etc.) may perform better". SMAT's four basic formats treat these as
//! CSR territory; the archetype exercises moderate `aver_RD` with strong
//! locality, as in structural / FEM matrices.

use super::random::random_value;
use crate::{Csr, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an `n x n` matrix of dense `block_size x block_size` blocks,
/// where each block row receives `blocks_per_row` blocks at random block
/// columns (always including the diagonal block, keeping the matrix
/// structurally nonsingular).
///
/// # Panics
///
/// Panics if `n == 0`, `block_size == 0`, `n` is not a multiple of
/// `block_size`, or `blocks_per_row` is zero or exceeds `n / block_size`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::block_sparse;
///
/// let m = block_sparse::<f64>(64, 4, 3, 42);
/// assert_eq!(m.nnz(), (64 / 4) * 3 * 16);
/// ```
pub fn block_sparse<T: Scalar>(
    n: usize,
    block_size: usize,
    blocks_per_row: usize,
    seed: u64,
) -> Csr<T> {
    assert!(n > 0 && block_size > 0, "empty matrix requested");
    assert!(
        n.is_multiple_of(block_size),
        "dimension {n} not a multiple of block size {block_size}"
    );
    let nb = n / block_size;
    assert!(
        blocks_per_row >= 1 && blocks_per_row <= nb,
        "blocks_per_row must be in 1..={nb}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(nb * blocks_per_row * block_size * block_size);
    for br in 0..nb {
        // BTreeSet keeps iteration order deterministic so the generated
        // values are a pure function of the seed.
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(br); // diagonal block
        while cols.len() < blocks_per_row {
            cols.insert(rng.gen_range(0..nb));
        }
        for &bc in &cols {
            for i in 0..block_size {
                for j in 0..block_size {
                    triplets.push((
                        br * block_size + i,
                        bc * block_size + j,
                        random_value::<T>(&mut rng),
                    ));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

/// Like [`block_sparse`], but each block row draws its own block count
/// uniformly from `[1, max_blocks_per_row]`, giving the row-degree
/// variance real FEM/structural matrices show (which defeats ELL).
///
/// # Panics
///
/// Same conditions as [`block_sparse`], with `max_blocks_per_row` in
/// `1..=n / block_size`.
pub fn block_sparse_varied<T: Scalar>(
    n: usize,
    block_size: usize,
    max_blocks_per_row: usize,
    seed: u64,
) -> Csr<T> {
    assert!(n > 0 && block_size > 0, "empty matrix requested");
    assert!(
        n.is_multiple_of(block_size),
        "dimension {n} not a multiple of block size {block_size}"
    );
    let nb = n / block_size;
    assert!(
        max_blocks_per_row >= 1 && max_blocks_per_row <= nb,
        "max_blocks_per_row must be in 1..={nb}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for br in 0..nb {
        let bpr = rng.gen_range(1..=max_blocks_per_row);
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(br);
        while cols.len() < bpr.max(1) {
            cols.insert(rng.gen_range(0..nb));
        }
        for &bc in &cols {
            for i in 0..block_size {
                for j in 0..block_size {
                    triplets.push((
                        br * block_size + i,
                        bc * block_size + j,
                        random_value::<T>(&mut rng),
                    ));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varied_blocks_have_degree_variance() {
        let m = block_sparse_varied::<f64>(240, 4, 6, 3);
        let degs: std::collections::BTreeSet<usize> =
            (0..m.rows()).map(|r| m.row_degree(r)).collect();
        assert!(degs.len() > 2, "expected varied degrees, got {degs:?}");
        // Diagonal block is always present.
        for i in 0..m.rows() {
            assert!(m.get(i, (i / 4) * 4).is_some());
        }
        assert_eq!(
            block_sparse_varied::<f64>(240, 4, 6, 3),
            block_sparse_varied::<f64>(240, 4, 6, 3)
        );
    }

    #[test]
    fn block_structure() {
        let m = block_sparse::<f64>(32, 4, 2, 1);
        assert_eq!(m.nnz(), 8 * 2 * 16);
        // Every row inside a block row has the same degree.
        for br in 0..8 {
            let d0 = m.row_degree(br * 4);
            for i in 1..4 {
                assert_eq!(m.row_degree(br * 4 + i), d0);
            }
            assert_eq!(d0, 8); // 2 blocks * 4 wide
        }
    }

    #[test]
    fn diagonal_block_always_present() {
        let m = block_sparse::<f64>(24, 3, 1, 9);
        for i in 0..24 {
            assert!(m.get(i, (i / 3) * 3).is_some());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            block_sparse::<f32>(16, 4, 2, 4),
            block_sparse::<f32>(16, 4, 2, 4)
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_dimension_panics() {
        block_sparse::<f64>(10, 3, 1, 0);
    }
}

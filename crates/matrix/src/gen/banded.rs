//! Banded / multi-diagonal matrices with controllable diagonal occupancy.

use super::random::random_value;
use crate::{Csr, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an `n x n` matrix with nonzeros confined to the given
/// diagonal `offsets`, where each diagonal is occupied independently with
/// probability `density`.
///
/// `density = 1.0` yields "true diagonals" in the paper's sense
/// (`NTdiags_ratio = 1`): fully populated, DIA's best case. Lower
/// densities produce the partially-filled diagonals that hurt DIA via
/// zero fill — exactly the regime Figure 6(c) explores.
///
/// # Panics
///
/// Panics if `n == 0`, `offsets` is empty, `density` is outside `[0, 1]`,
/// or any offset magnitude is `>= n`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::banded;
///
/// let m = banded::<f64>(100, &[-1, 0, 1], 1.0, 42);
/// assert_eq!(m.nnz(), 99 + 100 + 99);
/// ```
pub fn banded<T: Scalar>(n: usize, offsets: &[isize], density: f64, seed: u64) -> Csr<T> {
    assert!(n > 0, "empty matrix requested");
    assert!(!offsets.is_empty(), "at least one diagonal required");
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    for &o in offsets {
        assert!(
            o.unsigned_abs() < n,
            "offset {o} out of range for dimension {n}"
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for &off in offsets {
        for r in 0..n {
            let c = r as isize + off;
            if c < 0 || c >= n as isize {
                continue;
            }
            if density >= 1.0 || rng.gen::<f64>() < density {
                triplets.push((r, c as usize, random_value::<T>(&mut rng)));
            }
        }
    }
    // Diagonals can overlap only if offsets repeat; from_triplets sums dups,
    // which keeps the structure correct either way.
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

/// The classic tridiagonal `[-1, 2, -1]` matrix (1-D Poisson).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn tridiagonal<T: Scalar>(n: usize) -> Csr<T> {
    assert!(n > 0, "empty matrix requested");
    let mut triplets = Vec::with_capacity(3 * n);
    for i in 0..n {
        if i > 0 {
            triplets.push((i, i - 1, T::from_f64(-1.0)));
        }
        triplets.push((i, i, T::from_f64(2.0)));
        if i + 1 < n {
            triplets.push((i, i + 1, T::from_f64(-1.0)));
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dia;

    #[test]
    fn full_density_gives_true_diagonals() {
        let m = banded::<f64>(64, &[-3, 0, 5], 1.0, 1);
        assert_eq!(m.nnz(), 61 + 64 + 59);
        let dia = Dia::from_csr(&m).unwrap();
        assert_eq!(dia.offsets(), &[-3, 0, 5]);
    }

    #[test]
    fn partial_density_thins_diagonals() {
        let m = banded::<f64>(1000, &[0], 0.5, 2);
        let nnz = m.nnz();
        assert!(nnz > 350 && nnz < 650, "nnz = {nnz}");
    }

    #[test]
    fn zero_density_gives_empty() {
        let m = banded::<f64>(10, &[0, 1], 0.0, 3);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn tridiagonal_structure() {
        let m = tridiagonal::<f64>(5);
        assert_eq!(m.nnz(), 13);
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(2, 1), Some(-1.0));
        assert_eq!(m.get(2, 3), Some(-1.0));
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            banded::<f32>(50, &[-1, 2], 0.7, 9),
            banded::<f32>(50, &[-1, 2], 0.7, 9)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_offset_panics() {
        banded::<f64>(10, &[10], 1.0, 0);
    }
}

//! The synthetic training/evaluation corpus — our stand-in for the
//! University of Florida sparse matrix collection.
//!
//! The paper trains on 2055 UF matrices and evaluates on the remaining
//! 331, spread over the 23 application domains of its Table 1. This
//! module generates a seeded mixture of structural archetypes covering
//! the same feature space (diagonal counts, fill ratios, degree variance,
//! power-law exponents), each tagged with the application domain its
//! structure is typical of, so Table 1's rows can be re-created.

use super::block::block_sparse_varied;
use super::random::random_skewed;
use super::{
    banded, fixed_degree, laplacian_2d_5pt, laplacian_2d_9pt, laplacian_3d_7pt, power_law,
};
use crate::{Csr, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Structural archetype a corpus matrix is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Archetype {
    /// Fully populated diagonals (paper's "true diagonals") — DIA's best
    /// case.
    TrueDiagonal,
    /// Partially populated diagonals — the DIA/CSR boundary Figure 6(c)
    /// probes.
    ScatteredDiagonal,
    /// PDE stencil on a regular grid (5/7/9-point Laplacian).
    Stencil,
    /// Near-constant row degree — ELL's best case.
    UniformDegree,
    /// Moderate row-degree variance — the ELL/CSR boundary Figure 6(d)
    /// probes.
    LowVarianceDegree,
    /// Scale-free graph with power-law row degrees — COO territory.
    PowerLawGraph,
    /// Unstructured random sparsity — CSR territory.
    RandomUnstructured,
    /// Dense sub-blocks on a block grid — CSR territory with locality.
    BlockSparse,
}

impl Archetype {
    /// All archetypes.
    pub const ALL: [Archetype; 8] = [
        Archetype::TrueDiagonal,
        Archetype::ScatteredDiagonal,
        Archetype::Stencil,
        Archetype::UniformDegree,
        Archetype::LowVarianceDegree,
        Archetype::PowerLawGraph,
        Archetype::RandomUnstructured,
        Archetype::BlockSparse,
    ];

    /// Application domains (from the paper's Table 1) whose matrices
    /// typically have this structure.
    pub fn domains(self) -> &'static [&'static str] {
        match self {
            Archetype::TrueDiagonal => &[
                "theoretical quantum chemistry",
                "electromagnetics",
                "materials",
            ],
            Archetype::ScatteredDiagonal => {
                &["computational fluid dynamics", "structural", "thermal"]
            }
            Archetype::Stencil => &["2D 3D", "computational fluid dynamics", "acoustics"],
            Archetype::UniformDegree => &["combinatorial", "least squares"],
            Archetype::LowVarianceDegree => &["combinatorial", "statistical mathematical"],
            Archetype::PowerLawGraph => &["graph", "circuit simulation", "model reduction"],
            Archetype::RandomUnstructured => &[
                "linear programming",
                "optimization",
                "economic",
                "chemical process simulation",
                "power network",
            ],
            Archetype::BlockSparse => &["structural", "semiconductor device", "robotics"],
        }
    }
}

/// One matrix of the corpus, with its provenance.
#[derive(Debug, Clone)]
pub struct CorpusEntry<T> {
    /// Unique synthetic name (plays the role of the UF matrix name).
    pub name: String,
    /// Application domain label (one of the paper's Table 1 rows).
    pub domain: &'static str,
    /// Which generator produced it.
    pub archetype: Archetype,
    /// The matrix itself, in the unified CSR interface format.
    pub matrix: Csr<T>,
}

/// Parameters of corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of matrices to generate.
    pub count: usize,
    /// RNG seed; the corpus is a pure function of the spec.
    pub seed: u64,
    /// Minimum matrix dimension.
    pub min_dim: usize,
    /// Maximum matrix dimension.
    pub max_dim: usize,
}

impl Default for CorpusSpec {
    /// A corpus sized like the paper's training set (~2000 matrices) but
    /// with laptop-scale dimensions.
    fn default() -> Self {
        Self {
            count: 2000,
            seed: 0x5AA7,
            min_dim: 256,
            max_dim: 4096,
        }
    }
}

impl CorpusSpec {
    /// A small corpus for unit tests and quick demos.
    pub fn small(count: usize, seed: u64) -> Self {
        Self {
            count,
            seed,
            min_dim: 64,
            max_dim: 512,
        }
    }
}

/// Generates the labeled corpus described by `spec`.
///
/// Archetypes are drawn with weights chosen so the *measured* best-format
/// distribution lands in the neighborhood of the paper's Table 1 split
/// (CSR 63%, COO 21%, DIA 9%, ELL 7%): unstructured/block/power-law
/// matrices dominate, diagonal and uniform-degree matrices are the
/// minority classes.
///
/// # Panics
///
/// Panics if `spec.count == 0` or `spec.min_dim < 16` or
/// `spec.max_dim < spec.min_dim`.
///
/// # Examples
///
/// ```
/// use smat_matrix::gen::{generate_corpus, CorpusSpec};
///
/// let corpus = generate_corpus::<f64>(&CorpusSpec::small(20, 1));
/// assert_eq!(corpus.len(), 20);
/// assert!(corpus.iter().all(|e| e.matrix.nnz() > 0));
/// ```
pub fn generate_corpus<T: Scalar>(spec: &CorpusSpec) -> Vec<CorpusEntry<T>> {
    assert!(spec.count > 0, "empty corpus requested");
    assert!(spec.min_dim >= 16, "min_dim must be at least 16");
    assert!(spec.max_dim >= spec.min_dim, "max_dim below min_dim");
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // (archetype, weight): tuned so measured format affinity approximates
    // Table 1's 63/21/9/7 split.
    const WEIGHTS: [(Archetype, u32); 8] = [
        (Archetype::TrueDiagonal, 4),
        (Archetype::ScatteredDiagonal, 4),
        (Archetype::Stencil, 3),
        (Archetype::UniformDegree, 3),
        (Archetype::LowVarianceDegree, 2),
        (Archetype::PowerLawGraph, 27),
        (Archetype::RandomUnstructured, 42),
        (Archetype::BlockSparse, 15),
    ];
    let total: u32 = WEIGHTS.iter().map(|&(_, w)| w).sum();

    let mut corpus = Vec::with_capacity(spec.count);
    for i in 0..spec.count {
        let mut pick = rng.gen_range(0..total);
        let archetype = WEIGHTS
            .iter()
            .find(|&&(_, w)| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("weights cover range")
            .0;
        let seed = rng.gen::<u64>();
        let matrix = generate_one::<T>(archetype, spec, &mut rng, seed);
        let domains = archetype.domains();
        let domain = domains[rng.gen_range(0..domains.len())];
        corpus.push(CorpusEntry {
            name: format!("syn_{:?}_{i:05}", archetype).to_lowercase(),
            domain,
            archetype,
            matrix,
        });
    }
    corpus
}

/// Log-uniform dimension draw in `[min_dim, max_dim]`.
fn draw_dim(rng: &mut SmallRng, spec: &CorpusSpec) -> usize {
    let lo = (spec.min_dim as f64).ln();
    let hi = (spec.max_dim as f64).ln();
    (lo + rng.gen::<f64>() * (hi - lo)).exp().round() as usize
}

fn generate_one<T: Scalar>(
    archetype: Archetype,
    spec: &CorpusSpec,
    rng: &mut SmallRng,
    seed: u64,
) -> Csr<T> {
    let n = draw_dim(rng, spec).max(16);
    match archetype {
        Archetype::TrueDiagonal => {
            let ndiags = rng.gen_range(3..=11);
            let offsets = draw_offsets(rng, n, ndiags);
            let density = 0.92 + 0.08 * rng.gen::<f64>();
            banded(n, &offsets, density, seed)
        }
        Archetype::ScatteredDiagonal => {
            let ndiags = rng.gen_range(5..=25.min(n / 4).max(6));
            let offsets = draw_offsets(rng, n, ndiags);
            let density = 0.25 + 0.5 * rng.gen::<f64>();
            banded(n, &offsets, density, seed)
        }
        Archetype::Stencil => {
            let side = ((n as f64).sqrt() as usize).max(4);
            match rng.gen_range(0..3) {
                0 => laplacian_2d_5pt(side, side),
                1 => laplacian_2d_9pt(side, side),
                _ => {
                    let s3 = ((n as f64).cbrt() as usize).max(3);
                    laplacian_3d_7pt(s3, s3, s3)
                }
            }
        }
        Archetype::UniformDegree => {
            let deg = rng.gen_range(4..=24).min(n / 2).max(1);
            fixed_degree(n, n, deg, rng.gen_range(0..=1).min(deg - 1), seed)
        }
        Archetype::LowVarianceDegree => {
            let deg = rng.gen_range(6..=24).min(n / 2).max(3);
            let jitter = rng.gen_range(2..=3).min(deg - 1);
            fixed_degree(n, n, deg, jitter, seed)
        }
        Archetype::PowerLawGraph => {
            let exponent = 1.2 + 2.3 * rng.gen::<f64>(); // in the paper's [1, 4] window
            let max_deg = (n / 4).clamp(8, 512);
            power_law(n, max_deg, exponent, seed)
        }
        Archetype::RandomUnstructured => {
            // Skewed degrees: the occasional heavy row is what keeps real
            // unstructured matrices out of ELL's comfort zone.
            let avg = rng.gen_range(2..=32).min(n / 8).max(1);
            let heavy_fraction = 0.02 + 0.06 * rng.gen::<f64>();
            let heavy_factor = rng.gen_range(6..=16);
            random_skewed(n, n, avg, heavy_fraction, heavy_factor, seed)
        }
        Archetype::BlockSparse => {
            let bs = [2usize, 3, 4, 6, 8][rng.gen_range(0..5)];
            let n = (n / bs).max(2) * bs;
            let nb = n / bs;
            let max_bpr = rng.gen_range(2..=6).min(nb);
            block_sparse_varied(n, bs, max_bpr, seed)
        }
    }
}

/// Draws `ndiags` distinct diagonal offsets, always including 0, biased
/// toward the principal diagonal as real banded matrices are.
fn draw_offsets(rng: &mut SmallRng, n: usize, ndiags: usize) -> Vec<isize> {
    let mut set = std::collections::BTreeSet::new();
    set.insert(0isize);
    let max_off = (n as isize - 1).min(n as isize / 2).max(1);
    while set.len() < ndiags {
        // Geometric-ish spread: small offsets are more likely.
        let mag = (rng.gen::<f64>().powi(2) * max_off as f64) as isize;
        let off = if rng.gen::<bool>() { mag } else { -mag };
        if off.unsigned_abs() < n {
            set.insert(off);
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus::<f64>(&CorpusSpec::small(30, 5));
        let b = generate_corpus::<f64>(&CorpusSpec::small(30, 5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn corpus_covers_archetypes() {
        let corpus = generate_corpus::<f64>(&CorpusSpec::small(200, 1));
        let mut seen = std::collections::HashSet::new();
        for e in &corpus {
            seen.insert(e.archetype);
        }
        assert!(seen.len() >= 7, "only {} archetypes appeared", seen.len());
    }

    #[test]
    fn matrices_are_valid_and_nonempty() {
        for e in generate_corpus::<f64>(&CorpusSpec::small(60, 2)) {
            assert!(e.matrix.nnz() > 0, "{} empty", e.name);
            e.matrix.validate().unwrap();
            assert!(!e.domain.is_empty());
        }
    }

    #[test]
    fn dims_within_spec() {
        let spec = CorpusSpec {
            count: 50,
            seed: 3,
            min_dim: 100,
            max_dim: 300,
        };
        for e in generate_corpus::<f64>(&spec) {
            // BlockSparse rounds down to a block multiple; stencils round to
            // grid powers — allow slack.
            assert!(e.matrix.rows() >= 27, "{} too small", e.name);
            assert!(e.matrix.rows() <= 350, "{} too large", e.name);
        }
    }

    #[test]
    fn domain_labels_come_from_archetype() {
        for e in generate_corpus::<f64>(&CorpusSpec::small(40, 7)) {
            assert!(e.archetype.domains().contains(&e.domain));
        }
    }

    #[test]
    fn unstructured_dominates_mixture() {
        let corpus = generate_corpus::<f64>(&CorpusSpec::small(400, 11));
        let unstructured = corpus
            .iter()
            .filter(|e| {
                matches!(
                    e.archetype,
                    Archetype::RandomUnstructured | Archetype::BlockSparse
                )
            })
            .count();
        let diag = corpus
            .iter()
            .filter(|e| matches!(e.archetype, Archetype::TrueDiagonal | Archetype::Stencil))
            .count();
        assert!(unstructured > diag, "{unstructured} vs {diag}");
    }
}

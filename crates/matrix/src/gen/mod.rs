//! Synthetic sparse matrix generators.
//!
//! The paper trains and evaluates SMAT on 2386 matrices from the
//! University of Florida sparse matrix collection. That collection is not
//! bundled here; instead these generators produce seeded, reproducible
//! matrices spanning the same *structural archetypes* the collection
//! covers (see `DESIGN.md` §5 for the substitution argument):
//!
//! * [`stencil`] — PDE discretizations (DIA-friendly, CFD/structural
//!   domains);
//! * [`mod@banded`] — general multi-diagonal matrices with controllable
//!   "true diagonal" ratio;
//! * [`random`] — uniform and fixed-degree random matrices (CSR/ELL
//!   territory);
//! * [`powerlaw`] — scale-free graphs (COO territory, the paper's
//!   small-world observation);
//! * [`block`] — block-sparse matrices (linear programming/optimization
//!   style);
//! * [`corpus`] — a labeled mixture of all of the above standing in for
//!   the UF collection.

pub mod banded;
pub mod block;
pub mod corpus;
pub mod powerlaw;
pub mod random;
pub mod stencil;

pub use banded::{banded, tridiagonal};
pub use block::{block_sparse, block_sparse_varied};
pub use corpus::{generate_corpus, Archetype, CorpusEntry, CorpusSpec};
pub use powerlaw::power_law;
pub use random::{fixed_degree, random_skewed, random_uniform};
pub use stencil::{laplacian_1d, laplacian_2d_5pt, laplacian_2d_9pt, laplacian_3d_7pt};

//! PDE stencil matrices (discrete Laplacians).
//!
//! These are the inputs of the paper's AMG experiments: Table 4 uses
//! 7-point (3-D) and 9-point (2-D) Laplacians, and Figure 1's fine-grid
//! operators are exactly such stencils — strongly diagonal matrices that
//! favor DIA.

use crate::{Csr, Scalar};

/// 1-D Laplacian (tridiagonal `[-1, 2, -1]`) on `n` points.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn laplacian_1d<T: Scalar>(n: usize) -> Csr<T> {
    super::banded::tridiagonal(n)
}

/// 2-D 5-point Laplacian on an `nx x ny` grid (dimension `nx * ny`).
///
/// Stencil: center `4`, the four axis neighbors `-1`.
///
/// # Panics
///
/// Panics if `nx == 0 || ny == 0`.
pub fn laplacian_2d_5pt<T: Scalar>(nx: usize, ny: usize) -> Csr<T> {
    assert!(nx > 0 && ny > 0, "empty grid requested");
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut triplets = Vec::with_capacity(5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let row = idx(i, j);
            triplets.push((row, row, T::from_f64(4.0)));
            if i > 0 {
                triplets.push((row, idx(i - 1, j), T::from_f64(-1.0)));
            }
            if i + 1 < nx {
                triplets.push((row, idx(i + 1, j), T::from_f64(-1.0)));
            }
            if j > 0 {
                triplets.push((row, idx(i, j - 1), T::from_f64(-1.0)));
            }
            if j + 1 < ny {
                triplets.push((row, idx(i, j + 1), T::from_f64(-1.0)));
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

/// 2-D 9-point Laplacian on an `nx x ny` grid: center `8`, all eight
/// neighbors `-1` (the paper's "rugeL 9pt" input).
///
/// # Panics
///
/// Panics if `nx == 0 || ny == 0`.
pub fn laplacian_2d_9pt<T: Scalar>(nx: usize, ny: usize) -> Csr<T> {
    assert!(nx > 0 && ny > 0, "empty grid requested");
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut triplets = Vec::with_capacity(9 * n);
    for i in 0..nx {
        for j in 0..ny {
            let row = idx(i, j);
            triplets.push((row, row, T::from_f64(8.0)));
            for di in -1isize..=1 {
                for dj in -1isize..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if ni < 0 || nj < 0 || ni >= nx as isize || nj >= ny as isize {
                        continue;
                    }
                    triplets.push((row, idx(ni as usize, nj as usize), T::from_f64(-1.0)));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

/// 3-D 7-point Laplacian on an `nx x ny x nz` grid: center `6`, the six
/// axis neighbors `-1` (the paper's "cljp 7pt" input).
///
/// # Panics
///
/// Panics if any grid dimension is zero.
pub fn laplacian_3d_7pt<T: Scalar>(nx: usize, ny: usize, nz: usize) -> Csr<T> {
    assert!(nx > 0 && ny > 0 && nz > 0, "empty grid requested");
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut triplets = Vec::with_capacity(7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let row = idx(i, j, k);
                triplets.push((row, row, T::from_f64(6.0)));
                if i > 0 {
                    triplets.push((row, idx(i - 1, j, k), T::from_f64(-1.0)));
                }
                if i + 1 < nx {
                    triplets.push((row, idx(i + 1, j, k), T::from_f64(-1.0)));
                }
                if j > 0 {
                    triplets.push((row, idx(i, j - 1, k), T::from_f64(-1.0)));
                }
                if j + 1 < ny {
                    triplets.push((row, idx(i, j + 1, k), T::from_f64(-1.0)));
                }
                if k > 0 {
                    triplets.push((row, idx(i, j, k - 1), T::from_f64(-1.0)));
                }
                if k + 1 < nz {
                    triplets.push((row, idx(i, j, k + 1), T::from_f64(-1.0)));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets).expect("generator produces in-bounds triplets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dia;

    #[test]
    fn laplacian_2d_5pt_structure() {
        let m = laplacian_2d_5pt::<f64>(3, 3);
        assert_eq!(m.rows(), 9);
        // Interior point (1,1) = row 4 has full 5-point stencil.
        assert_eq!(m.row_degree(4), 5);
        assert_eq!(m.get(4, 4), Some(4.0));
        assert_eq!(m.get(4, 1), Some(-1.0));
        // Corner has 3 entries.
        assert_eq!(m.row_degree(0), 3);
    }

    #[test]
    fn laplacian_2d_5pt_has_five_diagonals() {
        let m = laplacian_2d_5pt::<f64>(8, 8);
        let dia = Dia::from_csr(&m).unwrap();
        assert_eq!(dia.ndiags(), 5);
        assert_eq!(dia.offsets(), &[-8, -1, 0, 1, 8]);
    }

    #[test]
    fn laplacian_9pt_interior_degree() {
        let m = laplacian_2d_9pt::<f64>(4, 4);
        let interior = 4 + 1;
        assert_eq!(m.row_degree(interior), 9);
        assert_eq!(m.get(interior, interior), Some(8.0));
    }

    #[test]
    fn laplacian_3d_7pt_structure() {
        let m = laplacian_3d_7pt::<f64>(3, 3, 3);
        assert_eq!(m.rows(), 27);
        let center = (3 + 1) * 3 + 1;
        assert_eq!(m.row_degree(center), 7);
        assert_eq!(m.get(center, center), Some(6.0));
        let dia = Dia::from_csr(&m).unwrap();
        assert_eq!(dia.ndiags(), 7);
    }

    #[test]
    fn laplacians_are_symmetric() {
        for m in [
            laplacian_2d_5pt::<f64>(5, 7),
            laplacian_2d_9pt::<f64>(6, 4),
            laplacian_3d_7pt::<f64>(3, 4, 2),
        ] {
            assert_eq!(m.transpose(), m);
        }
    }

    #[test]
    fn row_sums_are_nonnegative() {
        // Diagonal dominance: boundary rows have positive sum, interior zero.
        let m = laplacian_2d_5pt::<f64>(10, 10);
        for r in 0..m.rows() {
            let (_, vals) = m.row(r);
            let s: f64 = vals.iter().sum();
            assert!(s >= -1e-12);
        }
    }
}

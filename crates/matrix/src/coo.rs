//! COOrdinate (COO) storage.
//!
//! COO stores row indices explicitly (Figure 2(b) of the paper). SMAT keeps
//! it as a candidate because it "usually performs better in large scale
//! graph analysis applications" — matrices with power-law row degree
//! distributions where CSR's per-row loop suffers extreme imbalance.

use crate::error::{MatrixError, Result};
use crate::Scalar;
use serde::{Deserialize, Serialize};

/// A sparse matrix in COOrdinate (triplet) format.
///
/// Entries are kept sorted by `(row, col)` and duplicate-free; constructors
/// establish this invariant. Sorted order makes the sequential kernel's
/// writes to `y` cache-friendly and lets the parallel kernel partition
/// entries into contiguous row ranges.
///
/// # Examples
///
/// ```
/// use smat_matrix::{Coo, Csr};
///
/// let csr = Csr::<f64>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)])?;
/// let coo = Coo::from_csr(&csr);
/// assert_eq!(coo.row_idx(), &[0, 1]);
/// assert_eq!(coo.to_csr(), csr);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo<T> {
    rows: usize,
    cols: usize,
    row_idx: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Coo<T> {
    /// Builds a COO matrix from parallel index/value arrays, sorting by
    /// `(row, col)` and summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if the arrays have
    /// different lengths, or [`MatrixError::IndexOutOfBounds`] if an index
    /// exceeds the dimensions.
    pub fn new(
        rows: usize,
        cols: usize,
        row_idx: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_idx.len() != col_idx.len() || col_idx.len() != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "coo arrays have different lengths: {} rows, {} cols, {} values",
                row_idx.len(),
                col_idx.len(),
                values.len()
            )));
        }
        for (&r, &c) in row_idx.iter().zip(&col_idx) {
            if r >= rows || c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        let mut entries: Vec<(usize, usize, T)> = row_idx
            .into_iter()
            .zip(col_idx)
            .zip(values)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            if row_idx.last() == Some(&r) && col_idx.last() == Some(&c) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                row_idx.push(r);
                col_idx.push(c);
                values.push(v);
            }
        }
        Ok(Self {
            rows,
            cols,
            row_idx,
            col_idx,
            values,
        })
    }

    /// Converts a CSR matrix to COO (cheap: one pass expanding row
    /// pointers into explicit row indices).
    pub fn from_csr(csr: &crate::Csr<T>) -> Self {
        let mut row_idx = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            let deg = csr.row_degree(r);
            row_idx.extend(std::iter::repeat_n(r, deg));
        }
        Self {
            rows: csr.rows(),
            cols: csr.cols(),
            row_idx,
            col_idx: csr.col_idx().to_vec(),
            values: csr.values().to_vec(),
        }
    }

    /// Converts back to CSR (cheap: row indices are already sorted).
    pub fn to_csr(&self) -> crate::Csr<T> {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        crate::Csr::from_parts_unchecked(
            self.rows,
            self.cols,
            row_ptr,
            self.col_idx.clone(),
            self.values.clone(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row index of each stored entry (`rows` array in Figure 2(b)).
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Column index of each stored entry (`cols` array in Figure 2(b)).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values (`data` array in Figure 2(b)).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterates over stored entries as `(row, col, value)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.row_idx
            .iter()
            .zip(&self.col_idx)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Reference SpMV `y = A * x` following the paper's Figure 2(b) loop.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on vector length
    /// mismatch.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "coo spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "coo spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        y.fill(T::ZERO);
        for i in 0..self.values.len() {
            y[self.row_idx[i]] += self.values[i] * x[self.col_idx[i]];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn example_csr() -> Csr<f64> {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_layout() {
        let coo = Coo::from_csr(&example_csr());
        assert_eq!(coo.row_idx(), &[0, 0, 1, 1, 2, 2, 2, 3, 3]);
        assert_eq!(coo.col_idx(), &[0, 1, 1, 2, 0, 2, 3, 1, 3]);
        assert_eq!(coo.values(), &[1.0, 5.0, 2.0, 6.0, 8.0, 3.0, 7.0, 9.0, 4.0]);
    }

    #[test]
    fn round_trip_csr() {
        let csr = example_csr();
        assert_eq!(Coo::from_csr(&csr).to_csr(), csr);
    }

    #[test]
    fn new_sorts_and_merges() {
        let coo = Coo::new(2, 2, vec![1, 0, 1], vec![0, 1, 0], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.row_idx(), &[0, 1]);
        assert_eq!(coo.values(), &[2.0, 4.0]);
    }

    #[test]
    fn new_validates() {
        assert!(Coo::<f64>::new(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(Coo::<f64>::new(2, 2, vec![2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = example_csr();
        let coo = Coo::from_csr(&csr);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [7.0; 4]; // pre-filled garbage must be overwritten
        csr.spmv(&x, &mut y1).unwrap();
        coo.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_dimension_errors() {
        let coo = Coo::from_csr(&example_csr());
        let mut y = [0.0; 4];
        assert!(coo.spmv(&[0.0; 2], &mut y).is_err());
        assert!(coo.spmv(&[0.0; 4], &mut y[..1]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let coo = Coo::<f64>::new(0, 0, vec![], vec![], vec![]).unwrap();
        assert_eq!(coo.nnz(), 0);
        let mut y: [f64; 0] = [];
        coo.spmv(&[], &mut y).unwrap();
    }
}

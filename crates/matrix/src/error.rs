//! Error types for sparse matrix construction, conversion and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix constructors, format conversions and the
/// Matrix Market reader/writer.
#[derive(Debug)]
#[non_exhaustive]
pub enum MatrixError {
    /// Dimensions of two operands (or a matrix and a vector) disagree.
    DimensionMismatch {
        /// What was being attempted, e.g. `"spmv"`.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Extent actually supplied.
        found: usize,
    },
    /// A structural invariant of a storage format was violated
    /// (non-monotone row pointers, column index out of range, ...).
    InvalidStructure(String),
    /// An index exceeded the matrix dimensions.
    IndexOutOfBounds {
        /// Row index requested.
        row: usize,
        /// Column index requested.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Converting to the requested format would exceed the configured
    /// memory budget (e.g. a DIA conversion of a matrix with too many
    /// occupied diagonals, which the paper notes causes "high zero-filling
    /// ratio").
    ConversionTooExpensive {
        /// Target format name.
        format: &'static str,
        /// Number of explicitly stored entries the conversion would allocate.
        would_store: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Converting to the requested format would allocate more bytes than
    /// the caller's memory budget allows. Unlike
    /// [`MatrixError::ConversionTooExpensive`] (a fill-ratio heuristic),
    /// this is a hard cap on estimated allocation, checked *before* any
    /// storage is reserved.
    BudgetExceeded {
        /// Target format name.
        format: &'static str,
        /// Bytes the conversion would need to allocate.
        required_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// Failure parsing a Matrix Market stream.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            MatrixError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            MatrixError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            MatrixError::ConversionTooExpensive {
                format,
                would_store,
                limit,
            } => write!(
                f,
                "conversion to {format} would store {would_store} entries, above the limit of {limit}"
            ),
            MatrixError::BudgetExceeded {
                format,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "conversion to {format} would allocate {required_bytes} bytes, above the budget of {budget_bytes}"
            ),
            MatrixError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            MatrixError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for MatrixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MatrixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e)
    }
}

/// Convenient result alias used throughout the matrix crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MatrixError::DimensionMismatch {
            context: "spmv",
            expected: 4,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains("spmv"));
        assert!(s.contains('4') && s.contains('3'));

        let e = MatrixError::ConversionTooExpensive {
            format: "DIA",
            would_store: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("DIA"));

        let e = MatrixError::BudgetExceeded {
            format: "ELL",
            required_bytes: 1 << 30,
            budget_bytes: 1 << 20,
        };
        let s = e.to_string();
        assert!(s.contains("ELL") && s.contains("budget"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = MatrixError::from(io);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}

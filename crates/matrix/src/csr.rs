//! Compressed Sparse Row (CSR) storage.
//!
//! CSR is SMAT's *default and unified interface format*: the paper's
//! statistical study (Table 1) found 63% of the 2386 UF matrices favor CSR,
//! so every matrix enters the auto-tuner as CSR and is converted outward
//! only when the learned model predicts another format will win.

use crate::error::{MatrixError, Result};
use crate::Scalar;
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Row format.
///
/// Three arrays, exactly as in Figure 2(a) of the paper:
///
/// * `values` ("data") — the nonzero elements, row by row;
/// * `col_idx` ("indices") — the column of each stored element;
/// * `row_ptr` ("ptr") — `row_ptr[i]..row_ptr[i+1]` is the slice of
///   `values`/`col_idx` holding row `i`.
///
/// Within a row, column indices are kept sorted and unique; constructors
/// enforce this (sorting on entry where necessary) because several kernels
/// and the feature extractor rely on it.
///
/// # Examples
///
/// ```
/// use smat_matrix::Csr;
///
/// // [ 1 5 . . ]
/// // [ . 2 6 . ]
/// // [ 8 . 3 7 ]
/// // [ . 9 . 4 ]
/// let m = Csr::<f64>::from_triplets(
///     4,
///     4,
///     &[
///         (0, 0, 1.0), (0, 1, 5.0),
///         (1, 1, 2.0), (1, 2, 6.0),
///         (2, 0, 8.0), (2, 2, 3.0), (2, 3, 7.0),
///         (3, 1, 9.0), (3, 3, 4.0),
///     ],
/// )?;
/// assert_eq!(m.nnz(), 9);
/// assert_eq!(m.get(2, 3), Some(7.0));
/// assert_eq!(m.get(0, 3), None);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Builds a CSR matrix from raw arrays, validating every structural
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if `row_ptr` does not have
    /// `rows + 1` entries, is non-monotone, does not end at
    /// `col_idx.len()`, if `col_idx` and `values` lengths disagree, if any
    /// column index is out of range, or if a row's column indices are not
    /// strictly increasing.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr has {} entries, expected rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(MatrixError::InvalidStructure(
                "row_ptr must start at 0".into(),
            ));
        }
        if row_ptr[rows] != col_idx.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr must end at nnz = {}, ends at {}",
                col_idx.len(),
                row_ptr[rows]
            )));
        }
        if col_idx.len() != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "col_idx ({}) and values ({}) lengths differ",
                col_idx.len(),
                values.len()
            )));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidStructure(
                    "row_ptr must be non-decreasing".into(),
                ));
            }
        }
        for r in 0..rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {r} column indices must be strictly increasing"
                    )));
                }
            }
            if let Some(&c) = row.last() {
                if c >= cols {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {r} has column index {c} >= cols = {cols}"
                    )));
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from raw arrays **without** validating
    /// invariants.
    ///
    /// Intended for converters and generators that construct the arrays in
    /// sorted order by design; all safe code can call it, but violating the
    /// documented CSR invariants leads to wrong results or panics in
    /// kernels later.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may be unsorted; duplicate coordinates are summed (the
    /// Matrix Market convention). Explicit zeros are kept — sparsity
    /// *structure* is meaningful to the auto-tuner independent of values.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if a triplet lies outside
    /// `rows x cols`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, T)]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        // Counting sort by row, then sort each row by column and merge dups.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut scratch: Vec<(usize, T)> = vec![(0, T::ZERO); triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            scratch[next[r]] = (c, v);
            next[r] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let row = &mut scratch[counts[r]..counts[r + 1]];
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let (c, mut v) = row[i];
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from a dense row-major array, storing every
    /// element whose absolute value exceeds `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols`.
    pub fn from_dense(rows: usize, cols: usize, dense: &[T], threshold: T) -> Self {
        assert_eq!(dense.len(), rows * cols, "dense array has wrong length");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v.abs() > threshold {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// Number of rows (the paper's parameter `M`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the paper's parameter `N`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (the paper's parameter `NNZ`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row pointer array (`ptr` in the paper's Figure 2).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (`indices` in the paper's Figure 2).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values (`data` in the paper's Figure 2).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_degree(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[T]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Looks up element `(r, c)`, returning `None` for a structurally
    /// absent entry.
    pub fn get(&self, r: usize, c: usize) -> Option<T> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            csr: self,
            row: 0,
            pos: 0,
        }
    }

    /// The transpose, as a new CSR matrix.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let ptr = counts.clone();
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![T::ZERO; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = counts[c];
                col_idx[dst] = r;
                values[dst] = self.values[k];
                counts[c] += 1;
            }
        }
        Self {
            rows: self.cols,
            cols: self.rows,
            row_ptr: ptr,
            col_idx,
            values,
        }
    }

    /// The main-diagonal entries, `T::ZERO` where absent.
    pub fn diagonal(&self) -> Vec<T> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i).unwrap_or(T::ZERO)).collect()
    }

    /// Densifies the matrix (row-major). Intended for tests and tiny
    /// matrices only.
    pub fn to_dense(&self) -> Vec<T> {
        let mut dense = vec![T::ZERO; self.rows * self.cols];
        for (r, c, v) in self.iter() {
            dense[r * self.cols + c] = v;
        }
        dense
    }

    /// Reference (textbook) SpMV: `y = A * x`. Kernels in `smat-kernels`
    /// are validated against this implementation.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `x.len() != cols` or
    /// `y.len() != rows`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> Result<()> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "spmv x",
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "spmv y",
                expected: self.rows,
                found: y.len(),
            });
        }
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Scales every stored value by `factor`.
    pub fn scale(&mut self, factor: T) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Drops stored entries with `|v| <= threshold`, compacting storage.
    pub fn prune(&self, threshold: T) -> Self {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.rows {
            let (cs, vs) = self.row(r);
            for (&c, &v) in cs.iter().zip(vs) {
                if v.abs() > threshold {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The position of the first non-finite stored value (NaN or
    /// infinity), or `None` when every value is finite.
    ///
    /// The SMAT runtime screens inputs with this before tuning: a
    /// poisoned value would propagate through every candidate
    /// measurement and into the product, so such matrices are served in
    /// degraded mode instead of being tuned and cached.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        for r in 0..self.rows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for k in span {
                if !self.values[k].is_finite() {
                    return Some((r, self.col_idx[k]));
                }
            }
        }
        None
    }

    /// Verifies all structural invariants, returning a description of the
    /// first violation. Useful in tests and after unchecked construction.
    pub fn validate(&self) -> Result<()> {
        Self::new(
            self.rows,
            self.cols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.values.clone(),
        )
        .map(|_| ())
    }
}

/// Iterator over `(row, col, value)` entries of a [`Csr`] matrix, produced
/// by [`Csr::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    csr: &'a Csr<T>,
    row: usize,
    pos: usize,
}

impl<T: Scalar> Iterator for Iter<'_, T> {
    type Item = (usize, usize, T);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.csr.rows {
            if self.pos < self.csr.row_ptr[self.row + 1] {
                let k = self.pos;
                self.pos += 1;
                return Some((self.row, self.csr.col_idx[k], self.csr.values[k]));
            }
            self.row += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.csr.nnz() - self.pos;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr<f64> {
        // The paper's Figure 2 example matrix:
        // [ 1 5 . . ]
        // [ . 2 6 . ]
        // [ 8 . 3 7 ]
        // [ . 9 . 4 ]
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_layout() {
        let m = example();
        assert_eq!(m.row_ptr(), &[0, 2, 4, 7, 9]);
        assert_eq!(m.col_idx(), &[0, 1, 1, 2, 0, 2, 3, 1, 3]);
        assert_eq!(m.values(), &[1.0, 5.0, 2.0, 6.0, 8.0, 3.0, 7.0, 9.0, 4.0]);
    }

    #[test]
    fn from_triplets_unsorted_and_duplicates() {
        let m =
            Csr::<f64>::from_triplets(2, 2, &[(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0), (0, 1, -1.0)])
                .unwrap();
        assert_eq!(m.get(1, 1), Some(4.0));
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn from_triplets_out_of_bounds() {
        let e = Csr::<f64>::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(e, MatrixError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn new_rejects_bad_row_ptr() {
        assert!(Csr::<f64>::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::<f64>::new(2, 2, vec![1, 1, 1], vec![], vec![]).is_err());
        assert!(Csr::<f64>::new(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::<f64>::new(2, 2, vec![0, 0, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn new_rejects_bad_columns() {
        // out of range
        assert!(Csr::<f64>::new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted within a row
        assert!(Csr::<f64>::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // duplicate within a row
        assert!(Csr::<f64>::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = example();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        m.spmv(&x, &mut y).unwrap();
        assert_eq!(y, [11.0, 22.0, 45.0, 34.0]);
    }

    #[test]
    fn spmv_dimension_errors() {
        let m = example();
        let mut y = [0.0; 4];
        assert!(m.spmv(&[1.0; 3], &mut y).is_err());
        assert!(m.spmv(&[1.0; 4], &mut y[..3]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = example();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.get(1, 0), Some(5.0));
        assert_eq!(t.get(3, 2), Some(7.0));
        let tt = t.transpose();
        assert_eq!(tt, m);
        t.validate().unwrap();
    }

    #[test]
    fn identity_behaves() {
        let i = Csr::<f64>::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        i.spmv(&x, &mut y).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn diagonal_and_dense() {
        let m = example();
        assert_eq!(m.diagonal(), vec![1.0, 2.0, 3.0, 4.0]);
        let d = m.to_dense();
        assert_eq!(d[0], 1.0);
        assert_eq!(d[2 * 4 + 3], 7.0);
        assert_eq!(d[4], 0.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut m = example();
        m.values_mut()[0] = 1e-12;
        let p = m.prune(1e-9);
        assert_eq!(p.nnz(), 8);
        assert_eq!(p.get(0, 0), None);
        p.validate().unwrap();
    }

    #[test]
    fn iter_yields_sorted_triplets() {
        let m = example();
        let tri: Vec<_> = m.iter().collect();
        assert_eq!(tri.len(), 9);
        assert_eq!(tri[0], (0, 0, 1.0));
        assert_eq!(tri[8], (3, 3, 4.0));
        assert!(tri.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let m = Csr::<f64>::from_triplets(3, 3, &[(1, 1, 1.0)]).unwrap();
        assert_eq!(m.row_degree(0), 0);
        assert_eq!(m.row_degree(1), 1);
        let z = Csr::<f64>::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(z.nnz(), 0);
        let mut y: [f64; 0] = [];
        z.spmv(&[], &mut y).unwrap();
    }

    #[test]
    fn from_dense_round_trip() {
        let m = example();
        let d = m.to_dense();
        let back = Csr::from_dense(4, 4, &d, 0.0);
        assert_eq!(back, m);
    }

    #[test]
    fn first_non_finite_locates_poison() {
        let mut m = example();
        assert_eq!(m.first_non_finite(), None);
        m.values_mut()[5] = f64::NAN; // entry (2, 2)
        assert_eq!(m.first_non_finite(), Some((2, 2)));
        m.values_mut()[5] = 3.0;
        m.values_mut()[8] = f64::INFINITY; // entry (3, 3)
        assert_eq!(m.first_non_finite(), Some((3, 3)));
    }

    #[test]
    fn scale_changes_values() {
        let mut m = example();
        m.scale(2.0);
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(3, 3), Some(8.0));
    }
}

//! The [`Scalar`] abstraction over the numeric element types supported by
//! the SMAT reproduction.
//!
//! The paper evaluates every kernel in both single precision (`float`) and
//! double precision (`double`); all formats, kernels and solvers in this
//! workspace are generic over [`Scalar`] so the same code paths serve both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type for sparse matrices and vectors.
///
/// Implemented for [`f32`] and [`f64`]. The trait is sealed: the kernel
/// library makes precision-specific decisions (e.g. the paper reports
/// separate single/double rulesets), so downstream implementations are not
/// supported.
///
/// # Examples
///
/// ```
/// use smat_matrix::Scalar;
///
/// fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
///     a.iter().zip(b).map(|(&x, &y)| x * y).sum()
/// }
///
/// assert_eq!(dot(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
    + private::Sealed
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Human-readable precision name used in reports ("single" / "double").
    const PRECISION_NAME: &'static str;
    /// Bytes per element (4 for `f32`, 8 for `f64`).
    const BYTES: usize;

    /// Lossy conversion from `f64` (used by generators and test fixtures).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by feature extraction and stats).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or at least fused-looking) multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Machine epsilon for the type.
    fn epsilon() -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const PRECISION_NAME: &'static str = $name;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self * a + b
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
        }
    };
}

impl_scalar!(f32, "single");
impl_scalar!(f64, "double");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f32::PRECISION_NAME, "single");
        assert_eq!(f64::PRECISION_NAME, "double");
    }

    #[test]
    fn conversions_round_trip() {
        let v = 3.25f64;
        assert_eq!(f64::from_f64(v).to_f64(), v);
        assert_eq!(f32::from_f64(v).to_f64(), 3.25f64);
    }

    #[test]
    fn arithmetic_helpers() {
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!(4.0f32.sqrt(), 2.0);
        assert_eq!(2.0f64.mul_add(3.0, 1.0), 7.0);
        assert!(1.0f32.is_finite());
        assert!(!(f64::INFINITY).is_finite());
    }

    #[test]
    fn generic_sum_works() {
        fn total<T: Scalar>(v: &[T]) -> T {
            v.iter().copied().sum()
        }
        assert_eq!(total(&[1.0f32, 2.0, 3.0]), 6.0);
        assert_eq!(total(&[1.5f64, 2.5]), 4.0);
    }
}

//! The SpMV kernel library of the SMAT (PLDI'13) reproduction.
//!
//! This crate holds the architecture-level half of SMAT's co-tuning:
//!
//! * per-format kernel variants ([`csr`], [`coo`], [`dia`], [`ell`])
//!   composed from the optimization [`Strategy`] set (unrolling,
//!   multithreading, load balancing);
//! * the [`KernelLibrary`] registry addressing every variant by
//!   `(format, index)`;
//! * the offline kernel [`search`]: performance-record table plus the
//!   paper's scoreboard algorithm (§5.2);
//! * MKL-style [`mod@reference`] baselines used by the Figure 10 comparison;
//! * [`timing`] helpers shared with the runtime's execute-and-measure
//!   fallback.
//!
//! # Examples
//!
//! Search for the best kernels on this machine, then run the chosen CSR
//! kernel:
//!
//! ```
//! use smat_kernels::{search_kernels, KernelLibrary};
//! use smat_matrix::{gen::random_uniform, Format};
//! use std::time::Duration;
//!
//! let lib = KernelLibrary::<f64>::new();
//! let probe = random_uniform::<f64>(500, 500, 8, 42);
//! let (choice, _tables) = search_kernels(&lib, &probe, Duration::from_millis(1));
//!
//! let x = vec![1.0; 500];
//! let mut y = vec![0.0; 500];
//! lib.run_csr(&probe, choice.kernel(Format::Csr).variant, &x, &mut y);
//! assert!(y.iter().any(|&v| v != 0.0));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod dia;
pub mod ell;
pub mod exec;
pub mod hyb;
pub mod partition;
pub mod plan;
pub mod reference;
pub mod registry;
mod scalar_cast;
pub mod search;
pub mod simd;
pub mod spmm;
pub mod strategy;
pub mod timing;

pub use plan::ExecPlan;
pub use registry::{
    ChunkPolicy, KernelEntry, KernelFn, KernelId, KernelInfo, KernelLibrary, Op, Planner,
    SpmmEntry, SpmmFn,
};
pub use search::{
    measure_format, measure_format_excluding, measure_spmm, measure_spmm_excluding, search_kernels,
    search_kernels_excluding, search_plan, search_spmm_plan, KernelChoice, PerfRecord, PerfTable,
    PlanSample, PlanSearch, RecordStatus, Scoreboard, DEFAULT_CANDIDATE_DEADLINE,
};
pub use simd::SimdBackend;
pub use strategy::{Strategy, StrategySet};
pub use timing::{measure_guarded, panic_message, MeasureOutcome};

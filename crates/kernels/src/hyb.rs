//! HYB SpMV kernel variants (the extension format).
//!
//! The ELL part runs through the corresponding ELL kernel; the COO
//! overflow is then scattered on top. By the width heuristic's
//! construction the overflow is a small minority of the nonzeros, so the
//! parallel variant parallelizes only the ELL sweep and applies the
//! overflow serially — the simple composition cuSPARSE's HYB also uses
//! on the host side.

use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{Strategy, StrategySet};
use smat_matrix::{Hyb, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Hyb<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Adds the COO overflow part on top of `y` (which already holds the ELL
/// part's product).
#[inline]
fn add_overflow<T: Scalar>(m: &Hyb<T>, x: &[T], y: &mut [T]) {
    let coo = m.coo_part();
    let rows = coo.row_idx();
    let cols = coo.col_idx();
    let vals = coo.values();
    for i in 0..vals.len() {
        y[rows[i]] += vals[i] * x[cols[i]];
    }
}

/// Basic serial HYB SpMV: ELL sweep plus COO scatter.
pub fn basic<T: Scalar>(m: &Hyb<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    crate::ell::basic(m.ell_part(), x, y);
    add_overflow(m, x, y);
}

/// Serial HYB SpMV with the unrolled ELL sweep.
pub fn unrolled<T: Scalar>(m: &Hyb<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    crate::ell::unrolled(m.ell_part(), x, y);
    add_overflow(m, x, y);
}

/// HYB SpMV with the row-parallel ELL sweep (overflow applied serially —
/// it is a small minority of entries by the width heuristic).
pub fn parallel<T: Scalar>(m: &Hyb<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    crate::ell::parallel(m.ell_part(), x, y);
    add_overflow(m, x, y);
}

/// Runs the parallel HYB variant with precomputed row chunk bounds for
/// the ELL sweep; the COO overflow stays serial.
pub(crate) fn run_planned<T: Scalar>(
    m: &Hyb<T>,
    x: &[T],
    y: &mut [T],
    plan: &crate::plan::ExecPlan,
) {
    check_dims(m, x, y);
    crate::ell::run_planned(m.ell_part(), x, y, plan, StrategySet::EMPTY);
    add_overflow(m, x, y);
}

/// The HYB kernel library.
pub fn kernels<T: Scalar>() -> Vec<KernelEntry<T, Hyb<T>>> {
    use Strategy::*;
    vec![
        (
            "hyb_basic",
            StrategySet::EMPTY,
            basic as KernelFn<T, Hyb<T>>,
        ),
        ("hyb_unroll", [Unroll].into_iter().collect(), unrolled),
        ("hyb_parallel", [Parallel].into_iter().collect(), parallel),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{power_law, random_skewed};
    use smat_matrix::utils::max_abs_diff;
    use smat_matrix::Csr;

    fn reference(m: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        for csr in [
            power_law::<f64>(500, 120, 1.9, 11),
            random_skewed::<f64>(400, 380, 6, 0.05, 12, 4),
        ] {
            let hyb = Hyb::from_csr(&csr);
            assert!(hyb.coo_part().nnz() > 0, "want a nonempty overflow part");
            let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.13).cos()).collect();
            let expect = reference(&csr, &x);
            for (name, _, k) in kernels::<f64>() {
                let mut y = vec![f64::NAN; csr.rows()];
                k(&hyb, &x, &mut y);
                assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
            }
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = Csr::<f64>::from_triplets(3, 3, &[]).unwrap();
        let hyb = Hyb::from_csr(&csr);
        for (name, _, k) in kernels::<f64>() {
            let mut y = [7.0; 3];
            k(&hyb, &[1.0; 3], &mut y);
            assert_eq!(y, [0.0; 3], "{name}");
        }
    }
}

//! Offline kernel search: the performance-record table and scoreboard
//! algorithm of the paper's §5.2.
//!
//! For each format, every implementation variant is executed on a probe
//! matrix and its throughput recorded. The scoreboard then scores each
//! *optimization strategy* by comparing implementation pairs that differ
//! in exactly that strategy (+1 if it helped, -1 if it hurt, neglected
//! when the gap is below [`NO_EFFECT_GAP`] GFLOPS), scores each
//! *implementation* as the sum of its strategies' scores, and selects the
//! highest-scoring implementation per format.

use crate::plan::{ChunkPolicy, ExecPlan};
use crate::registry::{KernelId, KernelLibrary, Op};
use crate::strategy::{Strategy, StrategySet};
use crate::timing::{gflops, measure_guarded, MeasureOutcome};
use serde::{Deserialize, Serialize};
use smat_matrix::{AnyMatrix, Csr, Format, Scalar};
use std::time::Duration;

/// Performance gap (GFLOPS) below which a strategy is considered to have
/// no effect — the paper's 0.01 threshold.
pub const NO_EFFECT_GAP: f64 = 0.01;

/// Whether a perf-table row holds a real measurement or records a
/// candidate that failed inside the guarded harness.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordStatus {
    /// The variant ran to completion and `gflops` is meaningful.
    #[default]
    Measured,
    /// The variant panicked or blew its deadline; it is excluded from
    /// the scoreboard and can never be selected.
    CandidateFailed {
        /// Human-readable failure description from the harness.
        reason: String,
    },
}

/// One row of the performance record table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Kernel variant name.
    pub name: String,
    /// Strategies the variant applies.
    pub strategies: StrategySet,
    /// Measured throughput on the probe matrix (0 for failed variants).
    pub gflops: f64,
    /// Measurement vs. failure marker.
    pub status: RecordStatus,
}

impl PerfRecord {
    /// Whether this row holds a real measurement.
    pub fn is_measured(&self) -> bool {
        self.status == RecordStatus::Measured
    }
}

/// The performance record table for one format on one probe matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfTable {
    /// The format whose variants were measured.
    pub format: Format,
    /// One record per variant, indexed like the kernel library.
    pub records: Vec<PerfRecord>,
}

impl PerfTable {
    /// The scoreboard algorithm: returns each strategy's score and the
    /// winning variant index.
    ///
    /// For every pair of implementations whose strategy sets differ by
    /// exactly one strategy, that strategy is credited +1 when the larger
    /// set is faster, -1 when slower, 0 when within [`NO_EFFECT_GAP`].
    /// Implementation score = sum of scores of its strategies; ties break
    /// toward measured throughput.
    pub fn scoreboard(&self) -> Scoreboard {
        let mut scores: Vec<(Strategy, i32)> = Strategy::ALL.into_iter().map(|s| (s, 0)).collect();
        for (i, a) in self.records.iter().enumerate() {
            if !a.is_measured() {
                continue;
            }
            for b in &self.records[i..] {
                if !b.is_measured() {
                    continue;
                }
                let (less, more) = if a.strategies.is_one_less_than(b.strategies) {
                    (a, b)
                } else if b.strategies.is_one_less_than(a.strategies) {
                    (b, a)
                } else {
                    continue;
                };
                let added = less
                    .strategies
                    .added_strategy(more.strategies)
                    .expect("one-less pair has an added strategy");
                let gap = more.gflops - less.gflops;
                let delta = if gap.abs() < NO_EFFECT_GAP {
                    0
                } else if gap > 0.0 {
                    1
                } else {
                    -1
                };
                if let Some(e) = scores.iter_mut().find(|e| e.0 == added) {
                    e.1 += delta;
                }
            }
        }
        // Score each implementation.
        let strategy_score = |set: StrategySet| -> i32 {
            set.iter()
                .map(|s| scores.iter().find(|e| e.0 == s).map_or(0, |e| e.1))
                .sum()
        };
        let mut best = 0usize;
        let mut best_key = (i32::MIN, f64::MIN);
        let mut impl_scores = Vec::with_capacity(self.records.len());
        for (v, rec) in self.records.iter().enumerate() {
            let s = strategy_score(rec.strategies);
            impl_scores.push(s);
            // A failed variant keeps its slot in impl_scores (indices
            // stay aligned with the library) but can never be selected.
            if rec.is_measured() && (s, rec.gflops) > best_key {
                best_key = (s, rec.gflops);
                best = v;
            }
        }
        Scoreboard {
            strategy_scores: scores,
            impl_scores,
            best_variant: best,
        }
    }

    /// The variant with the highest measured throughput (exhaustive
    /// search's answer, used in tests to sanity-check the scoreboard).
    pub fn fastest_variant(&self) -> usize {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_measured())
            .max_by(|a, b| a.1.gflops.total_cmp(&b.1.gflops))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Rows that failed inside the guarded harness, as
    /// `(variant index, name, reason)`.
    pub fn failures(&self) -> Vec<(usize, &str, &str)> {
        self.records
            .iter()
            .enumerate()
            .filter_map(|(v, r)| match &r.status {
                RecordStatus::Measured => None,
                RecordStatus::CandidateFailed { reason } => {
                    Some((v, r.name.as_str(), reason.as_str()))
                }
            })
            .collect()
    }
}

/// Result of [`PerfTable::scoreboard`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scoreboard {
    /// Score accumulated by each optimization strategy.
    pub strategy_scores: Vec<(Strategy, i32)>,
    /// Score of each implementation (same indexing as the perf table).
    pub impl_scores: Vec<i32>,
    /// Index of the selected implementation.
    pub best_variant: usize,
}

/// Per-format kernel selection produced by [`search_kernels`]: the
/// "optimal kernel" box of the paper's Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelChoice {
    /// Chosen variant index per format, indexed by [`Format::index`].
    pub variant: [usize; Format::COUNT],
}

impl KernelChoice {
    /// The basic implementation for every format (no tuning).
    pub fn basic() -> Self {
        KernelChoice {
            variant: [0; Format::COUNT],
        }
    }

    /// The chosen kernel for `format`.
    pub fn kernel(&self, format: Format) -> KernelId {
        KernelId {
            op: Op::Spmv,
            format,
            variant: self.variant[format.index()],
        }
    }

    /// Sets the chosen variant for `format`.
    pub fn set(&mut self, format: Format, variant: usize) {
        self.variant[format.index()] = variant;
    }
}

/// Default per-candidate deadline used by [`search_kernels`] and any
/// caller that has no configured deadline of its own.
pub const DEFAULT_CANDIDATE_DEADLINE: Duration = Duration::from_secs(2);

/// Measures every variant of `format` on the probe matrix and returns the
/// performance record table.
///
/// `budget` bounds the total measurement time per variant; `deadline` is
/// the hard per-variant cap enforced by the guarded harness. Every
/// kernel invocation runs inside [`measure_guarded`]'s `catch_unwind`,
/// so a panicking or over-deadline variant is recorded as
/// [`RecordStatus::CandidateFailed`] rather than aborting the search.
pub fn measure_format<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &AnyMatrix<T>,
    budget: Duration,
    deadline: Duration,
) -> PerfTable {
    measure_format_excluding(lib, probe, budget, deadline, &[])
}

/// [`measure_format`] with a quarantine set: variants listed in
/// `excluded` are never executed — their rows are recorded as
/// [`RecordStatus::CandidateFailed`] with reason `"quarantined"`, so
/// the scoreboard treats them exactly like a variant that failed in the
/// harness (excluded from strategy pairing and from selection).
pub fn measure_format_excluding<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &AnyMatrix<T>,
    budget: Duration,
    deadline: Duration,
    excluded: &[KernelId],
) -> PerfTable {
    let format = probe.format();
    let x = vec![T::ONE; probe.cols()];
    let mut y = vec![T::ZERO; probe.rows()];
    let nnz = probe.nnz();
    let mut records = Vec::with_capacity(lib.variant_count(format));
    for (v, info) in lib.variants(format).into_iter().enumerate() {
        if excluded.contains(&KernelId {
            op: Op::Spmv,
            format,
            variant: v,
        }) {
            records.push(PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: 0.0,
                status: RecordStatus::CandidateFailed {
                    reason: "quarantined".into(),
                },
            });
            continue;
        }
        let outcome = measure_guarded(|| lib.run(probe, v, &x, &mut y), budget, deadline, 3, 64);
        let record = match outcome {
            MeasureOutcome::Ok(med) => PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: gflops(nnz, med),
                status: RecordStatus::Measured,
            },
            failed => PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: 0.0,
                status: RecordStatus::CandidateFailed {
                    reason: failed.failure().unwrap_or_else(|| "unknown failure".into()),
                },
            },
        };
        records.push(record);
    }
    PerfTable { format, records }
}

/// Runs the full offline kernel search on a probe matrix (given in the
/// unified CSR format): measures every variant of every format and picks
/// the scoreboard winner per format.
///
/// Formats whose conversion fails on the probe (e.g. DIA on a scattered
/// matrix) keep their basic variant and get an empty perf table; a
/// format whose every variant fails in the harness likewise keeps its
/// basic variant (the scoreboard never selects a failed row).
pub fn search_kernels<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &Csr<T>,
    budget_per_variant: Duration,
) -> (KernelChoice, Vec<PerfTable>) {
    search_kernels_excluding(lib, probe, budget_per_variant, &[])
}

/// [`search_kernels`] with a quarantine set: the listed variants are
/// excluded from every format's scoreboard (recorded as failed
/// candidates with reason `"quarantined"`), so a kernel benched by the
/// runtime circuit breaker can never be re-selected by a search run
/// while its breaker is open.
pub fn search_kernels_excluding<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &Csr<T>,
    budget_per_variant: Duration,
    excluded: &[KernelId],
) -> (KernelChoice, Vec<PerfTable>) {
    let mut choice = KernelChoice::basic();
    let mut tables = Vec::with_capacity(Format::COUNT);
    for format in Format::ALL {
        match AnyMatrix::convert_from_csr(probe, format) {
            Ok(any) => {
                let table = measure_format_excluding(
                    lib,
                    &any,
                    budget_per_variant,
                    DEFAULT_CANDIDATE_DEADLINE,
                    excluded,
                );
                choice.set(format, table.scoreboard().best_variant);
                tables.push(table);
            }
            Err(_) => {
                tables.push(PerfTable {
                    format,
                    records: Vec::new(),
                });
            }
        }
    }
    (choice, tables)
}

/// Measures every SpMM variant of the probe's format at RHS batch width
/// `k` and returns the performance record table. The mirror of
/// [`measure_format`] for the batched tier: throughput counts
/// `2 * nnz * k` flops per call, rows index the library's SpMM tables,
/// and a
/// format with no SpMM kernels (COO/DIA/HYB) yields an empty table.
pub fn measure_spmm<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &AnyMatrix<T>,
    k: usize,
    budget: Duration,
    deadline: Duration,
) -> PerfTable {
    measure_spmm_excluding(lib, probe, k, budget, deadline, &[])
}

/// [`measure_spmm`] with a quarantine set, matching
/// [`measure_format_excluding`]'s contract: excluded SpMM variants are
/// recorded as failed candidates with reason `"quarantined"`.
pub fn measure_spmm_excluding<T: Scalar>(
    lib: &KernelLibrary<T>,
    probe: &AnyMatrix<T>,
    k: usize,
    budget: Duration,
    deadline: Duration,
    excluded: &[KernelId],
) -> PerfTable {
    let format = probe.format();
    let x = vec![T::ONE; probe.cols() * k];
    let mut y = vec![T::ZERO; probe.rows() * k];
    let nnz = probe.nnz();
    let mut records = Vec::with_capacity(lib.spmm_variant_count(format));
    for (v, info) in lib.spmm_variants(format).into_iter().enumerate() {
        if excluded.contains(&KernelId {
            op: Op::Spmm,
            format,
            variant: v,
        }) {
            records.push(PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: 0.0,
                status: RecordStatus::CandidateFailed {
                    reason: "quarantined".into(),
                },
            });
            continue;
        }
        let outcome = measure_guarded(
            || lib.run_spmm(probe, v, &x, &mut y, k),
            budget,
            deadline,
            3,
            64,
        );
        let record = match outcome {
            MeasureOutcome::Ok(med) => PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: gflops(nnz * k, med),
                status: RecordStatus::Measured,
            },
            failed => PerfRecord {
                name: info.name.to_string(),
                strategies: info.strategies,
                gflops: 0.0,
                status: RecordStatus::CandidateFailed {
                    reason: failed.failure().unwrap_or_else(|| "unknown failure".into()),
                },
            },
        };
        records.push(record);
    }
    PerfTable { format, records }
}

/// One measured (chunk policy, fan-out width) candidate from
/// [`search_plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSample {
    /// Partitioning policy the candidate plan was built with.
    pub policy: ChunkPolicy,
    /// Requested fan-out width (chunk count before policy clamping).
    pub parts: usize,
    /// Chunks the plan actually produced.
    pub chunks: usize,
    /// Measured throughput replaying the candidate plan.
    pub gflops: f64,
}

/// Result of [`search_plan`]: the winning plan plus every candidate
/// measurement, so callers (the CLI's variant table, bench artifacts)
/// can show the whole searched grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSearch {
    /// The fastest measured plan, ready to cache and replay.
    pub plan: ExecPlan,
    /// Index of the winning sample in `samples`.
    pub best: usize,
    /// All successfully measured candidates, in search order.
    pub samples: Vec<PlanSample>,
}

/// Searches the *plan* dimensions — chunk policy and fan-out width —
/// for one already-chosen kernel, extending the paper's scoreboard
/// (which searches implementations) to the partitioning decisions the
/// implementations replay.
///
/// Candidate policies depend on the kernel: merge-path kernels only
/// re-size their entry split, while plain row-chunk CSR kernels race
/// `EqualRows` against `NnzBalanced` (both replay through the same
/// planned dispatch, so the policy is interchangeable). Widths cover
/// `{1, t, 2t, 4t}` for `t` backend threads — width 1 lets the search
/// conclude that serial execution wins on small or hopelessly skewed
/// inputs. Returns `None` for kernels without a parallel planned path
/// (nothing to search) or when every candidate fails in the guarded
/// harness.
pub fn search_plan<T: Scalar>(
    lib: &KernelLibrary<T>,
    m: &AnyMatrix<T>,
    id: KernelId,
    budget: Duration,
    deadline: Duration,
) -> Option<PlanSearch> {
    let natural = lib.chunk_policy(m, id);
    let policies: Vec<ChunkPolicy> = match natural {
        ChunkPolicy::Serial => return None,
        ChunkPolicy::EqualRows | ChunkPolicy::NnzBalanced if id.format == Format::Csr => {
            vec![ChunkPolicy::EqualRows, ChunkPolicy::NnzBalanced]
        }
        other => vec![other],
    };
    let t = crate::exec::num_threads().max(1);
    let mut widths = vec![1, t, 2 * t, 4 * t];
    widths.sort_unstable();
    widths.dedup();

    let x = vec![T::ONE; m.cols()];
    let mut y = vec![T::ZERO; m.rows()];
    let nnz = m.nnz();
    let mut samples = Vec::new();
    let mut best: Option<(usize, f64, ExecPlan)> = None;
    for &policy in &policies {
        for &parts in &widths {
            let plan = lib.build_plan_sized(m, policy, parts);
            let outcome = measure_guarded(
                || lib.run_planned(m, id.variant, &plan, &x, &mut y),
                budget,
                deadline,
                2,
                16,
            );
            let MeasureOutcome::Ok(med) = outcome else {
                continue;
            };
            let g = gflops(nnz, med);
            samples.push(PlanSample {
                policy,
                parts,
                chunks: plan.chunks(),
                gflops: g,
            });
            if best.as_ref().is_none_or(|(_, bg, _)| g > *bg) {
                best = Some((samples.len() - 1, g, plan));
            }
        }
    }
    best.map(|(best, _, plan)| PlanSearch {
        plan,
        best,
        samples,
    })
}

/// [`search_plan`] for an SpMM kernel at RHS batch width `k`: the same
/// policy × width grid (merge kernels only re-size their entry split,
/// plain row-chunk CSR kernels race `EqualRows` against `NnzBalanced`),
/// replayed through the planned SpMM dispatch and scored at `2 * nnz *
/// k` flops per call. The *tile* width is not searched here — it lives
/// on the variant (`Tile2/4/8` strategy bits), chosen by the SpMM
/// scoreboard; this searches the partitioning the winning tile replays.
pub fn search_spmm_plan<T: Scalar>(
    lib: &KernelLibrary<T>,
    m: &AnyMatrix<T>,
    id: KernelId,
    k: usize,
    budget: Duration,
    deadline: Duration,
) -> Option<PlanSearch> {
    let natural = lib.chunk_policy(m, id);
    let policies: Vec<ChunkPolicy> = match natural {
        ChunkPolicy::Serial => return None,
        ChunkPolicy::EqualRows | ChunkPolicy::NnzBalanced if id.format == Format::Csr => {
            vec![ChunkPolicy::EqualRows, ChunkPolicy::NnzBalanced]
        }
        other => vec![other],
    };
    let t = crate::exec::num_threads().max(1);
    let mut widths = vec![1, t, 2 * t, 4 * t];
    widths.sort_unstable();
    widths.dedup();

    let x = vec![T::ONE; m.cols() * k];
    let mut y = vec![T::ZERO; m.rows() * k];
    let nnz = m.nnz();
    let mut samples = Vec::new();
    let mut best: Option<(usize, f64, ExecPlan)> = None;
    for &policy in &policies {
        for &parts in &widths {
            let plan = lib.build_plan_sized(m, policy, parts);
            let outcome = measure_guarded(
                || lib.run_spmm_planned(m, id.variant, &plan, &x, &mut y, k),
                budget,
                deadline,
                2,
                16,
            );
            let MeasureOutcome::Ok(med) = outcome else {
                continue;
            };
            let g = gflops(nnz * k, med);
            samples.push(PlanSample {
                policy,
                parts,
                chunks: plan.chunks(),
                gflops: g,
            });
            if best.as_ref().is_none_or(|(_, bg, _)| g > *bg) {
                best = Some((samples.len() - 1, g, plan));
            }
        }
    }
    best.map(|(best, _, plan)| PlanSearch {
        plan,
        best,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::random_uniform;

    fn table(recs: &[(&str, &[Strategy], f64)]) -> PerfTable {
        PerfTable {
            format: Format::Csr,
            records: recs
                .iter()
                .map(|&(name, strats, g)| PerfRecord {
                    name: name.to_string(),
                    strategies: strats.iter().copied().collect(),
                    gflops: g,
                    status: RecordStatus::Measured,
                })
                .collect(),
        }
    }

    #[test]
    fn scoreboard_rewards_helpful_strategy() {
        use Strategy::*;
        let t = table(&[
            ("basic", &[], 1.0),
            ("unroll", &[Unroll], 1.5),
            ("parallel", &[Parallel], 4.0),
            ("both", &[Parallel, Unroll], 5.0),
        ]);
        let sb = t.scoreboard();
        let score = |s: Strategy| sb.strategy_scores.iter().find(|e| e.0 == s).unwrap().1;
        assert_eq!(score(Unroll), 2); // helped twice
        assert_eq!(score(Parallel), 2);
        assert_eq!(sb.best_variant, 3);
    }

    #[test]
    fn scoreboard_penalizes_harmful_strategy() {
        use Strategy::*;
        let t = table(&[
            ("basic", &[], 4.0),
            ("unroll", &[Unroll], 1.0), // unrolling hurts on this machine
            ("parallel", &[Parallel], 8.0),
            ("both", &[Parallel, Unroll], 5.0),
        ]);
        let sb = t.scoreboard();
        let score = |s: Strategy| sb.strategy_scores.iter().find(|e| e.0 == s).unwrap().1;
        assert_eq!(score(Unroll), -2);
        assert_eq!(sb.best_variant, 2, "parallel-only must win");
    }

    #[test]
    fn scoreboard_neglects_tiny_gaps() {
        use Strategy::*;
        let t = table(&[
            ("basic", &[], 1.0),
            ("unroll", &[Unroll], 1.0 + NO_EFFECT_GAP / 2.0),
        ]);
        let sb = t.scoreboard();
        assert_eq!(sb.strategy_scores[0].1, 0);
        // Tie on score; faster implementation wins.
        assert_eq!(sb.best_variant, 1);
    }

    #[test]
    fn measured_search_picks_sane_kernels() {
        let lib = KernelLibrary::<f64>::new();
        let probe = random_uniform::<f64>(2000, 2000, 16, 99);
        let (choice, tables) = search_kernels(&lib, &probe, Duration::from_millis(5));
        assert_eq!(tables.len(), Format::COUNT);
        for f in Format::ALL {
            let v = choice.kernel(f).variant;
            assert!(v < lib.variant_count(f), "{f} variant {v} out of range");
        }
        // Every measured table has positive throughputs.
        for t in &tables {
            for r in &t.records {
                assert!(r.gflops > 0.0, "{} measured 0", r.name);
            }
        }
    }

    #[test]
    fn fastest_variant_is_argmax() {
        use Strategy::*;
        let t = table(&[
            ("a", &[], 1.0),
            ("b", &[Unroll], 3.0),
            ("c", &[Parallel], 2.0),
        ]);
        assert_eq!(t.fastest_variant(), 1);
    }

    #[test]
    fn failed_records_are_excluded_from_selection() {
        use Strategy::*;
        let mut t = table(&[
            ("basic", &[], 1.0),
            ("unroll", &[Unroll], 9.0),
            ("parallel", &[Parallel], 2.0),
        ]);
        // Mark the fastest variant as failed: it must vanish from both
        // the scoreboard pairing and the final selection.
        t.records[1].status = RecordStatus::CandidateFailed {
            reason: "kernel panicked: test".into(),
        };
        t.records[1].gflops = 0.0;
        let sb = t.scoreboard();
        assert_ne!(sb.best_variant, 1, "failed variant must not win");
        assert_ne!(t.fastest_variant(), 1);
        let score = |s: Strategy| sb.strategy_scores.iter().find(|e| e.0 == s).unwrap().1;
        assert_eq!(score(Unroll), 0, "failed row contributes no evidence");
        assert_eq!(t.failures().len(), 1);
        assert_eq!(t.failures()[0].0, 1);
        // JSON round trip preserves the failure marker.
        let json = serde_json::to_string(&t).unwrap();
        let back: PerfTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn all_failed_table_selects_basic() {
        use Strategy::*;
        let mut t = table(&[("basic", &[], 0.0), ("unroll", &[Unroll], 0.0)]);
        for r in &mut t.records {
            r.status = RecordStatus::CandidateFailed {
                reason: "deadline exceeded".into(),
            };
        }
        assert_eq!(t.scoreboard().best_variant, 0);
        assert_eq!(t.fastest_variant(), 0);
    }

    #[test]
    fn measure_format_records_panicking_variant_as_failed() {
        let mut lib = KernelLibrary::<f64>::new();
        let healthy = lib.variant_count(Format::Csr);
        lib.register_csr("csr_poison", StrategySet::default(), |_, _, _| {
            panic!("injected fault")
        });
        let probe = random_uniform::<f64>(200, 200, 4, 7);
        let any = AnyMatrix::Csr(probe);
        let table = measure_format(
            &lib,
            &any,
            Duration::from_micros(100),
            DEFAULT_CANDIDATE_DEADLINE,
        );
        assert_eq!(table.records.len(), healthy + 1);
        let poisoned = &table.records[healthy];
        assert!(!poisoned.is_measured());
        assert!(matches!(
            &poisoned.status,
            RecordStatus::CandidateFailed { reason } if reason.contains("injected fault")
        ));
        // Every healthy variant still measured, and the winner is sane.
        assert!(table.records[..healthy].iter().all(PerfRecord::is_measured));
        assert_ne!(table.scoreboard().best_variant, healthy);
    }

    #[test]
    fn quarantined_variants_are_excluded_like_failed_candidates() {
        let lib = KernelLibrary::<f64>::new();
        let probe = random_uniform::<f64>(300, 300, 6, 5);
        let any = AnyMatrix::Csr(probe.clone());
        // First find the winner, then quarantine it: the re-run must
        // pick someone else, and the benched row must read exactly like
        // a harness failure.
        let open = measure_format(
            &lib,
            &any,
            Duration::from_micros(100),
            DEFAULT_CANDIDATE_DEADLINE,
        );
        let winner = open.scoreboard().best_variant;
        let benched = KernelId {
            op: Op::Spmv,
            format: Format::Csr,
            variant: winner,
        };
        let table = measure_format_excluding(
            &lib,
            &any,
            Duration::from_micros(100),
            DEFAULT_CANDIDATE_DEADLINE,
            &[benched],
        );
        let row = &table.records[winner];
        assert!(!row.is_measured());
        assert!(matches!(
            &row.status,
            RecordStatus::CandidateFailed { reason } if reason == "quarantined"
        ));
        assert_ne!(table.scoreboard().best_variant, winner);
        assert!(table
            .failures()
            .iter()
            .any(|&(v, _, r)| v == winner && r == "quarantined"));
        // The full multi-format search honors the same set.
        let (choice, _) =
            search_kernels_excluding(&lib, &probe, Duration::from_micros(100), &[benched]);
        assert_ne!(choice.kernel(Format::Csr).variant, winner);
    }

    #[test]
    fn plan_search_races_policies_for_parallel_csr() {
        let lib = KernelLibrary::<f64>::new();
        let m = smat_matrix::gen::power_law::<f64>(1500, 300, 2.0, 11);
        let any = AnyMatrix::Csr(m);
        let v = lib
            .variants(Format::Csr)
            .iter()
            .position(|i| i.name == "csr_parallel")
            .unwrap();
        let id = KernelId {
            op: Op::Spmv,
            format: Format::Csr,
            variant: v,
        };
        let found = search_plan(
            &lib,
            &any,
            id,
            Duration::from_micros(200),
            DEFAULT_CANDIDATE_DEADLINE,
        )
        .expect("parallel kernel has a plan to search");
        // Both policies and the width ladder were actually raced.
        assert!(found
            .samples
            .iter()
            .any(|s| s.policy == ChunkPolicy::EqualRows));
        assert!(found
            .samples
            .iter()
            .any(|s| s.policy == ChunkPolicy::NnzBalanced));
        assert!(found.samples.iter().any(|s| s.parts == 1));
        let win = &found.samples[found.best];
        assert_eq!(found.plan.policy, win.policy);
        assert!(win.gflops > 0.0);
        // The winning plan replays correctly.
        let x = vec![1.0; any.cols()];
        let mut y = vec![0.0; any.rows()];
        let mut expect = vec![0.0; any.rows()];
        lib.run(&any, v, &x, &mut expect);
        lib.run_planned(&any, v, &found.plan, &x, &mut y);
        assert!(y.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 1e-9));
    }

    #[test]
    fn plan_search_skips_serial_kernels() {
        let lib = KernelLibrary::<f64>::new();
        let m = random_uniform::<f64>(200, 200, 5, 3);
        let any = AnyMatrix::Csr(m);
        let id = KernelId::basic(Format::Csr);
        assert!(search_plan(
            &lib,
            &any,
            id,
            Duration::from_micros(50),
            DEFAULT_CANDIDATE_DEADLINE
        )
        .is_none());
    }

    #[test]
    fn spmm_measurement_covers_the_tile_grid() {
        let lib = KernelLibrary::<f64>::new();
        let probe = random_uniform::<f64>(400, 400, 6, 21);
        let any = AnyMatrix::Csr(probe);
        let table = measure_spmm(
            &lib,
            &any,
            8,
            Duration::from_micros(100),
            DEFAULT_CANDIDATE_DEADLINE,
        );
        assert_eq!(table.records.len(), lib.spmm_variant_count(Format::Csr));
        assert!(table.records.iter().all(PerfRecord::is_measured));
        // The searched grid includes every tile width.
        for s in [Strategy::Tile2, Strategy::Tile4, Strategy::Tile8] {
            assert!(
                table.records.iter().any(|r| r.strategies.contains(s)),
                "{s} missing from the spmm grid"
            );
        }
        // The scoreboard picks a live row; an excluded winner is skipped.
        let winner = table.scoreboard().best_variant;
        let benched = KernelId {
            op: Op::Spmm,
            format: Format::Csr,
            variant: winner,
        };
        let again = measure_spmm_excluding(
            &lib,
            &any,
            8,
            Duration::from_micros(100),
            DEFAULT_CANDIDATE_DEADLINE,
            &[benched],
        );
        assert!(!again.records[winner].is_measured());
        assert_ne!(again.scoreboard().best_variant, winner);
    }

    #[test]
    fn spmm_plan_search_finds_a_replayable_plan() {
        let lib = KernelLibrary::<f64>::new();
        let m = smat_matrix::gen::power_law::<f64>(1200, 250, 2.0, 17);
        let any = AnyMatrix::Csr(m);
        let k = 4usize;
        let v = lib
            .spmm_variants(Format::Csr)
            .iter()
            .position(|i| i.name == "csr_spmm_parallel_t4")
            .unwrap();
        let id = KernelId {
            op: Op::Spmm,
            format: Format::Csr,
            variant: v,
        };
        let found = search_spmm_plan(
            &lib,
            &any,
            id,
            k,
            Duration::from_micros(200),
            DEFAULT_CANDIDATE_DEADLINE,
        )
        .expect("parallel spmm kernel has a plan to search");
        assert!(found
            .samples
            .iter()
            .any(|s| s.policy == ChunkPolicy::NnzBalanced));
        // The winning plan replays bitwise.
        let x: Vec<f64> = (0..any.cols() * k)
            .map(|i| (i as f64 * 0.17).sin())
            .collect();
        let mut y1 = vec![f64::NAN; any.rows() * k];
        let mut y2 = vec![f64::NAN; any.rows() * k];
        lib.run_spmm_planned(&any, v, &found.plan, &x, &mut y1, k);
        lib.run_spmm_planned(&any, v, &found.plan, &x, &mut y2, k);
        assert!(y1.iter().zip(&y2).all(|(a, b)| a == b));
        // Serial spmm kernels have nothing to search.
        let serial = KernelId::spmm_basic(Format::Csr);
        assert!(search_spmm_plan(
            &lib,
            &any,
            serial,
            k,
            Duration::from_micros(50),
            DEFAULT_CANDIDATE_DEADLINE
        )
        .is_none());
    }

    #[test]
    fn kernel_choice_round_trip() {
        let mut c = KernelChoice::basic();
        c.set(Format::Dia, 3);
        assert_eq!(c.kernel(Format::Dia).variant, 3);
        assert_eq!(c.kernel(Format::Csr).variant, 0);
        let json = serde_json::to_string(&c).unwrap();
        let back: KernelChoice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}

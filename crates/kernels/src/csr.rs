//! CSR SpMV kernel variants.
//!
//! Implementations spanning the strategy lattice from the basic loop
//! through unrolling (4- and 8-way), register blocking, explicit SIMD
//! (see [`crate::simd`]), threading and nonzero balancing. All compute
//! `y = A * x` and assume the vector lengths were validated by the
//! caller (they `assert!` in debug and release).

use crate::exec;
use crate::partition::{
    default_parts, equal_row_bounds, merge_path_bounds, nnz_balanced_bounds, MAX_MERGE_CHUNKS,
};
use crate::plan::ExecPlan;
use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{InnerLoop, Strategy, StrategySet};
use smat_matrix::{Csr, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Csr<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Basic serial CSR SpMV — the paper's Figure 2(a) loop, and the
/// denominator of the "SMAT overhead" column in Table 3.
pub fn basic<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let ptr = m.row_ptr();
    let idx = m.col_idx();
    let val = m.values();
    for r in 0..m.rows() {
        let mut acc = T::ZERO;
        for k in ptr[r]..ptr[r + 1] {
            acc += val[k] * x[idx[k]];
        }
        y[r] = acc;
    }
}

/// One row's dot product with 4-way unrolled, split-accumulator inner
/// loop (auto-vectorization friendly).
///
/// Reduction-order contract (shared with the AVX2 backend, see
/// [`crate::simd`]): accumulator `j` sums positions `k ≡ j (mod 4)` in
/// row order, the tail folds into accumulator 0, and the final
/// reduction is `(a0 + a1) + (a2 + a3)`.
#[inline]
pub(crate) fn row_unrolled<T: Scalar>(idx: &[usize], val: &[T], x: &[T]) -> T {
    let n = val.len();
    let mut acc0 = T::ZERO;
    let mut acc1 = T::ZERO;
    let mut acc2 = T::ZERO;
    let mut acc3 = T::ZERO;
    let chunks = n / 4;
    for c in 0..chunks {
        let k = 4 * c;
        acc0 += val[k] * x[idx[k]];
        acc1 += val[k + 1] * x[idx[k + 1]];
        acc2 += val[k + 2] * x[idx[k + 2]];
        acc3 += val[k + 3] * x[idx[k + 3]];
    }
    for k in 4 * chunks..n {
        acc0 += val[k] * x[idx[k]];
    }
    (acc0 + acc1) + (acc2 + acc3)
}

/// One row's dot product with 8-way unrolled, split-accumulator inner
/// loop — twice the independent FP-add chains of [`row_unrolled`].
///
/// Reduction order: accumulator `j` sums positions `k ≡ j (mod 8)`, the
/// tail folds into accumulator 0, and the final reduction is
/// `((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7))`.
#[inline]
pub(crate) fn row_unrolled8<T: Scalar>(idx: &[usize], val: &[T], x: &[T]) -> T {
    let n = val.len();
    let mut acc = [T::ZERO; 8];
    let chunks = n / 8;
    for c in 0..chunks {
        let k = 8 * c;
        acc[0] += val[k] * x[idx[k]];
        acc[1] += val[k + 1] * x[idx[k + 1]];
        acc[2] += val[k + 2] * x[idx[k + 2]];
        acc[3] += val[k + 3] * x[idx[k + 3]];
        acc[4] += val[k + 4] * x[idx[k + 4]];
        acc[5] += val[k + 5] * x[idx[k + 5]];
        acc[6] += val[k + 6] * x[idx[k + 6]];
        acc[7] += val[k + 7] * x[idx[k + 7]];
    }
    for k in 8 * chunks..n {
        acc[0] += val[k] * x[idx[k]];
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// One row's dot product through the selected inner loop.
#[inline]
fn row_dot<T: Scalar>(idx: &[usize], val: &[T], x: &[T], inner: InnerLoop) -> T {
    match inner {
        InnerLoop::Scalar => {
            let mut acc = T::ZERO;
            for (&c, &v) in idx.iter().zip(val) {
                acc += v * x[c];
            }
            acc
        }
        InnerLoop::Unroll4 => row_unrolled(idx, val, x),
        InnerLoop::Unroll8 => row_unrolled8(idx, val, x),
        InnerLoop::Simd => crate::simd::row_dot(idx, val, x),
    }
}

/// Serial CSR SpMV with 4-way unrolled rows.
pub fn unrolled<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    for (r, yr) in y.iter_mut().enumerate() {
        let (idx, val) = m.row(r);
        *yr = row_unrolled(idx, val, x);
    }
}

/// Serial CSR SpMV with 8-way unrolled rows.
pub fn unrolled8<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    for (r, yr) in y.iter_mut().enumerate() {
        let (idx, val) = m.row(r);
        *yr = row_unrolled8(idx, val, x);
    }
}

/// Serial CSR SpMV through the runtime-dispatched vector backend
/// (bit-identical to [`unrolled`], see [`crate::simd`]).
pub fn simd<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    for (r, yr) in y.iter_mut().enumerate() {
        let (idx, val) = m.row(r);
        *yr = crate::simd::row_dot(idx, val, x);
    }
}

#[inline]
fn run_chunks<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], bounds: &[usize], inner: InnerLoop) {
    exec::for_each_row_chunk(y, bounds, |ci, chunk| {
        let r0 = bounds[ci];
        for (i, yr) in chunk.iter_mut().enumerate() {
            let (idx, val) = m.row(r0 + i);
            *yr = row_dot(idx, val, x, inner);
        }
    });
}

/// Runs a parallel CSR variant with precomputed chunk bounds instead of
/// re-partitioning per call — the zero-allocation steady-state path.
pub(crate) fn run_planned<T: Scalar>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    plan: &ExecPlan,
    inner: InnerLoop,
) {
    check_dims(m, x, y);
    run_chunks(m, x, y, &plan.bounds, inner);
}

/// Row-parallel CSR SpMV with equal-row chunks.
pub fn parallel<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Scalar);
}

/// Row-parallel CSR SpMV with equal-row chunks and unrolled rows.
pub fn parallel_unrolled<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Unroll4);
}

/// Row-parallel CSR SpMV with equal-row chunks and 8-way unrolled rows.
pub fn parallel_unrolled8<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Unroll8);
}

/// Row-parallel CSR SpMV with equal-row chunks through the vector
/// backend.
pub fn parallel_simd<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Simd);
}

/// Row-parallel CSR SpMV with nonzero-balanced chunks — the winner on
/// matrices with skewed row degrees (power-law graphs).
pub fn parallel_balanced<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = nnz_balanced_bounds(m, default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Scalar);
}

/// Nonzero-balanced parallel CSR SpMV with unrolled rows.
pub fn parallel_balanced_unrolled<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = nnz_balanced_bounds(m, default_parts());
    run_chunks(m, x, y, &bounds, InnerLoop::Unroll4);
}

/// Dot product of one contiguous entry segment `lo..hi`, accumulated
/// sequentially in stream order — the same association a row gets in
/// [`basic`], so a segment covering a whole row is bit-identical to
/// the basic kernel's value for that row.
#[inline]
fn segment_dot<T: Scalar>(m: &Csr<T>, lo: usize, hi: usize, x: &[T]) -> T {
    let idx = m.col_idx();
    let val = m.values();
    let mut acc = T::ZERO;
    for k in lo..hi {
        acc += val[k] * x[idx[k]];
    }
    acc
}

/// Merge-path execution over precomputed entry/row bounds.
///
/// Reduction-order contract (the bit-stable replay guarantee): chunk
/// `i` accumulates each owned row's in-range entries sequentially in
/// stream order and writes the partial straight into `y`; entries
/// ahead of the first owned row (the tail of a row split by `e_i`) are
/// accumulated into a per-chunk carry slot. A serial fix-up pass then
/// adds the carries in ascending chunk order, so a row split across
/// chunks `i-1, i, i+1` always reduces as
/// `(partial_{i-1} + carry_i) + carry_{i+1}` regardless of how the
/// pool scheduled the chunks. Splitting rows reassociates the sum, so
/// the result matches [`basic`] bitwise only on values where addition
/// is exact (the dyadic-rational differential corpus) — and matches
/// any replay of the same plan bitwise on all values.
fn run_merge_chunks<T: Scalar>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    entry_bounds: &[usize],
    bounds: &[usize],
) {
    exec::validate_bounds(bounds, y.len());
    assert_eq!(
        entry_bounds.len(),
        bounds.len(),
        "entry bounds must align with row bounds"
    );
    assert_eq!(entry_bounds[0], 0, "entry bounds must start at 0");
    assert_eq!(
        *entry_bounds.last().expect("non-empty"),
        m.nnz(),
        "entry bounds must end at nnz"
    );
    assert!(
        entry_bounds.windows(2).all(|w| w[0] <= w[1]),
        "entry bounds must be non-decreasing"
    );
    let chunks = bounds.len() - 1;
    if chunks == 1 {
        return basic(m, x, y);
    }
    assert!(
        chunks <= MAX_MERGE_CHUNKS,
        "merge fan-out exceeds carry capacity"
    );
    let ptr = m.row_ptr();
    let mut carry = [T::ZERO; MAX_MERGE_CHUNKS];
    let carry_base = carry.as_mut_ptr() as usize;
    let y_base = y.as_mut_ptr() as usize;
    exec::for_each_chunk(chunks, &|ci| {
        let (e0, e1) = (entry_bounds[ci], entry_bounds[ci + 1]);
        let (w0, w1) = (bounds[ci], bounds[ci + 1]);
        // Entries ahead of the first owned row belong to a row owned by
        // an earlier chunk: accumulate them into this chunk's carry slot.
        let head_end = if w0 < w1 { ptr[w0].min(e1) } else { e1 };
        if e0 < head_end {
            let c = segment_dot(m, e0, head_end, x);
            // SAFETY: each chunk index is claimed exactly once by the
            // backend and writes only its own carry slot; `ci < chunks
            // <= MAX_MERGE_CHUNKS` keeps the write in bounds. The carry
            // array outlives the fan-out because the caller participates
            // in the pool drain before `for_each_chunk` returns.
            unsafe { *(carry_base as *mut T).add(ci) = c };
        }
        for r in w0..w1 {
            let lo = ptr[r];
            let hi = ptr[r + 1].min(e1);
            let v = segment_dot(m, lo, hi, x);
            // SAFETY: row ownership is a partition (validated bounds),
            // so no two chunks write the same y slot; `r < rows` because
            // bounds end at `y.len()`.
            unsafe { *(y_base as *mut T).add(r) = v };
        }
    });
    // Serial fix-up in ascending chunk order: fixed association, so
    // replaying the same plan is bit-identical run to run.
    for ci in 1..chunks {
        let (e0, e1) = (entry_bounds[ci], entry_bounds[ci + 1]);
        let (w0, w1) = (bounds[ci], bounds[ci + 1]);
        let head_end = if w0 < w1 { ptr[w0].min(e1) } else { e1 };
        if e0 < head_end {
            y[w0 - 1] += carry[ci];
        }
    }
}

/// Merge-path CSR SpMV: the nonzero stream is split into equal entry
/// ranges that may cut rows mid-stream, with carries fixed up serially
/// — parallel even when one row holds most of the matrix.
pub fn merge<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let (entry_bounds, bounds) = merge_path_bounds(m, default_parts());
    run_merge_chunks(m, x, y, &entry_bounds, &bounds);
}

/// Runs the merge-path kernel with a precomputed plan — the
/// zero-allocation steady-state path for `csr_merge`.
///
/// A plan without entry bounds (a serial plan from degraded mode, or a
/// foreign row-chunk plan) falls back to the serial basic loop, which
/// is the merge kernel's own single-chunk execution order.
pub(crate) fn run_merge_planned<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], plan: &ExecPlan) {
    check_dims(m, x, y);
    match &plan.entry_bounds {
        Some(eb) if eb.len() == plan.bounds.len() && plan.chunks() > 1 => {
            run_merge_chunks(m, x, y, eb, &plan.bounds)
        }
        _ => basic(m, x, y),
    }
}

/// Serial CSR SpMV with two-row register blocking: adjacent rows are
/// computed with interleaved accumulators, doubling the independent
/// dependency chains in flight.
pub fn blocked2<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let rows = m.rows();
    let pairs = rows / 2;
    for p in 0..pairs {
        let r = 2 * p;
        let (ia, va) = m.row(r);
        let (ib, vb) = m.row(r + 1);
        let common = ia.len().min(ib.len());
        let mut acc_a = T::ZERO;
        let mut acc_b = T::ZERO;
        for k in 0..common {
            acc_a += va[k] * x[ia[k]];
            acc_b += vb[k] * x[ib[k]];
        }
        for k in common..ia.len() {
            acc_a += va[k] * x[ia[k]];
        }
        for k in common..ib.len() {
            acc_b += vb[k] * x[ib[k]];
        }
        y[r] = acc_a;
        y[r + 1] = acc_b;
    }
    if rows % 2 == 1 {
        let r = rows - 1;
        let (idx, val) = m.row(r);
        let mut acc = T::ZERO;
        for (&c, &v) in idx.iter().zip(val) {
            acc += v * x[c];
        }
        y[r] = acc;
    }
}

/// The CSR kernel library: every implementation variant with its
/// strategy set, in a stable order.
pub fn kernels<T: Scalar>() -> Vec<KernelEntry<T, Csr<T>>> {
    use Strategy::*;
    vec![
        (
            "csr_basic",
            StrategySet::EMPTY,
            basic as KernelFn<T, Csr<T>>,
        ),
        ("csr_unroll", [Unroll].into_iter().collect(), unrolled),
        (
            "csr_unroll8",
            [Unroll, Wide].into_iter().collect(),
            unrolled8,
        ),
        ("csr_simd", [Unroll, Simd].into_iter().collect(), simd),
        ("csr_block2", [Block].into_iter().collect(), blocked2),
        ("csr_parallel", [Parallel].into_iter().collect(), parallel),
        (
            "csr_parallel_unroll",
            [Parallel, Unroll].into_iter().collect(),
            parallel_unrolled,
        ),
        (
            "csr_parallel_unroll8",
            [Parallel, Unroll, Wide].into_iter().collect(),
            parallel_unrolled8,
        ),
        (
            "csr_parallel_simd",
            [Parallel, Unroll, Simd].into_iter().collect(),
            parallel_simd,
        ),
        (
            "csr_parallel_balanced",
            [Parallel, Balance].into_iter().collect(),
            parallel_balanced,
        ),
        (
            "csr_parallel_balanced_unroll",
            [Parallel, Balance, Unroll].into_iter().collect(),
            parallel_balanced_unrolled,
        ),
        ("csr_merge", [Parallel, Merge].into_iter().collect(), merge),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{power_law, random_uniform};
    use smat_matrix::utils::max_abs_diff;

    fn reference<T: Scalar>(m: &Csr<T>, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        let m = random_uniform::<f64>(311, 277, 9, 17);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let expect = reference(&m, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![f64::NAN; m.rows()];
            k(&m, &x, &mut y);
            assert!(
                max_abs_diff(&y, &expect) < 1e-12,
                "{name} diverges from reference"
            );
        }
    }

    #[test]
    fn variants_match_on_power_law() {
        let m = power_law::<f32>(500, 120, 2.0, 3);
        let x: Vec<f32> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f32).collect();
        let expect = reference(&m, &x);
        for (name, _, k) in kernels::<f32>() {
            let mut y = vec![0.0f32; m.rows()];
            k(&m, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-2, "{name} diverges");
        }
    }

    #[test]
    fn kernel_set_has_unique_names_and_strategy_sets() {
        let ks = kernels::<f64>();
        let names: std::collections::HashSet<_> = ks.iter().map(|k| k.0).collect();
        assert_eq!(names.len(), ks.len());
        let sets: std::collections::HashSet<_> = ks.iter().map(|k| k.1).collect();
        assert_eq!(sets.len(), ks.len());
        assert!(ks[0].1.is_empty(), "first kernel must be the basic one");
    }

    #[test]
    fn empty_rows_produce_zeros() {
        let m = Csr::<f64>::from_triplets(4, 4, &[(1, 1, 2.0)]).unwrap();
        let x = [1.0; 4];
        for (name, _, k) in kernels::<f64>() {
            let mut y = [9.0; 4];
            k(&m, &x, &mut y);
            assert_eq!(y, [0.0, 2.0, 0.0, 0.0], "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn dimension_mismatch_panics() {
        let m = Csr::<f64>::identity(3);
        let mut y = [0.0; 3];
        basic(&m, &[1.0; 2], &mut y);
    }

    #[test]
    fn merge_splits_a_hot_row_bitwise_on_dyadic_values() {
        // Row 0 holds 64 of 80 entries; dyadic values make every
        // association order exact, so merge must equal basic bitwise
        // even when its chunks cut row 0 mid-stream.
        let mut triplets: Vec<(usize, usize, f64)> =
            (0..64).map(|c| (0, c, 0.25 * (1 + c % 5) as f64)).collect();
        triplets.extend((1..17).map(|r| (r, r % 64, 0.5 * (r % 3) as f64)));
        let m = Csr::from_triplets(17, 64, &triplets).unwrap();
        let x: Vec<f64> = (0..64).map(|i| 0.5 * (i % 9) as f64 - 1.0).collect();
        let mut expect = vec![f64::NAN; 17];
        basic(&m, &x, &mut expect);
        for parts in [2, 3, 5, 8] {
            let (eb, rb) = merge_path_bounds(&m, parts);
            let mut y = vec![f64::NAN; 17];
            run_merge_chunks(&m, &x, &mut y, &eb, &rb);
            assert!(
                y.iter().zip(&expect).all(|(a, b)| a == b),
                "merge @ {parts} parts diverges bitwise"
            );
        }
        // The registered entry point agrees too.
        let mut y = vec![f64::NAN; 17];
        merge(&m, &x, &mut y);
        assert!(y.iter().zip(&expect).all(|(a, b)| a == b));
    }

    #[test]
    fn merge_planned_without_entry_bounds_falls_back_serially() {
        let m = random_uniform::<f64>(50, 50, 4, 21);
        let x = vec![1.0; 50];
        let mut expect = vec![0.0; 50];
        basic(&m, &x, &mut expect);
        let mut y = vec![f64::NAN; 50];
        run_merge_planned(&m, &x, &mut y, &ExecPlan::serial(50));
        assert!(y.iter().zip(&expect).all(|(a, b)| a == b));
    }
}

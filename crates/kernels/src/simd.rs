//! Runtime-dispatched explicit vector backend (the paper's hand-placed
//! SSE intrinsics, here AVX2 behind `is_x86_feature_detected!`).
//!
//! # The reduction-order contract
//!
//! Every entry point in this module is **bit-for-bit identical** to its
//! portable fallback, on every input, on every machine. That is what
//! lets the `Simd` strategy participate in the plan-differential suite
//! (planned == unplanned, AVX2 == portable) and lets a tuning decision
//! made on one code path replay on the other without numeric drift. The
//! contract is upheld by construction:
//!
//! - **CSR row products** use four split accumulators: accumulator `j`
//!   sums the entries at positions `k ≡ j (mod 4)` in row order, the
//!   `nnz % 4` tail folds into accumulator 0, and the final reduction is
//!   `(a0 + a1) + (a2 + a3)`. The AVX2 path keeps one accumulator per
//!   lane — the same four partial sums in the same order — and performs
//!   separate multiply and add instructions (**no FMA**: fused rounding
//!   would diverge from the portable two-rounding sequence). The lane
//!   extraction reduces in the identical tree.
//! - **ELL slab and DIA diagonal sweeps** are element-wise independent
//!   (`y[i] += d[i] * x[...]`, one multiply + one add per element), so
//!   any vector width computes the identical result; again mul + add,
//!   never FMA.
//!
//! No fast-math reassociation is ever applied. Consequently the backend
//! is a pure throughput knob: [`set_backend`] may flip mid-run and no
//! observable value changes.

use crate::scalar_cast::{cast_mut, cast_ref, cast_val};
use smat_matrix::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which vector backend the `Simd`-tagged kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SimdBackend {
    /// Use the best instruction set the CPU reports (AVX2 on `x86_64`
    /// when detected), falling back to the portable unrolled loop.
    Auto,
    /// Always use the portable unrolled loop (bit-identical; useful for
    /// differential testing and when ruling out intrinsics).
    Portable,
}

static POLICY: AtomicU8 = AtomicU8::new(0);

/// Sets the global vector-backend policy (process-wide; flipping it
/// mid-run is safe because both backends are bit-identical).
pub fn set_backend(policy: SimdBackend) {
    POLICY.store(
        match policy {
            SimdBackend::Auto => 0,
            SimdBackend::Portable => 1,
        },
        Ordering::Relaxed,
    );
}

/// The configured vector-backend policy.
pub fn backend() -> SimdBackend {
    match POLICY.load(Ordering::Relaxed) {
        1 => SimdBackend::Portable,
        _ => SimdBackend::Auto,
    }
}

/// Name of the instruction set `Simd` kernels will actually execute
/// with, after policy and CPU detection: `"avx2"` or `"portable"`.
pub fn active_backend() -> &'static str {
    if avx2_active() {
        "avx2"
    } else {
        "portable"
    }
}

/// Whether the AVX2 path is selected (policy allows it and the CPU
/// supports it). Shared with the SpMM tile kernels in [`crate::spmm`].
#[inline]
pub(crate) fn avx2_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        backend() == SimdBackend::Auto && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Sparse dot product of one CSR row against `x` under the four-lane
/// reduction contract (see module docs).
#[inline]
pub(crate) fn row_dot<T: Scalar>(idx: &[usize], val: &[T], x: &[T]) -> T {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        if crate::scalar_cast::is_f64::<T>() {
            // SAFETY: AVX2 support was just detected.
            let r =
                unsafe { avx2::row_dot_f64(idx, cast_ref::<T, f64>(val), cast_ref::<T, f64>(x)) };
            return cast_val::<f64, T>(r);
        }
        if crate::scalar_cast::is_f32::<T>() {
            // SAFETY: AVX2 support was just detected.
            let r =
                unsafe { avx2::row_dot_f32(idx, cast_ref::<T, f32>(val), cast_ref::<T, f32>(x)) };
            return cast_val::<f32, T>(r);
        }
    }
    crate::csr::row_unrolled(idx, val, x)
}

/// One ELL slab step: `y[i] += d[i] * x[idx[i]]` for every `i`
/// (element-wise independent, hence trivially bit-stable).
#[inline]
pub(crate) fn axpy_gather<T: Scalar>(d: &[T], idx: &[usize], x: &[T], y: &mut [T]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        if crate::scalar_cast::is_f64::<T>() {
            // SAFETY: AVX2 support was just detected.
            unsafe {
                avx2::axpy_gather_f64(
                    cast_ref::<T, f64>(d),
                    idx,
                    cast_ref::<T, f64>(x),
                    cast_mut::<T, f64>(y),
                );
            }
            return;
        }
        if crate::scalar_cast::is_f32::<T>() {
            // SAFETY: AVX2 support was just detected.
            unsafe {
                avx2::axpy_gather_f32(
                    cast_ref::<T, f32>(d),
                    idx,
                    cast_ref::<T, f32>(x),
                    cast_mut::<T, f32>(y),
                );
            }
            return;
        }
    }
    portable_axpy_gather(d, idx, x, y);
}

/// One DIA diagonal segment: `y[i] += d[i] * x[i]` over aligned slices.
#[inline]
pub(crate) fn axpy_pointwise<T: Scalar>(d: &[T], xs: &[T], ys: &mut [T]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        if crate::scalar_cast::is_f64::<T>() {
            // SAFETY: AVX2 support was just detected.
            unsafe {
                avx2::axpy_pointwise_f64(
                    cast_ref::<T, f64>(d),
                    cast_ref::<T, f64>(xs),
                    cast_mut::<T, f64>(ys),
                );
            }
            return;
        }
        if crate::scalar_cast::is_f32::<T>() {
            // SAFETY: AVX2 support was just detected.
            unsafe {
                avx2::axpy_pointwise_f32(
                    cast_ref::<T, f32>(d),
                    cast_ref::<T, f32>(xs),
                    cast_mut::<T, f32>(ys),
                );
            }
            return;
        }
    }
    portable_axpy_pointwise(d, xs, ys);
}

/// Portable fallback for [`axpy_gather`], 4-way unrolled for
/// auto-vectorization (bit-identical to the scalar loop: element-wise
/// independent).
fn portable_axpy_gather<T: Scalar>(d: &[T], idx: &[usize], x: &[T], y: &mut [T]) {
    let n = y.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let k = 4 * c;
        y[k] += d[k] * x[idx[k]];
        y[k + 1] += d[k + 1] * x[idx[k + 1]];
        y[k + 2] += d[k + 2] * x[idx[k + 2]];
        y[k + 3] += d[k + 3] * x[idx[k + 3]];
    }
    for k in 4 * chunks..n {
        y[k] += d[k] * x[idx[k]];
    }
}

/// Portable fallback for [`axpy_pointwise`].
fn portable_axpy_pointwise<T: Scalar>(d: &[T], xs: &[T], ys: &mut [T]) {
    let n = ys.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let k = 4 * c;
        ys[k] += d[k] * xs[k];
        ys[k + 1] += d[k + 1] * xs[k + 1];
        ys[k + 2] += d[k + 2] * xs[k + 2];
        ys[k + 3] += d[k + 3] * xs[k + 3];
    }
    for k in 4 * chunks..n {
        ys[k] += d[k] * xs[k];
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 bodies. Every function: mul + add only (no FMA), lane `j`
    //! holds partial sum `j`, tails run the portable scalar code —
    //! upholding the module's reduction-order contract.

    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX2 support. `idx` entries must be
    /// in-bounds for `x` (a CSR structural invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_dot_f64(idx: &[usize], val: &[f64], x: &[f64]) -> f64 {
        let n = val.len();
        let chunks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let k = 4 * c;
            // usize is 64-bit on x86_64: the index quad loads directly.
            let vi = _mm256_loadu_si256(idx.as_ptr().add(k) as *const __m256i);
            let xg = _mm256_i64gather_pd::<8>(x.as_ptr(), vi);
            let vv = _mm256_loadu_pd(val.as_ptr().add(k));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xg));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let [mut a0, a1, a2, a3] = lanes;
        for k in 4 * chunks..n {
            a0 += val[k] * x[idx[k]];
        }
        (a0 + a1) + (a2 + a3)
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support. `idx` entries must be
    /// in-bounds for `x`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_dot_f32(idx: &[usize], val: &[f32], x: &[f32]) -> f32 {
        let n = val.len();
        let chunks = n / 4;
        let mut acc = _mm_setzero_ps();
        for c in 0..chunks {
            let k = 4 * c;
            let vi = _mm256_loadu_si256(idx.as_ptr().add(k) as *const __m256i);
            let xg = _mm256_i64gather_ps::<4>(x.as_ptr(), vi);
            let vv = _mm_loadu_ps(val.as_ptr().add(k));
            acc = _mm_add_ps(acc, _mm_mul_ps(vv, xg));
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        let [mut a0, a1, a2, a3] = lanes;
        for k in 4 * chunks..n {
            a0 += val[k] * x[idx[k]];
        }
        (a0 + a1) + (a2 + a3)
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `d`, `idx` and `y` share
    /// a length and `idx` entries are in-bounds for `x`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_gather_f64(d: &[f64], idx: &[usize], x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let chunks = n / 4;
        for c in 0..chunks {
            let k = 4 * c;
            let vi = _mm256_loadu_si256(idx.as_ptr().add(k) as *const __m256i);
            let xg = _mm256_i64gather_pd::<8>(x.as_ptr(), vi);
            let vd = _mm256_loadu_pd(d.as_ptr().add(k));
            let vy = _mm256_loadu_pd(y.as_ptr().add(k));
            _mm256_storeu_pd(
                y.as_mut_ptr().add(k),
                _mm256_add_pd(vy, _mm256_mul_pd(vd, xg)),
            );
        }
        for k in 4 * chunks..n {
            y[k] += d[k] * x[idx[k]];
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `d`, `idx` and `y` share
    /// a length and `idx` entries are in-bounds for `x`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_gather_f32(d: &[f32], idx: &[usize], x: &[f32], y: &mut [f32]) {
        let n = y.len();
        let chunks = n / 4;
        for c in 0..chunks {
            let k = 4 * c;
            let vi = _mm256_loadu_si256(idx.as_ptr().add(k) as *const __m256i);
            let xg = _mm256_i64gather_ps::<4>(x.as_ptr(), vi);
            let vd = _mm_loadu_ps(d.as_ptr().add(k));
            let vy = _mm_loadu_ps(y.as_ptr().add(k));
            _mm_storeu_ps(y.as_mut_ptr().add(k), _mm_add_ps(vy, _mm_mul_ps(vd, xg)));
        }
        for k in 4 * chunks..n {
            y[k] += d[k] * x[idx[k]];
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; the three slices share a
    /// length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_pointwise_f64(d: &[f64], xs: &[f64], ys: &mut [f64]) {
        let n = ys.len();
        let chunks = n / 4;
        for c in 0..chunks {
            let k = 4 * c;
            let vd = _mm256_loadu_pd(d.as_ptr().add(k));
            let vx = _mm256_loadu_pd(xs.as_ptr().add(k));
            let vy = _mm256_loadu_pd(ys.as_ptr().add(k));
            _mm256_storeu_pd(
                ys.as_mut_ptr().add(k),
                _mm256_add_pd(vy, _mm256_mul_pd(vd, vx)),
            );
        }
        for k in 4 * chunks..n {
            ys[k] += d[k] * xs[k];
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; the three slices share a
    /// length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_pointwise_f32(d: &[f32], xs: &[f32], ys: &mut [f32]) {
        let n = ys.len();
        let chunks = n / 8;
        for c in 0..chunks {
            let k = 8 * c;
            let vd = _mm256_loadu_ps(d.as_ptr().add(k));
            let vx = _mm256_loadu_ps(xs.as_ptr().add(k));
            let vy = _mm256_loadu_ps(ys.as_ptr().add(k));
            _mm256_storeu_ps(
                ys.as_mut_ptr().add(k),
                _mm256_add_ps(vy, _mm256_mul_ps(vd, vx)),
            );
        }
        for k in 8 * chunks..n {
            ys[k] += d[k] * xs[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_f64(n: usize, cols: usize, seed: u64) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let idx: Vec<usize> = (0..n).map(|_| (next() as usize) % cols.max(1)).collect();
        let val: Vec<f64> = (0..n)
            .map(|_| (next() % 1000) as f64 * 0.37 - 185.0)
            .collect();
        let x: Vec<f64> = (0..cols)
            .map(|_| (next() % 1000) as f64 * 0.19 - 95.0)
            .collect();
        (idx, val, x)
    }

    #[test]
    fn row_dot_matches_portable_bitwise() {
        for n in [0, 1, 3, 4, 5, 7, 8, 63, 64, 257] {
            let (idx, val, x) = corpus_f64(n, 97, n as u64 + 1);
            let portable = crate::csr::row_unrolled(&idx, &val, &x);
            let dispatched = row_dot(&idx, &val, &x);
            assert_eq!(
                portable.to_bits(),
                dispatched.to_bits(),
                "n={n} backend={}",
                active_backend()
            );
        }
    }

    #[test]
    fn axpy_entry_points_match_portable_bitwise() {
        for n in [0, 1, 4, 7, 31, 128] {
            let (idx, d, x) = corpus_f64(n, 53, n as u64 + 9);
            let mut y_a = vec![0.25f64; n];
            let mut y_b = y_a.clone();
            axpy_gather(&d, &idx, &x, &mut y_a);
            portable_axpy_gather(&d, &idx, &x, &mut y_b);
            assert_eq!(y_a, y_b, "gather n={n}");

            let xs = &x[..n.min(x.len())];
            let mut y_c = vec![1.5f64; xs.len()];
            let mut y_d = y_c.clone();
            axpy_pointwise(&d[..xs.len()], xs, &mut y_c);
            portable_axpy_pointwise(&d[..xs.len()], xs, &mut y_d);
            assert_eq!(y_c, y_d, "pointwise n={n}");
        }
    }

    #[test]
    fn policy_round_trips() {
        assert_eq!(backend(), SimdBackend::Auto);
        set_backend(SimdBackend::Portable);
        assert_eq!(backend(), SimdBackend::Portable);
        assert_eq!(active_backend(), "portable");
        set_backend(SimdBackend::Auto);
        assert_eq!(backend(), SimdBackend::Auto);
    }
}

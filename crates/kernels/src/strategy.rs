//! Optimization strategies and strategy sets.
//!
//! The paper's kernel library tags every SpMV implementation with the set
//! of optimization strategies it applies (§5.2): the scoreboard algorithm
//! then scores *strategies* from measured performance and scores
//! *implementations* as the sum of their strategies' scores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single kernel optimization strategy.
///
/// These are the architecture-level techniques the paper's kernel library
/// composes: unrolling depth, threading and partitioning policies, row /
/// slot / diagonal blocking, and explicit SIMD intrinsics (the paper's
/// hand-placed SSE; here a runtime-dispatched AVX2 backend, see
/// [`crate::simd`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Strategy {
    /// Inner-loop unrolling with split accumulators (enables
    /// auto-vectorization, the paper's "SIMDization" + unrolling).
    Unroll,
    /// Multi-threaded execution (the paper's "task parallelism policy").
    Parallel,
    /// Nonzero-balanced work partitioning across threads (the paper's
    /// "threading policy" refinement for irregular matrices).
    Balance,
    /// Register blocking: fusing two rows / packed slots / diagonals per
    /// iteration for instruction-level parallelism and fewer output
    /// sweeps (the paper's "blocking methods").
    Block,
    /// Deeper 8-way unrolling (twice the split accumulators of
    /// [`Strategy::Unroll`]) — wins when the FP-add latency chain, not
    /// bandwidth, is the bottleneck.
    Wide,
    /// Explicit vector intrinsics behind runtime CPU-feature dispatch,
    /// falling back to the portable unrolled loop bit-for-bit (see
    /// [`crate::simd`] for the reduction-order contract).
    Simd,
    /// Merge-path decomposition: the nonzero stream is split into equal
    /// entry ranges regardless of row boundaries, with per-chunk carry
    /// partials fixed up serially afterwards. Immune to the single-hot-row
    /// imbalance that defeats every row-granular partition (CSR only).
    Merge,
    /// Multi-RHS register tiling over 2 right-hand-side columns per
    /// matrix sweep (SpMM kernels only). The tile width is a *searched*
    /// dimension: each width is a separate registry entry, so the
    /// scoreboard scores tiling like any other strategy.
    Tile2,
    /// Multi-RHS register tiling over 4 columns per sweep.
    Tile4,
    /// Multi-RHS register tiling over 8 columns per sweep.
    Tile8,
}

impl Strategy {
    /// All strategies, in bit order.
    pub const ALL: [Strategy; 10] = [
        Strategy::Unroll,
        Strategy::Parallel,
        Strategy::Balance,
        Strategy::Block,
        Strategy::Wide,
        Strategy::Simd,
        Strategy::Merge,
        Strategy::Tile2,
        Strategy::Tile4,
        Strategy::Tile8,
    ];

    fn bit(self) -> u16 {
        match self {
            Strategy::Unroll => 1,
            Strategy::Parallel => 2,
            Strategy::Balance => 4,
            Strategy::Block => 8,
            Strategy::Wide => 16,
            Strategy::Simd => 32,
            Strategy::Merge => 64,
            Strategy::Tile2 => 128,
            Strategy::Tile4 => 256,
            Strategy::Tile8 => 512,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Unroll => "unroll",
            Strategy::Parallel => "parallel",
            Strategy::Balance => "balance",
            Strategy::Block => "block",
            Strategy::Wide => "wide",
            Strategy::Simd => "simd",
            Strategy::Merge => "merge",
            Strategy::Tile2 => "tile2",
            Strategy::Tile4 => "tile4",
            Strategy::Tile8 => "tile8",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`Strategy`] values attached to a kernel implementation.
///
/// # Examples
///
/// ```
/// use smat_kernels::{Strategy, StrategySet};
///
/// let s = StrategySet::EMPTY.with(Strategy::Unroll).with(Strategy::Parallel);
/// assert!(s.contains(Strategy::Unroll));
/// assert!(!s.contains(Strategy::Balance));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StrategySet(u16);

impl StrategySet {
    /// The basic implementation: no optimization strategies.
    pub const EMPTY: StrategySet = StrategySet(0);

    /// Returns this set with `s` added.
    #[must_use]
    pub fn with(self, s: Strategy) -> Self {
        StrategySet(self.0 | s.bit())
    }

    /// Whether `s` is in the set.
    pub fn contains(self, s: Strategy) -> bool {
        self.0 & s.bit() != 0
    }

    /// Number of strategies in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty (the basic implementation).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained strategies.
    pub fn iter(self) -> impl Iterator<Item = Strategy> {
        Strategy::ALL.into_iter().filter(move |&s| self.contains(s))
    }

    /// Whether `other` is exactly this set plus one extra strategy.
    ///
    /// The scoreboard compares each implementation against those with
    /// "just one less optimization strategy" (§5.2).
    pub fn is_one_less_than(self, other: StrategySet) -> bool {
        other.0 & self.0 == self.0 && (other.0 ^ self.0).count_ones() == 1
    }

    /// The strategy in `other` but not in `self`, if exactly one.
    pub fn added_strategy(self, other: StrategySet) -> Option<Strategy> {
        if self.is_one_less_than(other) {
            let diff = other.0 ^ self.0;
            Strategy::ALL.into_iter().find(|s| s.bit() == diff)
        } else {
            None
        }
    }

    /// The multi-RHS register-tile width this set encodes: 2/4/8 for the
    /// `Tile*` strategies, 1 when none is present (column-at-a-time).
    pub fn tile_width(self) -> usize {
        if self.contains(Strategy::Tile8) {
            8
        } else if self.contains(Strategy::Tile4) {
            4
        } else if self.contains(Strategy::Tile2) {
            2
        } else {
            1
        }
    }
}

impl fmt::Display for StrategySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("basic");
        }
        let mut first = true;
        for s in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            f.write_str(s.name())?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Strategy> for StrategySet {
    fn from_iter<I: IntoIterator<Item = Strategy>>(iter: I) -> Self {
        iter.into_iter().fold(StrategySet::EMPTY, StrategySet::with)
    }
}

/// The inner-loop body a variant's strategy set selects, shared by the
/// planned and unplanned dispatch paths so both execute the identical
/// floating-point operation order (the bitwise plan-differential
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InnerLoop {
    /// Sequential accumulation.
    Scalar,
    /// 4-way split accumulators.
    Unroll4,
    /// 8-way split accumulators.
    Unroll8,
    /// Runtime-dispatched vector backend (bit-identical to `Unroll4`).
    Simd,
}

impl InnerLoop {
    /// Maps a strategy set to its inner loop: `Simd` and `Wide` refine
    /// `Unroll`, with `Simd` taking precedence.
    pub(crate) fn of(set: StrategySet) -> Self {
        if set.contains(Strategy::Simd) {
            InnerLoop::Simd
        } else if set.contains(Strategy::Wide) {
            InnerLoop::Unroll8
        } else if set.contains(Strategy::Unroll) {
            InnerLoop::Unroll4
        } else {
            InnerLoop::Scalar
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_and_contains() {
        let s = StrategySet::EMPTY.with(Strategy::Parallel);
        assert!(s.contains(Strategy::Parallel));
        assert!(!s.contains(Strategy::Unroll));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(StrategySet::EMPTY.is_empty());
    }

    #[test]
    fn one_less_relation() {
        let base = StrategySet::EMPTY.with(Strategy::Parallel);
        let more = base.with(Strategy::Unroll);
        assert!(base.is_one_less_than(more));
        assert!(!more.is_one_less_than(base));
        assert!(!base.is_one_less_than(base));
        assert_eq!(base.added_strategy(more), Some(Strategy::Unroll));
        assert_eq!(more.added_strategy(base), None);

        let far = base.with(Strategy::Unroll).with(Strategy::Balance);
        assert!(!base.is_one_less_than(far));
    }

    #[test]
    fn display_forms() {
        assert_eq!(StrategySet::EMPTY.to_string(), "basic");
        let s: StrategySet = [Strategy::Unroll, Strategy::Parallel].into_iter().collect();
        assert_eq!(s.to_string(), "unroll+parallel");
    }

    #[test]
    fn iter_round_trips() {
        let s: StrategySet = Strategy::ALL.into_iter().collect();
        let back: StrategySet = s.iter().collect();
        assert_eq!(s, back);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn tile_width_decodes() {
        assert_eq!(StrategySet::EMPTY.tile_width(), 1);
        assert_eq!(StrategySet::EMPTY.with(Strategy::Tile2).tile_width(), 2);
        assert_eq!(StrategySet::EMPTY.with(Strategy::Tile4).tile_width(), 4);
        assert_eq!(
            StrategySet::EMPTY
                .with(Strategy::Tile8)
                .with(Strategy::Parallel)
                .tile_width(),
            8
        );
    }

    #[test]
    fn inner_loop_precedence() {
        use Strategy::*;
        assert_eq!(InnerLoop::of(StrategySet::EMPTY), InnerLoop::Scalar);
        assert_eq!(
            InnerLoop::of([Unroll].into_iter().collect()),
            InnerLoop::Unroll4
        );
        assert_eq!(
            InnerLoop::of([Unroll, Wide].into_iter().collect()),
            InnerLoop::Unroll8
        );
        assert_eq!(
            InnerLoop::of([Unroll, Simd].into_iter().collect()),
            InnerLoop::Simd
        );
    }
}

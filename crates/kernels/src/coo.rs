//! COO SpMV kernel variants.
//!
//! The sequential loop follows the paper's Figure 2(b). The parallel
//! variants exploit the sorted-by-row invariant of
//! [`Coo`]: entry ranges are snapped to row boundaries
//! so each rayon task owns a disjoint slice of `y` and no atomics are
//! needed.

use crate::exec;
use crate::partition::default_parts;
use crate::plan::ExecPlan;
use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{Strategy, StrategySet};
use smat_matrix::{Coo, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Coo<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Basic serial COO SpMV — the paper's Figure 2(b) loop.
pub fn basic<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let rows = m.row_idx();
    let cols = m.col_idx();
    let vals = m.values();
    for i in 0..vals.len() {
        y[rows[i]] += vals[i] * x[cols[i]];
    }
}

/// Serial COO SpMV, 4-way unrolled over entries.
///
/// Unlike CSR, accumulators cannot be split across lanes (two lanes may
/// target the same output row), so the unroll only restructures the loop
/// to shorten the dependency chains of index arithmetic.
pub fn unrolled<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let rows = m.row_idx();
    let cols = m.col_idx();
    let vals = m.values();
    let n = vals.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let k = 4 * c;
        let p0 = vals[k] * x[cols[k]];
        let p1 = vals[k + 1] * x[cols[k + 1]];
        let p2 = vals[k + 2] * x[cols[k + 2]];
        let p3 = vals[k + 3] * x[cols[k + 3]];
        y[rows[k]] += p0;
        y[rows[k + 1]] += p1;
        y[rows[k + 2]] += p2;
        y[rows[k + 3]] += p3;
    }
    for k in 4 * chunks..n {
        y[rows[k]] += vals[k] * x[cols[k]];
    }
}

/// Computes entry-range boundaries snapped to row starts, and the
/// corresponding row boundaries, such that each entry chunk touches a
/// disjoint row range.
pub(crate) fn row_aligned_chunks<T: Scalar>(m: &Coo<T>, parts: usize) -> (Vec<usize>, Vec<usize>) {
    let nnz = m.nnz();
    let rows_arr = m.row_idx();
    let mut entry_bounds = vec![0usize];
    let mut row_bounds = vec![0usize];
    let target = nnz.div_ceil(parts.max(1));
    let mut k = target;
    while k < nnz {
        // Snap forward to the first entry of the next row.
        let row_here = rows_arr[k];
        let mut snapped = k;
        while snapped < nnz && rows_arr[snapped] == row_here {
            snapped += 1;
        }
        // Only create a boundary if it advances past the previous one.
        if snapped < nnz && snapped > *entry_bounds.last().expect("non-empty") {
            entry_bounds.push(snapped);
            row_bounds.push(rows_arr[snapped]);
        }
        k = snapped.max(k) + target;
    }
    entry_bounds.push(nnz);
    row_bounds.push(m.rows());
    (entry_bounds, row_bounds)
}

#[inline]
fn run_chunks<T: Scalar>(
    m: &Coo<T>,
    x: &[T],
    y: &mut [T],
    entry_bounds: &[usize],
    row_bounds: &[usize],
    unroll: bool,
) {
    y.fill(T::ZERO);
    let rows = m.row_idx();
    let cols = m.col_idx();
    let vals = m.values();
    exec::for_each_row_chunk(y, row_bounds, |ci, y_chunk| {
        let (s, e) = (entry_bounds[ci], entry_bounds[ci + 1]);
        let r0 = row_bounds[ci];
        if unroll {
            let n = e - s;
            let quads = n / 4;
            for q in 0..quads {
                let k = s + 4 * q;
                let p0 = vals[k] * x[cols[k]];
                let p1 = vals[k + 1] * x[cols[k + 1]];
                let p2 = vals[k + 2] * x[cols[k + 2]];
                let p3 = vals[k + 3] * x[cols[k + 3]];
                y_chunk[rows[k] - r0] += p0;
                y_chunk[rows[k + 1] - r0] += p1;
                y_chunk[rows[k + 2] - r0] += p2;
                y_chunk[rows[k + 3] - r0] += p3;
            }
            for k in s + 4 * quads..e {
                y_chunk[rows[k] - r0] += vals[k] * x[cols[k]];
            }
        } else {
            for k in s..e {
                y_chunk[rows[k] - r0] += vals[k] * x[cols[k]];
            }
        }
    });
}

#[inline]
fn run_parallel<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T], unroll: bool) {
    let (entry_bounds, row_bounds) = row_aligned_chunks(m, default_parts());
    run_chunks(m, x, y, &entry_bounds, &row_bounds, unroll);
}

/// Runs a parallel COO variant with precomputed row/entry chunk bounds.
/// A plan whose entry bounds don't match this matrix (e.g. built for a
/// different nnz count) falls back to recomputing the partition rather
/// than indexing out of range.
pub(crate) fn run_planned<T: Scalar>(
    m: &Coo<T>,
    x: &[T],
    y: &mut [T],
    plan: &ExecPlan,
    unroll: bool,
) {
    check_dims(m, x, y);
    match &plan.entry_bounds {
        Some(eb) if eb.last() == Some(&m.nnz()) && eb.len() == plan.bounds.len() => {
            run_chunks(m, x, y, eb, &plan.bounds, unroll);
        }
        // A single-chunk plan is the whole entry range: keep it on the
        // serial fast path instead of re-partitioning onto the pool.
        _ if plan.bounds.len() == 2 => {
            run_chunks(m, x, y, &[0, m.nnz()], &[0, y.len()], unroll);
        }
        _ => run_parallel(m, x, y, unroll),
    }
}

/// Parallel COO SpMV over row-aligned entry chunks (atomics-free).
///
/// Entry chunks have near-equal nonzero counts by construction, so this
/// kernel carries both the `parallel` and `balance` strategies.
pub fn parallel<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, false);
}

/// Parallel + unrolled COO SpMV.
pub fn parallel_unrolled<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, true);
}

/// The COO kernel library.
pub fn kernels<T: Scalar>() -> Vec<KernelEntry<T, Coo<T>>> {
    use Strategy::*;
    vec![
        (
            "coo_basic",
            StrategySet::EMPTY,
            basic as KernelFn<T, Coo<T>>,
        ),
        ("coo_unroll", [Unroll].into_iter().collect(), unrolled),
        (
            "coo_parallel",
            [Parallel, Balance].into_iter().collect(),
            parallel,
        ),
        (
            "coo_parallel_unroll",
            [Parallel, Balance, Unroll].into_iter().collect(),
            parallel_unrolled,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{power_law, random_uniform};
    use smat_matrix::utils::max_abs_diff;
    use smat_matrix::Csr;

    fn reference(m: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        let csr = random_uniform::<f64>(401, 350, 7, 23);
        let coo = Coo::from_csr(&csr);
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.11).cos()).collect();
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![f64::NAN; csr.rows()];
            k(&coo, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn parallel_handles_heavy_rows() {
        // One row holds most entries: chunk snapping must not split it.
        let csr = power_law::<f64>(600, 400, 1.4, 5);
        let coo = Coo::from_csr(&csr);
        let x: Vec<f64> = (0..csr.cols()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let expect = reference(&csr, &x);
        let mut y = vec![0.0; csr.rows()];
        parallel(&coo, &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
        parallel_unrolled(&coo, &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
    }

    #[test]
    fn row_aligned_chunks_are_disjoint() {
        let csr = random_uniform::<f64>(100, 100, 5, 1);
        let coo = Coo::from_csr(&csr);
        let (eb, rb) = row_aligned_chunks(&coo, 7);
        assert_eq!(eb.len(), rb.len());
        assert_eq!(*eb.last().unwrap(), coo.nnz());
        assert_eq!(*rb.last().unwrap(), coo.rows());
        assert!(eb.windows(2).all(|w| w[0] < w[1]));
        assert!(rb.windows(2).all(|w| w[0] < w[1]));
        // Every chunk's entries fall inside its row range.
        for c in 0..eb.len() - 1 {
            for k in eb[c]..eb[c + 1] {
                assert!(coo.row_idx()[k] >= rb[c] && coo.row_idx()[k] < rb[c + 1]);
            }
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let coo = Coo::<f64>::new(3, 3, vec![], vec![], vec![]).unwrap();
        for (name, _, k) in kernels::<f64>() {
            let mut y = [1.0; 3];
            k(&coo, &[1.0; 3], &mut y);
            assert_eq!(y, [0.0; 3], "{name}");
        }
    }
}

//! DIA SpMV kernel variants.
//!
//! The sequential loop follows the paper's Figure 2(c): diagonal-major
//! traversal with contiguous reads of `x`. Parallel variants partition
//! the *rows* so each task updates a disjoint slice of `y` while keeping
//! the diagonal-major inner loop (and its streaming access pattern)
//! inside each chunk.

use crate::exec;
use crate::partition::{default_parts, equal_row_bounds};
use crate::plan::ExecPlan;
use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{InnerLoop, Strategy, StrategySet};
use smat_matrix::{Dia, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Dia<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Basic serial DIA SpMV — the paper's Figure 2(c) loop.
pub fn basic<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let stride = m.rows();
    let data = m.data();
    for (d, &k) in m.offsets().iter().enumerate() {
        let i_start = 0.max(-k) as usize;
        let j_start = 0.max(k) as usize;
        let n = (m.rows() - i_start).min(m.cols() - j_start);
        let diag = &data[d * stride + i_start..d * stride + i_start + n];
        let xs = &x[j_start..j_start + n];
        let ys = &mut y[i_start..i_start + n];
        for i in 0..n {
            ys[i] += diag[i] * xs[i];
        }
    }
}

/// One diagonal segment `ys[i] += data[i] * xs[i]` through the selected
/// inner loop. Element-wise independent, so all four bodies are
/// bit-identical (see [`crate::simd`]).
#[inline]
fn segment_step<T: Scalar>(data: &[T], xs: &[T], ys: &mut [T], inner: InnerLoop) {
    let n = ys.len();
    match inner {
        InnerLoop::Scalar => {
            for i in 0..n {
                ys[i] += data[i] * xs[i];
            }
        }
        InnerLoop::Unroll4 => {
            let quads = n / 4;
            for q in 0..quads {
                let i = 4 * q;
                ys[i] += data[i] * xs[i];
                ys[i + 1] += data[i + 1] * xs[i + 1];
                ys[i + 2] += data[i + 2] * xs[i + 2];
                ys[i + 3] += data[i + 3] * xs[i + 3];
            }
            for i in 4 * quads..n {
                ys[i] += data[i] * xs[i];
            }
        }
        InnerLoop::Unroll8 => {
            let octs = n / 8;
            for q in 0..octs {
                let i = 8 * q;
                ys[i] += data[i] * xs[i];
                ys[i + 1] += data[i + 1] * xs[i + 1];
                ys[i + 2] += data[i + 2] * xs[i + 2];
                ys[i + 3] += data[i + 3] * xs[i + 3];
                ys[i + 4] += data[i + 4] * xs[i + 4];
                ys[i + 5] += data[i + 5] * xs[i + 5];
                ys[i + 6] += data[i + 6] * xs[i + 6];
                ys[i + 7] += data[i + 7] * xs[i + 7];
            }
            for i in 8 * octs..n {
                ys[i] += data[i] * xs[i];
            }
        }
        InnerLoop::Simd => crate::simd::axpy_pointwise(data, xs, ys),
    }
}

#[inline]
fn run_serial<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T], inner: InnerLoop) {
    y.fill(T::ZERO);
    let stride = m.rows();
    let data = m.data();
    for (d, &k) in m.offsets().iter().enumerate() {
        let i_start = 0.max(-k) as usize;
        let j_start = 0.max(k) as usize;
        let n = (m.rows() - i_start).min(m.cols() - j_start);
        let diag = &data[d * stride + i_start..d * stride + i_start + n];
        let xs = &x[j_start..j_start + n];
        let ys = &mut y[i_start..i_start + n];
        segment_step(diag, xs, ys, inner);
    }
}

/// Serial DIA SpMV with a 4-way unrolled segment loop.
pub fn unrolled<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Unroll4);
}

/// Serial DIA SpMV with an 8-way unrolled segment loop.
pub fn unrolled8<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Unroll8);
}

/// Serial DIA SpMV through the runtime-dispatched vector backend
/// (bit-identical to [`unrolled`], see [`crate::simd`]).
pub fn simd<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Simd);
}

/// Adds diagonal `d`'s contribution to rows `[r0, r1)` of `y_chunk`
/// (whose index 0 corresponds to global row `r0`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn diag_segment<T: Scalar>(
    m: &Dia<T>,
    d: usize,
    off: isize,
    x: &[T],
    y_chunk: &mut [T],
    r0: usize,
    r1: usize,
    inner: InnerLoop,
) {
    let stride = m.rows();
    // Global row range covered by this diagonal.
    let lo = (0.max(-off) as usize).max(r0);
    let hi = ((m.rows()).min((m.cols() as isize - off).max(0) as usize)).min(r1);
    if lo >= hi {
        return;
    }
    let n = hi - lo;
    let data = &m.data()[d * stride + lo..d * stride + lo + n];
    let xs = &x[(lo as isize + off) as usize..(lo as isize + off) as usize + n];
    let ys = &mut y_chunk[lo - r0..lo - r0 + n];
    segment_step(data, xs, ys, inner);
}

#[inline]
fn run_chunks<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T], bounds: &[usize], inner: InnerLoop) {
    exec::for_each_row_chunk(y, bounds, |ci, y_chunk| {
        y_chunk.fill(T::ZERO);
        let (r0, r1) = (bounds[ci], bounds[ci + 1]);
        for (d, &off) in m.offsets().iter().enumerate() {
            diag_segment(m, d, off, x, y_chunk, r0, r1, inner);
        }
    });
}

#[inline]
fn run_parallel<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T], inner: InnerLoop) {
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, inner);
}

/// Runs a parallel DIA variant with precomputed row chunk bounds.
pub(crate) fn run_planned<T: Scalar>(
    m: &Dia<T>,
    x: &[T],
    y: &mut [T],
    plan: &ExecPlan,
    inner: InnerLoop,
) {
    check_dims(m, x, y);
    run_chunks(m, x, y, &plan.bounds, inner);
}

/// Row-parallel DIA SpMV.
pub fn parallel<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Scalar);
}

/// Row-parallel DIA SpMV with unrolled segments.
pub fn parallel_unrolled<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Unroll4);
}

/// Row-parallel DIA SpMV with 8-way unrolled segments.
pub fn parallel_unrolled8<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Unroll8);
}

/// Row-parallel DIA SpMV through the vector backend.
pub fn parallel_simd<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Simd);
}

/// Adds one diagonal's contribution over the global row range
/// `[from, to)`, optionally 4-way unrolled.
#[inline]
#[allow(clippy::too_many_arguments)]
fn add_diag_range<T: Scalar>(
    m: &Dia<T>,
    d: usize,
    off: isize,
    x: &[T],
    y: &mut [T],
    from: usize,
    to: usize,
    unroll: bool,
) {
    if from >= to {
        return;
    }
    let stride = m.rows();
    let n = to - from;
    let data = &m.data()[d * stride + from..d * stride + to];
    let xs = &x[(from as isize + off) as usize..(from as isize + off) as usize + n];
    let ys = &mut y[from..to];
    if unroll {
        let quads = n / 4;
        for q in 0..quads {
            let i = 4 * q;
            ys[i] += data[i] * xs[i];
            ys[i + 1] += data[i + 1] * xs[i + 1];
            ys[i + 2] += data[i + 2] * xs[i + 2];
            ys[i + 3] += data[i + 3] * xs[i + 3];
        }
        for i in 4 * quads..n {
            ys[i] += data[i] * xs[i];
        }
    } else {
        for i in 0..n {
            ys[i] += data[i] * xs[i];
        }
    }
}

/// Valid global row range of a diagonal: `[max(0, -off), min(rows, cols - off))`.
#[inline]
fn diag_rows<T: Scalar>(m: &Dia<T>, off: isize) -> (usize, usize) {
    let lo = 0.max(-off) as usize;
    let hi = (m.rows()).min((m.cols() as isize - off).max(0) as usize);
    (lo, hi.max(lo))
}

#[inline]
fn run_blocked2<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T], unroll: bool) {
    y.fill(T::ZERO);
    let offsets = m.offsets();
    let stride = m.rows();
    let pairs = offsets.len() / 2;
    for q in 0..pairs {
        let d0 = 2 * q;
        let d1 = d0 + 1;
        let (k0, k1) = (offsets[d0], offsets[d1]);
        // Offsets are sorted ascending, so diag 0's range sits at or
        // after diag 1's: lo1 <= lo0 and hi1 <= hi0.
        let (lo0, hi0) = diag_rows(m, k0);
        let (lo1, hi1) = diag_rows(m, k1);
        debug_assert!(lo1 <= lo0 && hi1 <= hi0);
        // Prefix: only diag 1 active.
        add_diag_range(m, d1, k1, x, y, lo1, lo0.min(hi1), unroll);
        // Fused middle: both diagonals active.
        let (fl, fh) = (lo0, hi1.max(lo0));
        if fl < fh {
            let n = fh - fl;
            let a0 = &m.data()[d0 * stride + fl..d0 * stride + fh];
            let a1 = &m.data()[d1 * stride + fl..d1 * stride + fh];
            let x0 = &x[(fl as isize + k0) as usize..(fl as isize + k0) as usize + n];
            let x1 = &x[(fl as isize + k1) as usize..(fl as isize + k1) as usize + n];
            let ys = &mut y[fl..fh];
            for i in 0..n {
                ys[i] += a0[i] * x0[i] + a1[i] * x1[i];
            }
        }
        // Suffix: only diag 0 active.
        add_diag_range(m, d0, k0, x, y, hi1.max(lo0), hi0, unroll);
    }
    if offsets.len() % 2 == 1 {
        let d = offsets.len() - 1;
        let off = offsets[d];
        let (lo, hi) = diag_rows(m, off);
        add_diag_range(m, d, off, x, y, lo, hi, unroll);
    }
}

/// Serial DIA SpMV with diagonal-pair register blocking: adjacent
/// diagonals are fused over their common row range, halving the sweeps
/// over `y`.
pub fn blocked2<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_blocked2(m, x, y, false);
}

/// Diagonal-pair blocked DIA SpMV with unrolled prefix/suffix segments.
pub fn blocked2_unrolled<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_blocked2(m, x, y, true);
}

/// The DIA kernel library.
pub fn kernels<T: Scalar>() -> Vec<KernelEntry<T, Dia<T>>> {
    use Strategy::*;
    vec![
        (
            "dia_basic",
            StrategySet::EMPTY,
            basic as KernelFn<T, Dia<T>>,
        ),
        ("dia_unroll", [Unroll].into_iter().collect(), unrolled),
        (
            "dia_unroll8",
            [Unroll, Wide].into_iter().collect(),
            unrolled8,
        ),
        ("dia_simd", [Unroll, Simd].into_iter().collect(), simd),
        ("dia_block2", [Block].into_iter().collect(), blocked2),
        (
            "dia_block2_unroll",
            [Block, Unroll].into_iter().collect(),
            blocked2_unrolled,
        ),
        ("dia_parallel", [Parallel].into_iter().collect(), parallel),
        (
            "dia_parallel_unroll",
            [Parallel, Unroll].into_iter().collect(),
            parallel_unrolled,
        ),
        (
            "dia_parallel_unroll8",
            [Parallel, Unroll, Wide].into_iter().collect(),
            parallel_unrolled8,
        ),
        (
            "dia_parallel_simd",
            [Parallel, Unroll, Simd].into_iter().collect(),
            parallel_simd,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{banded, laplacian_2d_5pt};
    use smat_matrix::utils::max_abs_diff;
    use smat_matrix::Csr;

    fn reference(m: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        let csr = laplacian_2d_5pt::<f64>(23, 19);
        let dia = Dia::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.05).sin()).collect();
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![f64::NAN; csr.rows()];
            k(&dia, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn variants_match_on_scattered_bands() {
        let csr = banded::<f64>(513, &[-37, -2, 0, 1, 53], 0.6, 7);
        let dia = Dia::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..csr.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![0.0; csr.rows()];
            k(&dia, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn rectangular_matrices() {
        let csr =
            Csr::<f64>::from_triplets(5, 8, &[(0, 0, 1.0), (1, 2, 2.0), (4, 7, 3.0), (2, 2, 4.0)])
                .unwrap();
        let dia = Dia::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![0.0; 5];
            k(&dia, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = Csr::<f64>::from_triplets(4, 4, &[]).unwrap();
        let dia = Dia::from_csr(&csr).unwrap();
        for (name, _, k) in kernels::<f64>() {
            let mut y = [3.0; 4];
            k(&dia, &[1.0; 4], &mut y);
            assert_eq!(y, [0.0; 4], "{name}");
        }
    }
}

//! Precomputed execution plans.
//!
//! An [`ExecPlan`] freezes every decision a parallel kernel would
//! otherwise re-derive per call — how many threads to target, where the
//! row-chunk boundaries fall, and (for COO and merge-path CSR) the
//! matching entry-range boundaries. The planner in the registry builds
//! one per tuned kernel during `prepare()`; steady-state SpMV then
//! replays it with zero heap allocations and zero partitioning work.
//!
//! Plans are persisted inside the tuning-cache entry, so they carry the
//! thread count they were built for. [`ExecPlan::is_stale`] detects a
//! mismatch with the current execution backend (e.g. a cache file moved
//! between machines), in which case the runtime rebuilds the plan —
//! preserving the recorded [`ChunkPolicy`] so a plan-searched policy
//! survives the rebuild.

use serde::{Deserialize, Serialize};

/// The memoizable "shape" of an [`ExecPlan`]: how rows are split into
/// chunks, independent of which specific kernel asked.
///
/// Recorded on every plan (and therefore in cache entries and bench
/// artifacts), so the partitioning decision that produced a measurement
/// is always observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ChunkPolicy {
    /// Single chunk covering all rows (serial variants and fallbacks).
    #[default]
    Serial,
    /// Rows split evenly across chunks.
    EqualRows,
    /// Row chunks balanced by nonzero count (CSR `Balance` variants).
    NnzBalanced,
    /// Entry-aligned chunks with matching row spans (COO variants).
    EntryAligned,
    /// Row bounds snapped to block-row boundaries; the payload is the
    /// block height (BCSR variants).
    BlockAligned(usize),
    /// Equal entry-range chunks that may split rows mid-stream, with
    /// row write-ownership bounds and a serial carry fix-up (the CSR
    /// merge-path kernel).
    MergePath,
}

impl ChunkPolicy {
    /// Short stable name, used in bench artifacts and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ChunkPolicy::Serial => "serial",
            ChunkPolicy::EqualRows => "equal_rows",
            ChunkPolicy::NnzBalanced => "nnz_balanced",
            ChunkPolicy::EntryAligned => "entry_aligned",
            ChunkPolicy::BlockAligned(_) => "block_aligned",
            ChunkPolicy::MergePath => "merge_path",
        }
    }
}

impl std::fmt::Display for ChunkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Frozen partitioning decisions for one (matrix, kernel) pairing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecPlan {
    /// Row-chunk boundaries: `bounds[i]..bounds[i + 1]` is chunk `i`'s
    /// row range. Always `len >= 2`, starts at 0, ends at `rows`. For
    /// merge-path plans these are *write ownership* bounds: a chunk
    /// whose entry range lies wholly inside one row owns zero rows.
    pub bounds: Vec<usize>,
    /// COO and merge-path CSR: entry-range boundaries aligned with
    /// `bounds` (chunk `i` scans entries
    /// `entry_bounds[i]..entry_bounds[i + 1]`). `None` for formats that
    /// derive entry ranges from row pointers.
    pub entry_bounds: Option<Vec<usize>>,
    /// Thread count the boundaries were sized for; compared against the
    /// live backend by [`is_stale`](Self::is_stale).
    pub threads: usize,
    /// The partitioning policy that produced `bounds`. Stale-plan
    /// rebuilds reuse it so a searched policy is not silently
    /// discarded. Pre-policy artifacts fail deserialization and are
    /// regenerated via the install schema version bump (the vendored
    /// serde stub has no `#[serde(default)]`).
    pub policy: ChunkPolicy,
}

impl ExecPlan {
    /// A single-chunk plan that runs the kernel serially — used for
    /// serial variants, degraded mode, and user-registered kernels the
    /// planner knows nothing about.
    pub fn serial(rows: usize) -> Self {
        ExecPlan {
            bounds: vec![0, rows],
            entry_bounds: None,
            threads: 1,
            policy: ChunkPolicy::Serial,
        }
    }

    /// Number of chunks the plan fans out to.
    pub fn chunks(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Whether the plan collapses to one chunk (no fan-out).
    pub fn is_serial(&self) -> bool {
        self.chunks() <= 1
    }

    /// True when the plan was sized for a different thread count than
    /// the execution backend currently reports — e.g. it came from a
    /// cache file written on another machine. Stale plans stay correct
    /// (chunks still cover every row) but mis-sized, so the runtime
    /// rebuilds and re-caches them.
    pub fn is_stale(&self) -> bool {
        !self.is_serial() && self.threads != crate::exec::num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_plan_is_one_chunk_and_never_stale() {
        let p = ExecPlan::serial(42);
        assert_eq!(p.bounds, vec![0, 42]);
        assert_eq!(p.chunks(), 1);
        assert!(p.is_serial());
        assert!(!p.is_stale());
        assert_eq!(p.policy, ChunkPolicy::Serial);
    }

    #[test]
    fn staleness_tracks_thread_count() {
        let live = crate::exec::num_threads();
        let fresh = ExecPlan {
            bounds: vec![0, 10, 20],
            entry_bounds: None,
            threads: live,
            policy: ChunkPolicy::EqualRows,
        };
        assert!(!fresh.is_stale());
        let moved = ExecPlan {
            threads: live + 7,
            ..fresh.clone()
        };
        assert!(moved.is_stale());
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let p = ExecPlan {
            bounds: vec![0, 5, 9],
            entry_bounds: Some(vec![0, 11, 30]),
            threads: 4,
            policy: ChunkPolicy::MergePath,
        };
        let v = serde_json::to_string(&p).expect("serialize");
        let back: ExecPlan = serde_json::from_str(&v).expect("deserialize");
        assert_eq!(back, p);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ChunkPolicy::NnzBalanced.name(), "nnz_balanced");
        assert_eq!(ChunkPolicy::MergePath.to_string(), "merge_path");
        assert_eq!(ChunkPolicy::BlockAligned(4).name(), "block_aligned");
    }
}

//! BCSR (register-blocked) SpMV kernel variants.
//!
//! Each block row keeps its `br` partial sums in registers while
//! streaming the row's blocks — the register-blocking payoff of
//! Sparsity/OSKI the paper cites. Accumulation order per output row is
//! identical across every variant here (blocks left to right, columns
//! left to right within a block), so the basic, unrolled and parallel
//! variants are all bitwise identical to each other on the same matrix;
//! bitwise agreement with *CSR* kernels is only guaranteed when the
//! blocking introduces no reordering (it never reorders — block columns
//! are sorted — so row sums match CSR's sequential order exactly, with
//! extra exact `+ 0.0 * x[c]` terms from the zero fill).
//!
//! The same kernel functions serve both the 2x2 and 4x4 libraries: the
//! block size lives in the [`Bcsr`] value, and the unrolled variant
//! dispatches to a fixed-size microkernel when it recognizes the shape.

use crate::exec;
use crate::partition::equal_row_bounds;
use crate::plan::ExecPlan;
use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{Strategy, StrategySet};
use smat_matrix::{Bcsr, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Computes the rows `[r0, r1)` of `y_chunk` (whose index 0 is global
/// row `r0`), accumulating each row's blocks left to right. Handles
/// chunk bounds that cut through a block row (a stale or foreign plan),
/// though the planner always emits block-aligned bounds.
fn run_rows_generic<T: Scalar>(m: &Bcsr<T>, x: &[T], y_chunk: &mut [T], r0: usize, r1: usize) {
    let br = m.br();
    let bc = m.bc();
    let cols = m.cols();
    let ptr = m.block_ptr();
    let bcol = m.block_col();
    let values = m.values();
    let mut b = r0 / br;
    while b * br < r1 {
        let base = b * br;
        let i_lo = r0.saturating_sub(base);
        let i_hi = (r1 - base).min(br).min(m.rows() - base);
        let mut acc = [T::ZERO; 8];
        for k in ptr[b]..ptr[b + 1] {
            let c0 = bcol[k] * bc;
            let cn = bc.min(cols - c0);
            let blk = &values[k * br * bc..];
            for (i, a) in acc.iter_mut().enumerate().take(i_hi).skip(i_lo) {
                for j in 0..cn {
                    *a += blk[i * bc + j] * x[c0 + j];
                }
            }
        }
        for i in i_lo..i_hi {
            y_chunk[base + i - r0] = acc[i];
        }
        b += 1;
    }
}

/// 2x2 microkernel over full block rows `[b0, b1)` writing into
/// `y_chunk` (index 0 = global row `b0 * 2`). Same accumulation order
/// as [`run_rows_generic`] — fully unrolled, accumulators in scalars.
fn run_block_rows_2x2<T: Scalar>(m: &Bcsr<T>, x: &[T], y_chunk: &mut [T], b0: usize, b1: usize) {
    let cols = m.cols();
    let rows = m.rows();
    let ptr = m.block_ptr();
    let bcol = m.block_col();
    let values = m.values();
    for b in b0..b1 {
        let base = 2 * b;
        let mut a0 = T::ZERO;
        let mut a1 = T::ZERO;
        for k in ptr[b]..ptr[b + 1] {
            let c0 = bcol[k] * 2;
            let blk = &values[k * 4..k * 4 + 4];
            if c0 + 2 <= cols {
                let x0 = x[c0];
                let x1 = x[c0 + 1];
                a0 += blk[0] * x0;
                a0 += blk[1] * x1;
                a1 += blk[2] * x0;
                a1 += blk[3] * x1;
            } else {
                let x0 = x[c0];
                a0 += blk[0] * x0;
                a1 += blk[2] * x0;
            }
        }
        y_chunk[base - 2 * b0] = a0;
        if base + 1 < rows {
            y_chunk[base + 1 - 2 * b0] = a1;
        }
    }
}

/// 4x4 microkernel over full block rows `[b0, b1)` writing into
/// `y_chunk` (index 0 = global row `b0 * 4`).
fn run_block_rows_4x4<T: Scalar>(m: &Bcsr<T>, x: &[T], y_chunk: &mut [T], b0: usize, b1: usize) {
    let cols = m.cols();
    let rows = m.rows();
    let ptr = m.block_ptr();
    let bcol = m.block_col();
    let values = m.values();
    for b in b0..b1 {
        let base = 4 * b;
        let rn = 4.min(rows - base);
        let mut acc = [T::ZERO; 4];
        for k in ptr[b]..ptr[b + 1] {
            let c0 = bcol[k] * 4;
            let cn = 4.min(cols - c0);
            let blk = &values[k * 16..k * 16 + 16];
            if cn == 4 {
                let x0 = x[c0];
                let x1 = x[c0 + 1];
                let x2 = x[c0 + 2];
                let x3 = x[c0 + 3];
                for (i, a) in acc.iter_mut().enumerate() {
                    let row = &blk[i * 4..i * 4 + 4];
                    *a += row[0] * x0;
                    *a += row[1] * x1;
                    *a += row[2] * x2;
                    *a += row[3] * x3;
                }
            } else {
                for (i, a) in acc.iter_mut().enumerate() {
                    for j in 0..cn {
                        *a += blk[i * 4 + j] * x[c0 + j];
                    }
                }
            }
        }
        for (i, &a) in acc.iter().enumerate().take(rn) {
            y_chunk[base + i - 4 * b0] = a;
        }
    }
}

/// Basic serial BCSR SpMV: per block row, accumulate blocks left to
/// right with one register per row.
pub fn basic<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_rows_generic(m, x, y, 0, m.rows());
}

/// Serial BCSR SpMV with a fully unrolled fixed-size microkernel for
/// 2x2 and 4x4 blocks (the generic body otherwise). Bit-identical to
/// [`basic`] — same accumulation order, more ILP.
pub fn unrolled<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    match (m.br(), m.bc()) {
        (2, 2) => run_block_rows_2x2(m, x, y, 0, m.block_rows()),
        (4, 4) => run_block_rows_4x4(m, x, y, 0, m.block_rows()),
        _ => run_rows_generic(m, x, y, 0, m.rows()),
    }
}

#[inline]
fn run_chunks<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T], bounds: &[usize], unroll: bool) {
    let br = m.br();
    let bc = m.bc();
    exec::for_each_row_chunk(y, bounds, |ci, y_chunk| {
        let (r0, r1) = (bounds[ci], bounds[ci + 1]);
        // The microkernels want whole block rows; use them only when the
        // chunk is block-aligned (the planner's bounds always are).
        let aligned = r0 % br == 0 && (r1 % br == 0 || r1 == m.rows());
        match (unroll, aligned, br, bc) {
            (true, true, 2, 2) => run_block_rows_2x2(m, x, y_chunk, r0 / 2, r1.div_ceil(2)),
            (true, true, 4, 4) => run_block_rows_4x4(m, x, y_chunk, r0 / 4, r1.div_ceil(4)),
            _ => run_rows_generic(m, x, y_chunk, r0, r1),
        }
    });
}

/// Block-row-aligned chunk bounds: equal block rows per chunk, scaled
/// to row indices (the final bound clamps to `rows`).
pub(crate) fn block_aligned_bounds<T: Scalar>(m: &Bcsr<T>, parts: usize) -> Vec<usize> {
    let mut bounds = equal_row_bounds(m.block_rows(), parts);
    for b in &mut bounds {
        *b = (*b * m.br()).min(m.rows());
    }
    bounds
}

/// Runs a parallel BCSR variant with precomputed row chunk bounds.
pub(crate) fn run_planned<T: Scalar>(
    m: &Bcsr<T>,
    x: &[T],
    y: &mut [T],
    plan: &ExecPlan,
    unroll: bool,
) {
    check_dims(m, x, y);
    run_chunks(m, x, y, &plan.bounds, unroll);
}

/// Block-row-parallel BCSR SpMV.
pub fn parallel<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = block_aligned_bounds(m, crate::partition::default_parts());
    run_chunks(m, x, y, &bounds, false);
}

/// Block-row-parallel BCSR SpMV with the unrolled microkernel.
pub fn parallel_unrolled<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = block_aligned_bounds(m, crate::partition::default_parts());
    run_chunks(m, x, y, &bounds, true);
}

fn entries<T: Scalar>(prefix: &'static str) -> Vec<KernelEntry<T, Bcsr<T>>> {
    use Strategy::*;
    let name = |suffix: &str| -> &'static str {
        // Kernel names are 'static; the two block sizes are the only
        // instantiations, so spell the concatenations out.
        match (prefix, suffix) {
            ("bcsr2", "basic") => "bcsr2_basic",
            ("bcsr2", "unroll") => "bcsr2_unroll",
            ("bcsr2", "parallel") => "bcsr2_parallel",
            ("bcsr2", "parallel_unroll") => "bcsr2_parallel_unroll",
            ("bcsr4", "basic") => "bcsr4_basic",
            ("bcsr4", "unroll") => "bcsr4_unroll",
            ("bcsr4", "parallel") => "bcsr4_parallel",
            ("bcsr4", "parallel_unroll") => "bcsr4_parallel_unroll",
            _ => unreachable!("unknown bcsr kernel name"),
        }
    };
    vec![
        (
            name("basic"),
            StrategySet::EMPTY,
            basic as KernelFn<T, Bcsr<T>>,
        ),
        (name("unroll"), [Unroll].into_iter().collect(), unrolled),
        (name("parallel"), [Parallel].into_iter().collect(), parallel),
        (
            name("parallel_unroll"),
            [Parallel, Unroll].into_iter().collect(),
            parallel_unrolled,
        ),
    ]
}

/// The 2x2 BCSR kernel library.
pub fn kernels2<T: Scalar>() -> Vec<KernelEntry<T, Bcsr<T>>> {
    entries("bcsr2")
}

/// The 4x4 BCSR kernel library.
pub fn kernels4<T: Scalar>() -> Vec<KernelEntry<T, Bcsr<T>>> {
    entries("bcsr4")
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{block_sparse, power_law};
    use smat_matrix::utils::max_abs_diff;
    use smat_matrix::{ConversionLimits, Csr};

    fn reference(m: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        for csr in [
            block_sparse::<f64>(128, 4, 6, 5),
            power_law::<f64>(201, 163, 1.8, 11),
        ] {
            let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.23).sin()).collect();
            let expect = reference(&csr, &x);
            for (br, bc) in [(2usize, 2usize), (4, 4)] {
                let m = Bcsr::from_csr_with(&csr, br, bc, &ConversionLimits::unlimited()).unwrap();
                let lib = if br == 2 {
                    kernels2::<f64>()
                } else {
                    kernels4::<f64>()
                };
                for (name, _, k) in lib {
                    let mut y = vec![f64::NAN; csr.rows()];
                    k(&m, &x, &mut y);
                    assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
                }
            }
        }
    }

    #[test]
    fn variants_are_bitwise_identical_to_basic() {
        let csr = block_sparse::<f64>(96, 4, 5, 3);
        for (br, bc) in [(2usize, 2usize), (4, 4)] {
            let m = Bcsr::from_csr_with(&csr, br, bc, &ConversionLimits::unlimited()).unwrap();
            let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.7).cos()).collect();
            let mut base = vec![0.0; csr.rows()];
            basic(&m, &x, &mut base);
            for f in [unrolled, parallel, parallel_unrolled] {
                let mut y = vec![f64::NAN; csr.rows()];
                f(&m, &x, &mut y);
                assert_eq!(y, base, "{br}x{bc}");
            }
        }
    }

    #[test]
    fn odd_shapes_and_tails() {
        // Rows/cols not multiples of the block size, plus empty rows.
        let csr =
            Csr::<f64>::from_triplets(7, 9, &[(0, 8, 1.0), (3, 0, 2.0), (6, 6, 3.0), (6, 8, 4.0)])
                .unwrap();
        let x: Vec<f64> = (0..9).map(|i| i as f64 + 0.5).collect();
        let expect = reference(&csr, &x);
        for (br, bc) in [(2usize, 2usize), (4, 4)] {
            let m = Bcsr::from_csr_with(&csr, br, bc, &ConversionLimits::unlimited()).unwrap();
            let lib = if br == 2 {
                kernels2::<f64>()
            } else {
                kernels4::<f64>()
            };
            for (name, _, k) in lib {
                let mut y = vec![f64::NAN; 7];
                k(&m, &x, &mut y);
                assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} {br}x{bc}");
            }
        }
    }

    #[test]
    fn misaligned_chunk_bounds_stay_correct() {
        // A foreign/stale plan may cut through block rows; the generic
        // body must still produce the right values.
        let csr = block_sparse::<f64>(64, 4, 4, 9);
        let m = Bcsr::from_csr_with(&csr, 4, 4, &ConversionLimits::unlimited()).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).sin()).collect();
        let expect = reference(&csr, &x);
        let mut y = vec![f64::NAN; 64];
        run_chunks(&m, &x, &mut y, &[0, 3, 31, 64], true);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
    }
}

//! Multi-RHS (SpMM) kernel variants: `Y = A * X` for `k` right-hand
//! sides stored row-major (`X` is `cols * k`, `Y` is `rows * k`,
//! element `(r, j)` at `r * k + j`).
//!
//! The batched tier amortizes matrix traffic across RHS columns: each
//! nonzero is loaded once per *tile* of columns instead of once per
//! column, with the tile's partial sums held in registers. Tile widths
//! 2/4/8 are separate registry variants tagged `Tile2`/`Tile4`/`Tile8`
//! — the width is a searched dimension, scored by the scoreboard like
//! any other strategy (see `ISSUE`/DESIGN §17).
//!
//! # Reduction-order contract
//!
//! Every kernel here accumulates each output element `(r, j)` in
//! nonzero *stream order*, exactly like the corresponding SpMV kernel
//! accumulates `y[r]` — columns of a tile live in independent
//! accumulators (lanes), so tiling never reassociates a column's sum.
//! Consequently all serial and row-chunked variants are **bitwise
//! identical** to `k` independent basic-SpMV calls on every input, and
//! the AVX2 tile backend (broadcast value × contiguous X-tile load,
//! separate mul + add, no FMA) is bitwise identical to the portable
//! fallback by construction. Only the merge-path variants reassociate
//! (they split rows mid-stream, like `csr_merge`), and they remain
//! bit-stable across replays of the same plan and exact on
//! dyadic-rational inputs.

use crate::exec;
use crate::partition::{default_parts, equal_row_bounds, merge_path_bounds, MAX_MERGE_CHUNKS};
use crate::plan::ExecPlan;
use crate::registry::{SpmmEntry, SpmmFn};
use crate::strategy::{Strategy, StrategySet};
use smat_matrix::{Bcsr, Csr, Ell, Scalar};

#[inline]
fn check_dims<T>(rows: usize, cols: usize, x: &[T], y: &[T], k: usize) {
    assert!(k >= 1, "at least one RHS column required");
    assert_eq!(x.len(), cols * k, "x length must equal cols * k");
    assert_eq!(y.len(), rows * k, "y length must equal rows * k");
}

/// One CSR row's tile of `W` column dot products, portable body: lane
/// `l` accumulates column `j0 + l` in stream order.
#[inline]
fn row_tile<T: Scalar, const W: usize>(
    idx: &[usize],
    val: &[T],
    x: &[T],
    k: usize,
    j0: usize,
) -> [T; W] {
    let mut acc = [T::ZERO; W];
    for (&c, &v) in idx.iter().zip(val) {
        let xb = &x[c * k + j0..c * k + j0 + W];
        for (a, &xv) in acc.iter_mut().zip(xb) {
            *a += v * xv;
        }
    }
    acc
}

/// [`row_tile`] behind the runtime vector-backend dispatch: AVX2 when
/// the policy and CPU allow it (bit-identical, see module docs), the
/// portable body otherwise.
#[inline]
fn row_tile_dispatch<T: Scalar, const W: usize>(
    idx: &[usize],
    val: &[T],
    x: &[T],
    k: usize,
    j0: usize,
) -> [T; W] {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        use crate::scalar_cast::{cast_ref, cast_val};
        if crate::scalar_cast::is_f64::<T>() {
            let (xs, vs) = (cast_ref::<T, f64>(x), cast_ref::<T, f64>(val));
            if W == 4 {
                // SAFETY: AVX2 support was just detected.
                let r = unsafe { avx2::row_tile4_f64(idx, vs, xs, k, j0) };
                let mut out = [T::ZERO; W];
                for l in 0..W {
                    out[l] = cast_val::<f64, T>(r[l]);
                }
                return out;
            }
            if W == 8 {
                // SAFETY: AVX2 support was just detected.
                let r = unsafe { avx2::row_tile8_f64(idx, vs, xs, k, j0) };
                let mut out = [T::ZERO; W];
                for l in 0..W {
                    out[l] = cast_val::<f64, T>(r[l]);
                }
                return out;
            }
        }
        if crate::scalar_cast::is_f32::<T>() {
            let (xs, vs) = (cast_ref::<T, f32>(x), cast_ref::<T, f32>(val));
            if W == 4 {
                // SAFETY: AVX2 support was just detected.
                let r = unsafe { avx2::row_tile4_f32(idx, vs, xs, k, j0) };
                let mut out = [T::ZERO; W];
                for l in 0..W {
                    out[l] = cast_val::<f32, T>(r[l]);
                }
                return out;
            }
            if W == 8 {
                // SAFETY: AVX2 support was just detected.
                let r = unsafe { avx2::row_tile8_f32(idx, vs, xs, k, j0) };
                let mut out = [T::ZERO; W];
                for l in 0..W {
                    out[l] = cast_val::<f32, T>(r[l]);
                }
                return out;
            }
        }
    }
    row_tile::<T, W>(idx, val, x, k, j0)
}

/// Computes one CSR row's full `k` output columns into `yr`: tiles of
/// `W` first, then a scalar column-at-a-time tail for `k % W`.
#[inline]
fn row_into<T: Scalar, const W: usize>(
    idx: &[usize],
    val: &[T],
    x: &[T],
    k: usize,
    yr: &mut [T],
    simd: bool,
) {
    let mut j0 = 0;
    while j0 + W <= k {
        let acc = if simd {
            row_tile_dispatch::<T, W>(idx, val, x, k, j0)
        } else {
            row_tile::<T, W>(idx, val, x, k, j0)
        };
        yr[j0..j0 + W].copy_from_slice(&acc);
        j0 += W;
    }
    for j in j0..k {
        let mut acc = T::ZERO;
        for (&c, &v) in idx.iter().zip(val) {
            acc += v * x[c * k + j];
        }
        yr[j] = acc;
    }
}

#[inline]
fn csr_serial<T: Scalar, const W: usize>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize, simd: bool) {
    check_dims(m.rows(), m.cols(), x, y, k);
    for (r, yr) in y.chunks_exact_mut(k).enumerate() {
        let (idx, val) = m.row(r);
        row_into::<T, W>(idx, val, x, k, yr, simd);
    }
}

#[inline]
fn csr_chunks<T: Scalar, const W: usize>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    bounds: &[usize],
    simd: bool,
) {
    exec::for_each_row_chunk_scaled(y, bounds, k, |ci, chunk| {
        let r0 = bounds[ci];
        for (i, yr) in chunk.chunks_exact_mut(k).enumerate() {
            let (idx, val) = m.row(r0 + i);
            row_into::<T, W>(idx, val, x, k, yr, simd);
        }
    });
}

/// Basic CSR SpMM: column-at-a-time, serial — the containment
/// reference for the batched tier and the `k = 1` degenerate kernel.
pub fn csr_basic<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 1>(m, x, y, k, false)
}

/// Serial CSR SpMM with 2-wide register tiles.
pub fn csr_t2<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 2>(m, x, y, k, false)
}

/// Serial CSR SpMM with 4-wide register tiles.
pub fn csr_t4<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 4>(m, x, y, k, false)
}

/// Serial CSR SpMM with 8-wide register tiles.
pub fn csr_t8<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 8>(m, x, y, k, false)
}

/// Serial CSR SpMM, 4-wide tiles through the vector backend
/// (bit-identical to [`csr_t4`]).
pub fn csr_simd_t4<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 4>(m, x, y, k, true)
}

/// Serial CSR SpMM, 8-wide tiles through the vector backend
/// (bit-identical to [`csr_t8`]).
pub fn csr_simd_t8<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    csr_serial::<T, 8>(m, x, y, k, true)
}

macro_rules! csr_parallel {
    ($name:ident, $w:literal) => {
        /// Row-parallel CSR SpMM with register tiles (equal-row
        /// chunks; rows are never split, so per-column accumulation
        /// order matches the serial kernels exactly).
        pub fn $name<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
            check_dims(m.rows(), m.cols(), x, y, k);
            let bounds = equal_row_bounds(m.rows(), default_parts());
            csr_chunks::<T, $w>(m, x, y, k, &bounds, false);
        }
    };
}
csr_parallel!(csr_parallel_t2, 2);
csr_parallel!(csr_parallel_t4, 4);
csr_parallel!(csr_parallel_t8, 8);

/// Runs a parallel (non-merge) CSR SpMM variant with precomputed row
/// chunk bounds — the zero-allocation steady-state path.
pub(crate) fn run_csr_planned<T: Scalar>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    plan: &ExecPlan,
    strategies: StrategySet,
) {
    check_dims(m.rows(), m.cols(), x, y, k);
    let simd = strategies.contains(Strategy::Simd);
    match strategies.tile_width() {
        2 => csr_chunks::<T, 2>(m, x, y, k, &plan.bounds, simd),
        4 => csr_chunks::<T, 4>(m, x, y, k, &plan.bounds, simd),
        8 => csr_chunks::<T, 8>(m, x, y, k, &plan.bounds, simd),
        _ => csr_chunks::<T, 1>(m, x, y, k, &plan.bounds, simd),
    }
}

/// Tile of `W` column dot products over one contiguous entry segment
/// `lo..hi`, accumulated sequentially in stream order (the merge-path
/// building block, mirroring `csr::segment_dot`).
#[inline]
fn segment_tile<T: Scalar, const W: usize>(
    m: &Csr<T>,
    lo: usize,
    hi: usize,
    x: &[T],
    k: usize,
    j0: usize,
) -> [T; W] {
    let idx = m.col_idx();
    let val = m.values();
    let mut acc = [T::ZERO; W];
    for e in lo..hi {
        let xb = &x[idx[e] * k + j0..];
        for (a, &xv) in acc.iter_mut().zip(&xb[..W]) {
            *a += val[e] * xv;
        }
    }
    acc
}

/// One column-tile's merge-path sweep: the SpMM analogue of
/// `csr::run_merge_chunks`, with per-chunk carry *tiles* and the same
/// ascending serial fix-up — bit-stable across replays of one plan.
fn merge_chunks_tile<T: Scalar, const W: usize>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    j0: usize,
    entry_bounds: &[usize],
    bounds: &[usize],
) {
    let chunks = bounds.len() - 1;
    debug_assert!(chunks >= 2, "single-chunk sweeps take the serial path");
    assert!(
        chunks <= MAX_MERGE_CHUNKS,
        "merge fan-out exceeds carry capacity"
    );
    let ptr = m.row_ptr();
    let mut carry = [[T::ZERO; W]; MAX_MERGE_CHUNKS];
    let carry_base = carry.as_mut_ptr() as usize;
    let y_base = y.as_mut_ptr() as usize;
    exec::for_each_chunk(chunks, &|ci| {
        let (e0, e1) = (entry_bounds[ci], entry_bounds[ci + 1]);
        let (w0, w1) = (bounds[ci], bounds[ci + 1]);
        let head_end = if w0 < w1 { ptr[w0].min(e1) } else { e1 };
        if e0 < head_end {
            let c = segment_tile::<T, W>(m, e0, head_end, x, k, j0);
            // SAFETY: each chunk index is claimed exactly once and
            // writes only its own carry slot; `ci < chunks <=
            // MAX_MERGE_CHUNKS` keeps the write in bounds, and the
            // carry array outlives the fan-out (the caller participates
            // in the pool drain before `for_each_chunk` returns).
            unsafe { *(carry_base as *mut [T; W]).add(ci) = c };
        }
        for r in w0..w1 {
            let lo = ptr[r];
            let hi = ptr[r + 1].min(e1);
            let v = segment_tile::<T, W>(m, lo, hi, x, k, j0);
            // SAFETY: row ownership is a partition (validated bounds),
            // so no two chunks write the same output tile; `r < rows`
            // and `j0 + W <= k` keep the writes within `y`.
            unsafe {
                let dst = (y_base as *mut T).add(r * k + j0);
                for (l, &vl) in v.iter().enumerate() {
                    *dst.add(l) = vl;
                }
            }
        }
    });
    // Serial fix-up in ascending chunk order: fixed association.
    for ci in 1..chunks {
        let (e0, e1) = (entry_bounds[ci], entry_bounds[ci + 1]);
        let (w0, w1) = (bounds[ci], bounds[ci + 1]);
        let head_end = if w0 < w1 { ptr[w0].min(e1) } else { e1 };
        if e0 < head_end {
            for (l, &c) in carry[ci].iter().enumerate() {
                y[(w0 - 1) * k + j0 + l] += c;
            }
        }
    }
}

/// Drives the merge-path SpMM: one sweep per `W`-wide column tile,
/// then width-1 sweeps for the `k % W` tail columns.
fn csr_merge_with<T: Scalar, const W: usize>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    entry_bounds: &[usize],
    bounds: &[usize],
) {
    check_dims(m.rows(), m.cols(), x, y, k);
    if bounds.len() - 1 < 2 {
        // Single chunk: the merge kernel's own execution order is the
        // plain serial stream, which the tiled serial body computes.
        return csr_serial::<T, W>(m, x, y, k, false);
    }
    exec::validate_bounds(bounds, m.rows());
    assert_eq!(
        entry_bounds.len(),
        bounds.len(),
        "entry bounds must align with row bounds"
    );
    let mut j0 = 0;
    while j0 + W <= k {
        merge_chunks_tile::<T, W>(m, x, y, k, j0, entry_bounds, bounds);
        j0 += W;
    }
    for j in j0..k {
        merge_chunks_tile::<T, 1>(m, x, y, k, j, entry_bounds, bounds);
    }
}

macro_rules! csr_merge {
    ($name:ident, $w:literal) => {
        /// Merge-path CSR SpMM with register tiles: equal entry-range
        /// chunks that may split rows mid-stream, carries fixed up
        /// serially per column tile.
        pub fn $name<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
            let (entry_bounds, bounds) = merge_path_bounds(m, default_parts());
            csr_merge_with::<T, $w>(m, x, y, k, &entry_bounds, &bounds)
        }
    };
}
csr_merge!(csr_merge_t2, 2);
csr_merge!(csr_merge_t4, 4);
csr_merge!(csr_merge_t8, 8);

/// Runs a merge-path SpMM variant with a precomputed plan. A plan
/// without entry bounds (serial/degraded or foreign) falls back to the
/// serial tiled body, the merge kernel's single-chunk order.
pub(crate) fn run_csr_merge_planned<T: Scalar>(
    m: &Csr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    plan: &ExecPlan,
    width: usize,
) {
    let mut run = |eb: &[usize], rb: &[usize]| match width {
        2 => csr_merge_with::<T, 2>(m, x, y, k, eb, rb),
        4 => csr_merge_with::<T, 4>(m, x, y, k, eb, rb),
        8 => csr_merge_with::<T, 8>(m, x, y, k, eb, rb),
        _ => csr_merge_with::<T, 1>(m, x, y, k, eb, rb),
    };
    match &plan.entry_bounds {
        Some(eb) if eb.len() == plan.bounds.len() && plan.chunks() > 1 => run(eb, &plan.bounds),
        _ => run(&[0, m.nnz()], &[0, m.rows()]),
    }
}

/// ELL SpMM over rows `[r0, r1)` writing into `y_chunk` (length
/// `(r1 - r0) * k`): column-major slot sweep per tile, so each output
/// element accumulates slots in ascending order exactly like
/// `ell::basic` does per column.
fn ell_rows<T: Scalar, const W: usize>(
    m: &Ell<T>,
    x: &[T],
    y_chunk: &mut [T],
    k: usize,
    r0: usize,
    r1: usize,
) {
    y_chunk.fill(T::ZERO);
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    let n = r1 - r0;
    let mut j0 = 0;
    while j0 + W <= k {
        for p in 0..m.width() {
            let dcol = &data[p * rows + r0..p * rows + r1];
            let icol = &idx[p * rows + r0..p * rows + r1];
            for r in 0..n {
                let v = dcol[r];
                let xb = &x[icol[r] * k + j0..];
                let yb = &mut y_chunk[r * k + j0..r * k + j0 + W];
                for (l, slot) in yb.iter_mut().enumerate() {
                    *slot += v * xb[l];
                }
            }
        }
        j0 += W;
    }
    for j in j0..k {
        for p in 0..m.width() {
            let dcol = &data[p * rows + r0..p * rows + r1];
            let icol = &idx[p * rows + r0..p * rows + r1];
            for r in 0..n {
                y_chunk[r * k + j] += dcol[r] * x[icol[r] * k + j];
            }
        }
    }
}

macro_rules! ell_serial {
    ($name:ident, $w:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $name<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], k: usize) {
            check_dims(m.rows(), m.cols(), x, y, k);
            ell_rows::<T, $w>(m, x, y, k, 0, m.rows());
        }
    };
}
ell_serial!(
    ell_basic,
    1,
    "Basic ELL SpMM: column-at-a-time, serial (the format's containment reference)."
);
ell_serial!(ell_t2, 2, "Serial ELL SpMM with 2-wide register tiles.");
ell_serial!(ell_t4, 4, "Serial ELL SpMM with 4-wide register tiles.");
ell_serial!(ell_t8, 8, "Serial ELL SpMM with 8-wide register tiles.");

#[inline]
fn ell_chunks<T: Scalar, const W: usize>(
    m: &Ell<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    bounds: &[usize],
) {
    exec::for_each_row_chunk_scaled(y, bounds, k, |ci, chunk| {
        ell_rows::<T, W>(m, x, chunk, k, bounds[ci], bounds[ci + 1]);
    });
}

macro_rules! ell_parallel {
    ($name:ident, $w:literal) => {
        /// Row-parallel ELL SpMM with register tiles.
        pub fn $name<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], k: usize) {
            check_dims(m.rows(), m.cols(), x, y, k);
            let bounds = equal_row_bounds(m.rows(), default_parts());
            ell_chunks::<T, $w>(m, x, y, k, &bounds);
        }
    };
}
ell_parallel!(ell_parallel_t2, 2);
ell_parallel!(ell_parallel_t4, 4);
ell_parallel!(ell_parallel_t8, 8);

/// Runs a parallel ELL SpMM variant with precomputed row chunk bounds.
pub(crate) fn run_ell_planned<T: Scalar>(
    m: &Ell<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    plan: &ExecPlan,
    width: usize,
) {
    check_dims(m.rows(), m.cols(), x, y, k);
    match width {
        2 => ell_chunks::<T, 2>(m, x, y, k, &plan.bounds),
        4 => ell_chunks::<T, 4>(m, x, y, k, &plan.bounds),
        8 => ell_chunks::<T, 8>(m, x, y, k, &plan.bounds),
        _ => ell_chunks::<T, 1>(m, x, y, k, &plan.bounds),
    }
}

/// BCSR SpMM for one column tile `[j0, j0 + W)` over rows `[r0, r1)`:
/// per block row, `br * W` partial sums stay in registers while the
/// row's blocks stream left to right (columns left to right within a
/// block — the same order as `bcsr::basic` per output column).
fn bcsr_rows_tile<T: Scalar, const W: usize>(
    m: &Bcsr<T>,
    x: &[T],
    y_chunk: &mut [T],
    k: usize,
    r0: usize,
    r1: usize,
    j0: usize,
) {
    let br = m.br();
    let bc = m.bc();
    let cols = m.cols();
    let ptr = m.block_ptr();
    let bcol = m.block_col();
    let values = m.values();
    assert!(br <= 4, "register tile sized for block heights up to 4");
    let mut b = r0 / br;
    while b * br < r1 {
        let base = b * br;
        let i_lo = r0.saturating_sub(base);
        let i_hi = (r1 - base).min(br).min(m.rows() - base);
        let mut acc = [[T::ZERO; W]; 4];
        for e in ptr[b]..ptr[b + 1] {
            let c0 = bcol[e] * bc;
            let cn = bc.min(cols - c0);
            let blk = &values[e * br * bc..];
            for (i, row_acc) in acc.iter_mut().enumerate().take(i_hi).skip(i_lo) {
                for j in 0..cn {
                    let v = blk[i * bc + j];
                    let xb = &x[(c0 + j) * k + j0..];
                    for (a, &xv) in row_acc.iter_mut().zip(&xb[..W]) {
                        *a += v * xv;
                    }
                }
            }
        }
        for i in i_lo..i_hi {
            let dst = &mut y_chunk[(base + i - r0) * k + j0..(base + i - r0) * k + j0 + W];
            dst.copy_from_slice(&acc[i]);
        }
        b += 1;
    }
}

/// BCSR SpMM over rows `[r0, r1)`: `W`-wide tiles then width-1 tail
/// columns.
fn bcsr_rows<T: Scalar, const W: usize>(
    m: &Bcsr<T>,
    x: &[T],
    y_chunk: &mut [T],
    k: usize,
    r0: usize,
    r1: usize,
) {
    let mut j0 = 0;
    while j0 + W <= k {
        bcsr_rows_tile::<T, W>(m, x, y_chunk, k, r0, r1, j0);
        j0 += W;
    }
    for j in j0..k {
        bcsr_rows_tile::<T, 1>(m, x, y_chunk, k, r0, r1, j);
    }
}

macro_rules! bcsr_serial {
    ($name:ident, $w:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $name<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T], k: usize) {
            check_dims(m.rows(), m.cols(), x, y, k);
            bcsr_rows::<T, $w>(m, x, y, k, 0, m.rows());
        }
    };
}
bcsr_serial!(
    bcsr_basic,
    1,
    "Basic BCSR SpMM: column-at-a-time, serial (the containment reference for both block sizes)."
);
bcsr_serial!(bcsr_t2, 2, "Serial BCSR SpMM with 2-wide register tiles.");
bcsr_serial!(bcsr_t4, 4, "Serial BCSR SpMM with 4-wide register tiles.");
bcsr_serial!(bcsr_t8, 8, "Serial BCSR SpMM with 8-wide register tiles.");

/// Block-row-parallel BCSR SpMM with 4-wide register tiles.
pub fn bcsr_parallel_t4<T: Scalar>(m: &Bcsr<T>, x: &[T], y: &mut [T], k: usize) {
    check_dims(m.rows(), m.cols(), x, y, k);
    let bounds = crate::bcsr::block_aligned_bounds(m, default_parts());
    exec::for_each_row_chunk_scaled(y, &bounds, k, |ci, chunk| {
        bcsr_rows::<T, 4>(m, x, chunk, k, bounds[ci], bounds[ci + 1]);
    });
}

/// Runs a parallel BCSR SpMM variant with precomputed row chunk bounds.
pub(crate) fn run_bcsr_planned<T: Scalar>(
    m: &Bcsr<T>,
    x: &[T],
    y: &mut [T],
    k: usize,
    plan: &ExecPlan,
    width: usize,
) {
    check_dims(m.rows(), m.cols(), x, y, k);
    let bounds = &plan.bounds;
    macro_rules! fan {
        ($w:literal) => {
            exec::for_each_row_chunk_scaled(y, bounds, k, |ci, chunk| {
                bcsr_rows::<T, $w>(m, x, chunk, k, bounds[ci], bounds[ci + 1]);
            })
        };
    }
    match width {
        2 => fan!(2),
        4 => fan!(4),
        8 => fan!(8),
        _ => fan!(1),
    }
}

/// The CSR SpMM kernel table: basic, tiled, SIMD-tiled, row-parallel
/// tiled and merge-path tiled variants.
pub fn csr_kernels<T: Scalar>() -> Vec<SpmmEntry<T, Csr<T>>> {
    use Strategy::*;
    vec![
        (
            "csr_spmm_basic",
            StrategySet::EMPTY,
            csr_basic as SpmmFn<T, Csr<T>>,
        ),
        ("csr_spmm_t2", [Tile2].into_iter().collect(), csr_t2),
        ("csr_spmm_t4", [Tile4].into_iter().collect(), csr_t4),
        ("csr_spmm_t8", [Tile8].into_iter().collect(), csr_t8),
        (
            "csr_spmm_simd_t4",
            [Tile4, Simd].into_iter().collect(),
            csr_simd_t4,
        ),
        (
            "csr_spmm_simd_t8",
            [Tile8, Simd].into_iter().collect(),
            csr_simd_t8,
        ),
        (
            "csr_spmm_parallel_t2",
            [Parallel, Tile2].into_iter().collect(),
            csr_parallel_t2,
        ),
        (
            "csr_spmm_parallel_t4",
            [Parallel, Tile4].into_iter().collect(),
            csr_parallel_t4,
        ),
        (
            "csr_spmm_parallel_t8",
            [Parallel, Tile8].into_iter().collect(),
            csr_parallel_t8,
        ),
        (
            "csr_spmm_merge_t2",
            [Parallel, Merge, Tile2].into_iter().collect(),
            csr_merge_t2,
        ),
        (
            "csr_spmm_merge_t4",
            [Parallel, Merge, Tile4].into_iter().collect(),
            csr_merge_t4,
        ),
        (
            "csr_spmm_merge_t8",
            [Parallel, Merge, Tile8].into_iter().collect(),
            csr_merge_t8,
        ),
    ]
}

/// The ELL SpMM kernel table.
pub fn ell_kernels<T: Scalar>() -> Vec<SpmmEntry<T, Ell<T>>> {
    use Strategy::*;
    vec![
        (
            "ell_spmm_basic",
            StrategySet::EMPTY,
            ell_basic as SpmmFn<T, Ell<T>>,
        ),
        ("ell_spmm_t2", [Tile2].into_iter().collect(), ell_t2),
        ("ell_spmm_t4", [Tile4].into_iter().collect(), ell_t4),
        ("ell_spmm_t8", [Tile8].into_iter().collect(), ell_t8),
        (
            "ell_spmm_parallel_t2",
            [Parallel, Tile2].into_iter().collect(),
            ell_parallel_t2,
        ),
        (
            "ell_spmm_parallel_t4",
            [Parallel, Tile4].into_iter().collect(),
            ell_parallel_t4,
        ),
        (
            "ell_spmm_parallel_t8",
            [Parallel, Tile8].into_iter().collect(),
            ell_parallel_t8,
        ),
    ]
}

fn bcsr_entries<T: Scalar>(prefix: &'static str) -> Vec<SpmmEntry<T, Bcsr<T>>> {
    use Strategy::*;
    let name = |suffix: &str| -> &'static str {
        // Kernel names are 'static; the two block sizes are the only
        // instantiations, so spell the concatenations out.
        match (prefix, suffix) {
            ("bcsr2", "basic") => "bcsr2_spmm_basic",
            ("bcsr2", "t2") => "bcsr2_spmm_t2",
            ("bcsr2", "t4") => "bcsr2_spmm_t4",
            ("bcsr2", "t8") => "bcsr2_spmm_t8",
            ("bcsr2", "parallel_t4") => "bcsr2_spmm_parallel_t4",
            ("bcsr4", "basic") => "bcsr4_spmm_basic",
            ("bcsr4", "t2") => "bcsr4_spmm_t2",
            ("bcsr4", "t4") => "bcsr4_spmm_t4",
            ("bcsr4", "t8") => "bcsr4_spmm_t8",
            ("bcsr4", "parallel_t4") => "bcsr4_spmm_parallel_t4",
            _ => unreachable!("unknown bcsr spmm kernel name"),
        }
    };
    vec![
        (
            name("basic"),
            StrategySet::EMPTY,
            bcsr_basic as SpmmFn<T, Bcsr<T>>,
        ),
        (name("t2"), [Tile2].into_iter().collect(), bcsr_t2),
        (name("t4"), [Tile4].into_iter().collect(), bcsr_t4),
        (name("t8"), [Tile8].into_iter().collect(), bcsr_t8),
        (
            name("parallel_t4"),
            [Parallel, Tile4].into_iter().collect(),
            bcsr_parallel_t4,
        ),
    ]
}

/// The 2x2 BCSR SpMM kernel table.
pub fn bcsr_kernels2<T: Scalar>() -> Vec<SpmmEntry<T, Bcsr<T>>> {
    bcsr_entries("bcsr2")
}

/// The 4x4 BCSR SpMM kernel table.
pub fn bcsr_kernels4<T: Scalar>() -> Vec<SpmmEntry<T, Bcsr<T>>> {
    bcsr_entries("bcsr4")
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 tile bodies. Each RHS column of the tile lives in its own
    //! lane: per nonzero, broadcast the value, load the contiguous
    //! `X`-tile, separate mul + add (no FMA). Lane `l` therefore
    //! computes exactly the portable body's `acc[l]` — bit-identical on
    //! every input, with no tail to fold (the caller only dispatches
    //! full tiles).

    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `idx` entries must be
    /// in-bounds row indices of an `X` with `k` columns and
    /// `j0 + 4 <= k`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile4_f64(
        idx: &[usize],
        val: &[f64],
        x: &[f64],
        k: usize,
        j0: usize,
    ) -> [f64; 4] {
        let mut acc = _mm256_setzero_pd();
        for (e, &c) in idx.iter().enumerate() {
            let vv = _mm256_set1_pd(val[e]);
            let vx = _mm256_loadu_pd(x.as_ptr().add(c * k + j0));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, vx));
        }
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), acc);
        out
    }

    /// # Safety
    ///
    /// Same as [`row_tile4_f64`], with `j0 + 8 <= k`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile8_f64(
        idx: &[usize],
        val: &[f64],
        x: &[f64],
        k: usize,
        j0: usize,
    ) -> [f64; 8] {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for (e, &c) in idx.iter().enumerate() {
            let vv = _mm256_set1_pd(val[e]);
            let p = x.as_ptr().add(c * k + j0);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(vv, _mm256_loadu_pd(p)));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(vv, _mm256_loadu_pd(p.add(4))));
        }
        let mut out = [0.0f64; 8];
        _mm256_storeu_pd(out.as_mut_ptr(), acc0);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), acc1);
        out
    }

    /// # Safety
    ///
    /// Same contract as [`row_tile4_f64`] for `f32` data.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile4_f32(
        idx: &[usize],
        val: &[f32],
        x: &[f32],
        k: usize,
        j0: usize,
    ) -> [f32; 4] {
        let mut acc = _mm_setzero_ps();
        for (e, &c) in idx.iter().enumerate() {
            let vv = _mm_set1_ps(val[e]);
            let vx = _mm_loadu_ps(x.as_ptr().add(c * k + j0));
            acc = _mm_add_ps(acc, _mm_mul_ps(vv, vx));
        }
        let mut out = [0.0f32; 4];
        _mm_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    /// # Safety
    ///
    /// Same contract as [`row_tile8_f64`] for `f32` data.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile8_f32(
        idx: &[usize],
        val: &[f32],
        x: &[f32],
        k: usize,
        j0: usize,
    ) -> [f32; 8] {
        let mut acc = _mm256_setzero_ps();
        for (e, &c) in idx.iter().enumerate() {
            let vv = _mm256_set1_ps(val[e]);
            let vx = _mm256_loadu_ps(x.as_ptr().add(c * k + j0));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(vv, vx));
        }
        let mut out = [0.0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{power_law, random_uniform};

    /// `k` independent basic SpMV calls, interleaved into the row-major
    /// SpMM layout — the semantic reference for every kernel here.
    fn per_column_reference(m: &Csr<f64>, x: &[f64], k: usize) -> Vec<f64> {
        let mut expect = vec![0.0; m.rows() * k];
        for j in 0..k {
            let xj: Vec<f64> = (0..m.cols()).map(|c| x[c * k + j]).collect();
            let mut yj = vec![0.0; m.rows()];
            crate::csr::basic(m, &xj, &mut yj);
            for r in 0..m.rows() {
                expect[r * k + j] = yj[r];
            }
        }
        expect
    }

    fn dyadic_x(cols: usize, k: usize) -> Vec<f64> {
        (0..cols * k)
            .map(|i| 0.25 * ((i % 13) as f64) - 0.75)
            .collect()
    }

    #[test]
    fn serial_and_parallel_csr_match_per_column_spmv_bitwise() {
        let m = random_uniform::<f64>(157, 111, 7, 5);
        for k in [1usize, 2, 3, 5, 8, 9] {
            let x: Vec<f64> = (0..m.cols() * k).map(|i| (i as f64 * 0.31).sin()).collect();
            let expect = per_column_reference(&m, &x, k);
            // Row-granular kernels never reassociate a column's sum, so
            // they are bitwise on arbitrary (non-dyadic) values.
            for (name, f) in [
                ("basic", csr_basic as SpmmFn<f64, Csr<f64>>),
                ("t2", csr_t2),
                ("t4", csr_t4),
                ("t8", csr_t8),
                ("simd_t4", csr_simd_t4),
                ("simd_t8", csr_simd_t8),
                ("parallel_t2", csr_parallel_t2),
                ("parallel_t4", csr_parallel_t4),
                ("parallel_t8", csr_parallel_t8),
            ] {
                let mut y = vec![f64::NAN; m.rows() * k];
                f(&m, &x, &mut y, k);
                assert!(
                    y.iter()
                        .zip(&expect)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "csr_spmm_{name} @ k={k} not bitwise"
                );
            }
        }
    }

    #[test]
    fn merge_matches_per_column_spmv_bitwise_on_dyadic_values() {
        // A hot row forces chunks to cut rows mid-stream; dyadic values
        // make every association exact.
        let mut triplets: Vec<(usize, usize, f64)> =
            (0..64).map(|c| (0, c, 0.25 * (1 + c % 5) as f64)).collect();
        triplets.extend((1..17).map(|r| (r, r % 64, 0.5 * (r % 3) as f64)));
        let m = Csr::from_triplets(17, 64, &triplets).unwrap();
        for k in [1usize, 3, 4, 8, 10] {
            let x = dyadic_x(64, k);
            let expect = per_column_reference(&m, &x, k);
            for (name, f) in [
                ("merge_t2", csr_merge_t2 as SpmmFn<f64, Csr<f64>>),
                ("merge_t4", csr_merge_t4),
                ("merge_t8", csr_merge_t8),
            ] {
                let mut y = vec![f64::NAN; m.rows() * k];
                f(&m, &x, &mut y, k);
                assert!(
                    y.iter()
                        .zip(&expect)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "csr_spmm_{name} @ k={k} not bitwise on dyadic values"
                );
            }
        }
    }

    #[test]
    fn merge_planned_replays_bitwise_and_handles_degraded_plans() {
        let m = power_law::<f64>(600, 150, 2.0, 7);
        let k = 5usize;
        let x: Vec<f64> = (0..m.cols() * k).map(|i| (i as f64 * 0.11).cos()).collect();
        let (eb, rb) = merge_path_bounds(&m, 6);
        let plan = ExecPlan {
            bounds: rb,
            entry_bounds: Some(eb),
            threads: exec::num_threads(),
            policy: crate::plan::ChunkPolicy::MergePath,
        };
        let mut y1 = vec![f64::NAN; 600 * k];
        let mut y2 = vec![f64::NAN; 600 * k];
        run_csr_merge_planned(&m, &x, &mut y1, k, &plan, 4);
        run_csr_merge_planned(&m, &x, &mut y2, k, &plan, 4);
        assert!(y1.iter().zip(&y2).all(|(a, b)| a == b), "replay unstable");
        // Degraded (serial) plan: still correct, serial order.
        let mut y3 = vec![f64::NAN; 600 * k];
        run_csr_merge_planned(&m, &x, &mut y3, k, &ExecPlan::serial(600), 4);
        let expect = per_column_reference(&m, &x, k);
        assert!(y3
            .iter()
            .zip(&expect)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn empty_rows_and_k1_degenerate() {
        let m = Csr::<f64>::from_triplets(4, 4, &[(1, 1, 2.0)]).unwrap();
        let x = dyadic_x(4, 1);
        let expect = per_column_reference(&m, &x, 1);
        for f in [
            csr_basic as SpmmFn<f64, Csr<f64>>,
            csr_t2,
            csr_t8,
            csr_merge_t4,
            csr_parallel_t4,
        ] {
            let mut y = vec![f64::NAN; 4];
            f(&m, &x, &mut y, 1);
            assert_eq!(y, expect);
        }
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn dimension_mismatch_panics() {
        let m = Csr::<f64>::identity(3);
        let mut y = [0.0; 6];
        csr_basic(&m, &[1.0; 5], &mut y, 2);
    }
}

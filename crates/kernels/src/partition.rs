//! Work partitioning helpers for the parallel kernels.

use smat_matrix::{Csr, Scalar};

/// Splits `0..rows` into at most `parts` equal-size contiguous chunks,
/// returned as a boundary list `[0, b1, ..., rows]`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn equal_row_bounds(rows: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "at least one partition required");
    let parts = parts.min(rows.max(1));
    let chunk = rows.div_ceil(parts);
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut b = 0;
    while b < rows {
        bounds.push(b);
        b += chunk;
    }
    bounds.push(rows);
    if bounds.len() == 1 {
        bounds.push(0); // rows == 0: keep the [0, 0] shape
    }
    bounds
}

/// Splits rows into contiguous chunks of approximately equal *nonzero
/// count* — the paper's load-balanced "threading policy" for matrices
/// with skewed row degrees.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn nnz_balanced_bounds<T: Scalar>(m: &Csr<T>, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "at least one partition required");
    let rows = m.rows();
    let nnz = m.nnz();
    let target = nnz.div_ceil(parts.min(rows.max(1)));
    let ptr = m.row_ptr();
    let mut bounds = vec![0usize];
    let mut next_target = target;
    for (r, &p) in ptr.iter().enumerate().take(rows).skip(1) {
        if p >= next_target && *bounds.last().expect("non-empty") < r {
            bounds.push(r);
            next_target = p + target;
        }
    }
    bounds.push(rows);
    bounds
}

/// Hard cap on merge-path fan-out width. The merge kernel's serial
/// fix-up pass stores one carry partial per chunk in a fixed stack
/// array (no heap allocation in steady state), so plans must never
/// exceed this many chunks. 128 chunks is 8× the widest pool this
/// project targets; the cap is enforced at plan-build time.
pub const MAX_MERGE_CHUNKS: usize = 128;

/// Merge-path decomposition of a CSR matrix: the nonzero stream is cut
/// into `parts` equal entry ranges *irrespective of row boundaries*,
/// then each chunk is assigned the rows whose first entry position
/// falls inside its range (write ownership). Returns
/// `(entry_bounds, row_bounds)`, both of length `parts + 1`.
///
/// Row `r` is owned by the chunk whose entry range contains `ptr[r]`;
/// a chunk that lies wholly inside one huge row owns zero rows and
/// contributes only a carry partial. The final row bound is forced to
/// `rows` so trailing empty rows (whose `ptr[r] == nnz`) are owned by
/// the last chunk, keeping `row_bounds` a valid monotone partition of
/// `0..rows`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn merge_path_bounds<T: Scalar>(m: &Csr<T>, parts: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(parts > 0, "at least one partition required");
    let rows = m.rows();
    let nnz = m.nnz();
    let parts = parts.min(MAX_MERGE_CHUNKS).min(nnz.max(1));
    let ptr = m.row_ptr();
    let mut entry_bounds = Vec::with_capacity(parts + 1);
    let mut row_bounds = Vec::with_capacity(parts + 1);
    for i in 0..=parts {
        let e = i * nnz / parts;
        entry_bounds.push(e);
        let w = if i == parts {
            rows
        } else {
            // Rows are sorted by start position, so the count of rows
            // starting before `e` is a partition point.
            ptr[..rows].partition_point(|&p| p < e)
        };
        row_bounds.push(w);
    }
    (entry_bounds, row_bounds)
}

/// Splits a mutable slice into the sub-slices delimited by `bounds`
/// (which must start at 0, end at `y.len()` and be non-decreasing).
///
/// Parallel kernels hand each chunk to one rayon task; disjointness is
/// what makes the unsynchronized writes sound.
///
/// # Panics
///
/// Panics if the bounds are malformed.
pub fn split_by_bounds<'a, T>(y: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    assert!(bounds.len() >= 2, "bounds must have at least two entries");
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().expect("non-empty"),
        y.len(),
        "bounds must end at the slice length"
    );
    let mut out = Vec::with_capacity(bounds.len() - 1);
    let mut rest = y;
    let mut prev = 0;
    for &b in &bounds[1..] {
        assert!(b >= prev, "bounds must be non-decreasing");
        let (head, tail) = rest.split_at_mut(b - prev);
        out.push(head);
        rest = tail;
        prev = b;
    }
    out
}

/// Number of parallel chunks to use: a small multiple of the thread
/// count so the execution backend can balance tail effects. The thread
/// count comes from [`crate::exec::num_threads`], which resolves it
/// once instead of re-querying the OS per dispatch.
pub fn default_parts() -> usize {
    crate::exec::num_threads().max(1) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_bounds_cover_range() {
        let b = equal_row_bounds(10, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&10));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // More parts than rows collapses gracefully.
        let b = equal_row_bounds(2, 8);
        assert_eq!(b, vec![0, 1, 2]);
        // Zero rows.
        assert_eq!(equal_row_bounds(0, 4), vec![0, 0]);
    }

    #[test]
    fn nnz_bounds_balance_skewed_rows() {
        // Row 0 has 100 entries, rows 1..101 one each.
        let mut triplets: Vec<(usize, usize, f64)> = (0..100).map(|c| (0, c, 1.0)).collect();
        triplets.extend((1..101).map(|r| (r, 0, 1.0)));
        let m = Csr::from_triplets(101, 100, &triplets).unwrap();
        let b = nnz_balanced_bounds(&m, 2);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&101));
        // The heavy row should sit alone (or nearly) in its chunk.
        assert!(b[1] <= 2, "boundary after heavy row, got {:?}", b);
    }

    #[test]
    fn split_matches_bounds() {
        let mut data = [0u32, 1, 2, 3, 4, 5];
        let parts = split_by_bounds(&mut data, &[0, 2, 2, 6]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2], &[2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "end at the slice length")]
    fn split_bad_bounds_panics() {
        let mut data = [0u32; 4];
        split_by_bounds(&mut data, &[0, 2]);
    }

    #[test]
    fn default_parts_positive() {
        assert!(default_parts() >= 4);
    }

    #[test]
    fn merge_bounds_split_entries_evenly() {
        // Row 0 holds 90 of 100 entries: row-granular splits can't
        // balance this, entry-granular splits can.
        let mut triplets: Vec<(usize, usize, f64)> = (0..90).map(|c| (0, c, 1.0)).collect();
        triplets.extend((1..11).map(|r| (r, 0, 1.0)));
        let m = Csr::from_triplets(11, 90, &triplets).unwrap();
        let (eb, rb) = merge_path_bounds(&m, 4);
        assert_eq!(eb, vec![0, 25, 50, 75, 100]);
        assert_eq!(rb.first(), Some(&0));
        assert_eq!(rb.last(), Some(&11));
        assert!(rb.windows(2).all(|w| w[0] <= w[1]));
        // Chunks 1 and 2 sit wholly inside row 0 and own no rows.
        assert_eq!(&rb[1..4], &[1, 1, 1]);
    }

    #[test]
    fn merge_bounds_own_every_row_exactly_once() {
        let m = Csr::<f64>::from_triplets(6, 6, &[(1, 1, 2.0), (4, 0, 3.0), (4, 5, 1.0)]).unwrap();
        let (eb, rb) = merge_path_bounds(&m, 3);
        assert_eq!(eb.first(), Some(&0));
        assert_eq!(*eb.last().unwrap(), m.nnz());
        assert_eq!(rb.first(), Some(&0));
        assert_eq!(*rb.last().unwrap(), m.rows());
        // Ownership rule: rows in chunk i start at or after e_i.
        for i in 0..rb.len() - 1 {
            for r in rb[i]..rb[i + 1] {
                assert!(m.row_ptr()[r] >= eb[i], "row {r} misassigned");
            }
        }
    }

    #[test]
    fn merge_bounds_handle_empty_matrix_and_cap() {
        let m = Csr::<f64>::from_triplets(5, 5, &[]).unwrap();
        let (eb, rb) = merge_path_bounds(&m, 4);
        assert_eq!(eb, vec![0, 0]);
        assert_eq!(rb, vec![0, 5]);
        let dense: Vec<(usize, usize, f64)> = (0..500).map(|c| (0, c, 1.0)).collect();
        let m = Csr::from_triplets(1, 500, &dense).unwrap();
        let (eb, _) = merge_path_bounds(&m, 10_000);
        assert!(eb.len() - 1 <= MAX_MERGE_CHUNKS, "cap must hold");
    }
}

//! Timing utilities shared by the kernel search, the execute-and-measure
//! fallback and the benchmark harness.

use std::time::{Duration, Instant};

/// Measures the median wall-clock time of `f` over `reps` runs after
/// `warmup` untimed runs.
///
/// The median (rather than minimum or mean) follows common auto-tuning
/// practice: robust to one-off stalls without being optimistic.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn time_median<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> Duration {
    assert!(reps > 0, "at least one timed repetition required");
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// SpMV throughput in GFLOPS: `2 * nnz` floating-point operations (one
/// multiply, one add per stored element) over the elapsed time — the
/// metric of the paper's §7.2.
pub fn gflops(nnz: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    (2.0 * nnz as f64) / secs / 1e9
}

/// Picks a repetition count so a kernel taking `one_run` is measured for
/// roughly `budget` total, clamped to `[min_reps, max_reps]`.
pub fn reps_for_budget(
    one_run: Duration,
    budget: Duration,
    min_reps: usize,
    max_reps: usize,
) -> usize {
    if one_run.is_zero() {
        return max_reps;
    }
    let n = (budget.as_secs_f64() / one_run.as_secs_f64()).ceil() as usize;
    n.clamp(min_reps.max(1), max_reps.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_ordered() {
        let d = time_median(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            1,
            5,
        );
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn gflops_math() {
        let g = gflops(1_000_000, Duration::from_millis(1));
        // 2e6 flops / 1e-3 s = 2e9 flop/s = 2 GFLOPS.
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(gflops(10, Duration::ZERO), 0.0);
    }

    #[test]
    fn reps_budgeting() {
        assert_eq!(
            reps_for_budget(Duration::from_millis(10), Duration::from_millis(100), 3, 50),
            10
        );
        assert_eq!(
            reps_for_budget(Duration::from_millis(10), Duration::from_millis(1), 3, 50),
            3
        );
        assert_eq!(
            reps_for_budget(Duration::ZERO, Duration::from_millis(1), 3, 50),
            50
        );
    }
}

//! Timing utilities shared by the kernel search, the execute-and-measure
//! fallback and the benchmark harness.
//!
//! The *guarded* harness ([`measure_guarded`]) is the fault-isolation
//! boundary of the whole tuning pipeline: every candidate-kernel
//! execution in the scoreboard search and in the runtime fallback goes
//! through it, so a panicking or pathologically slow kernel is reported
//! as a [`MeasureOutcome`] instead of aborting tuning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Outcome of one guarded candidate measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureOutcome {
    /// The candidate ran to completion; median duration of the timed
    /// repetitions.
    Ok(Duration),
    /// The candidate panicked; the stringified panic payload.
    Panicked(String),
    /// The per-candidate deadline elapsed before measurement finished.
    ///
    /// The deadline is *cooperative*: a running repetition cannot be
    /// interrupted from safe Rust, so it is checked between repetitions
    /// and the candidate is abandoned at the first opportunity.
    TimedOut {
        /// Wall-clock spent when the deadline check fired.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
}

impl MeasureOutcome {
    /// The measured duration, if the candidate completed.
    pub fn ok(&self) -> Option<Duration> {
        match self {
            MeasureOutcome::Ok(d) => Some(*d),
            _ => None,
        }
    }

    /// A short human-readable failure description, or `None` on success.
    pub fn failure(&self) -> Option<String> {
        match self {
            MeasureOutcome::Ok(_) => None,
            MeasureOutcome::Panicked(msg) => Some(format!("kernel panicked: {msg}")),
            MeasureOutcome::TimedOut { elapsed, deadline } => Some(format!(
                "deadline exceeded: {elapsed:?} spent against a {deadline:?} budget"
            )),
        }
    }
}

/// Renders a panic payload (from [`catch_unwind`]) as a string: `&str`
/// and `String` payloads verbatim, anything else a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Measures the median wall-clock time of `f` with panic isolation and a
/// cooperative per-candidate deadline.
///
/// One untimed probe run estimates cost, then [`reps_for_budget`] picks
/// a repetition count for `budget` total measurement time, clamped to
/// `[min_reps, max_reps]`. Every run — probe included — executes inside
/// [`catch_unwind`], and the deadline is checked after each run, so a
/// misbehaving kernel yields [`MeasureOutcome::Panicked`] or
/// [`MeasureOutcome::TimedOut`] instead of taking the caller down.
pub fn measure_guarded<F: FnMut()>(
    mut f: F,
    budget: Duration,
    deadline: Duration,
    min_reps: usize,
    max_reps: usize,
) -> MeasureOutcome {
    // Failpoint `search.measure` runs *inside* the guarded closure, so
    // scripted faults exercise exactly the production failure channels:
    // `panic`/`fail` unwind into `Panicked`, `delay` burns wall-clock
    // against the cooperative deadline into `TimedOut`.
    let mut run = move || {
        if let Some(fault) = smat_failpoints::check("search.measure") {
            panic!("{fault}");
        }
        f();
    };
    let start = Instant::now();
    // Untimed probe run: catches panics early and estimates cost.
    let t0 = Instant::now();
    if let Err(payload) = catch_unwind(AssertUnwindSafe(&mut run)) {
        return MeasureOutcome::Panicked(panic_message(payload.as_ref()));
    }
    let one = t0.elapsed();
    if start.elapsed() > deadline {
        return MeasureOutcome::TimedOut {
            elapsed: start.elapsed(),
            deadline,
        };
    }
    let reps = reps_for_budget(one, budget, min_reps, max_reps);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        if start.elapsed() > deadline {
            // Deadline hit mid-measurement: abandon the candidate rather
            // than trust a truncated sample set.
            return MeasureOutcome::TimedOut {
                elapsed: start.elapsed(),
                deadline,
            };
        }
        let t0 = Instant::now();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(&mut run)) {
            return MeasureOutcome::Panicked(panic_message(payload.as_ref()));
        }
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    MeasureOutcome::Ok(samples[samples.len() / 2])
}

/// Measures the median wall-clock time of `f` over `reps` runs after
/// `warmup` untimed runs.
///
/// The median (rather than minimum or mean) follows common auto-tuning
/// practice: robust to one-off stalls without being optimistic.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn time_median<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> Duration {
    assert!(reps > 0, "at least one timed repetition required");
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// SpMV throughput in GFLOPS: `2 * nnz` floating-point operations (one
/// multiply, one add per stored element) over the elapsed time — the
/// metric of the paper's §7.2.
pub fn gflops(nnz: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    (2.0 * nnz as f64) / secs / 1e9
}

/// Picks a repetition count so a kernel taking `one_run` is measured for
/// roughly `budget` total, clamped to `[min_reps, max_reps]`.
pub fn reps_for_budget(
    one_run: Duration,
    budget: Duration,
    min_reps: usize,
    max_reps: usize,
) -> usize {
    if one_run.is_zero() {
        return max_reps;
    }
    let n = (budget.as_secs_f64() / one_run.as_secs_f64()).ceil() as usize;
    n.clamp(min_reps.max(1), max_reps.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_ordered() {
        let d = time_median(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            1,
            5,
        );
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn gflops_math() {
        let g = gflops(1_000_000, Duration::from_millis(1));
        // 2e6 flops / 1e-3 s = 2e9 flop/s = 2 GFLOPS.
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(gflops(10, Duration::ZERO), 0.0);
    }

    #[test]
    fn guarded_measurement_succeeds_on_healthy_kernel() {
        let out = measure_guarded(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            Duration::from_micros(200),
            Duration::from_secs(5),
            1,
            8,
        );
        let d = out.ok().expect("healthy kernel must measure");
        assert!(d > Duration::ZERO);
        assert!(out.failure().is_none());
    }

    #[test]
    fn guarded_measurement_catches_panic() {
        let out = measure_guarded(
            || panic!("kernel exploded"),
            Duration::from_micros(100),
            Duration::from_secs(1),
            1,
            4,
        );
        match &out {
            MeasureOutcome::Panicked(msg) => assert!(msg.contains("kernel exploded")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(out.failure().expect("failed").contains("panicked"));
    }

    #[test]
    fn guarded_measurement_enforces_deadline() {
        let out = measure_guarded(
            || std::thread::sleep(Duration::from_millis(4)),
            Duration::from_secs(10),
            Duration::from_millis(1),
            3,
            64,
        );
        match out {
            MeasureOutcome::TimedOut { elapsed, deadline } => {
                assert!(elapsed >= deadline);
                assert_eq!(deadline, Duration::from_millis(1));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(out.failure().expect("failed").contains("deadline"));
    }

    #[test]
    fn panic_payload_stringification() {
        let err = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "literal");
        let err = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "formatted 7");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "non-string panic payload");
    }

    #[test]
    fn reps_budgeting() {
        assert_eq!(
            reps_for_budget(Duration::from_millis(10), Duration::from_millis(100), 3, 50),
            10
        );
        assert_eq!(
            reps_for_budget(Duration::from_millis(10), Duration::from_millis(1), 3, 50),
            3
        );
        assert_eq!(
            reps_for_budget(Duration::ZERO, Duration::from_millis(1), 3, 50),
            50
        );
    }
}

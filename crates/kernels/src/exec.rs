//! Execution backend of the parallel kernels.
//!
//! One cfg site selects how chunked work is fanned out:
//!
//! * With the default `pool` feature, chunks run on the persistent
//!   parking worker pool (`smat-pool`): workers started once, woken by
//!   a condvar latch, claiming chunk indices through an atomic cursor —
//!   no per-call thread spawn, no per-item mutex, no heap allocation in
//!   steady state.
//! * Without it (`--no-default-features`), chunks run through the
//!   vendored rayon stub's scoped threads — the dependency-free
//!   fallback build.
//!
//! Every parallel kernel goes through [`for_each_row_chunk`], the one
//! place that turns a validated boundary list into disjoint `&mut`
//! sub-slices of the output vector.

#[cfg(feature = "pool")]
mod backend {
    /// Threads cooperating on one fan-out (pool workers + caller).
    pub fn num_threads() -> usize {
        smat_pool::current_num_threads()
    }

    /// Dispatches `body(0..chunks)` over the persistent pool.
    pub fn for_each_chunk(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        smat_pool::parallel_for(chunks, body);
    }

    /// Requests the pool size; only effective before the pool's first
    /// use (see [`smat_pool::set_thread_target`]).
    pub fn set_thread_target(n: usize) {
        smat_pool::set_thread_target(n);
    }

    /// OS threads ever spawned by the execution backend. Flat in steady
    /// state — the zero-spawn guarantee the tests assert.
    pub fn spawn_count() -> u64 {
        smat_pool::spawn_count()
    }

    /// Pool fan-outs performed (inline-serial fallbacks not counted).
    /// Flat across serial planned dispatches — the serial fast path in
    /// `for_each_row_chunk` never touches the pool.
    pub fn dispatch_count() -> u64 {
        smat_pool::dispatch_count()
    }

    /// Dispatches the `pool.dispatch` failpoint diverted to the inline
    /// fallback; the runtime's degradation ladder samples this around
    /// every parallel call to detect a faulting pool.
    pub fn dispatch_fault_count() -> u64 {
        smat_pool::dispatch_fault_count()
    }
}

#[cfg(not(feature = "pool"))]
mod backend {
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    static TARGET: AtomicUsize = AtomicUsize::new(0);

    /// Threads the rayon-stub fallback would use, resolved once (the
    /// pre-pool code re-issued the `available_parallelism` syscall on
    /// every SpMV dispatch).
    pub fn num_threads() -> usize {
        static N: OnceLock<usize> = OnceLock::new();
        *N.get_or_init(|| {
            let target = TARGET.load(Ordering::Relaxed);
            if target > 0 {
                target
            } else {
                rayon::current_num_threads().max(1)
            }
        })
    }

    /// Dispatches chunk indices over the rayon stub's scoped threads.
    pub fn for_each_chunk(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        (0..chunks)
            .collect::<Vec<usize>>()
            .into_par_iter()
            .for_each(|ci| body(ci));
    }

    /// Requests the thread count; only effective before the first
    /// [`num_threads`] call freezes it.
    pub fn set_thread_target(n: usize) {
        TARGET.store(n.max(1), Ordering::Relaxed);
    }

    /// The fallback backend spawns scoped threads per call and does not
    /// track them; reported as 0.
    pub fn spawn_count() -> u64 {
        0
    }

    /// The fallback backend does not track fan-outs; reported as 0.
    pub fn dispatch_count() -> u64 {
        0
    }

    /// The fallback backend has no failpoint-instrumented dispatch
    /// path; reported as 0 (the degradation ladder never triggers).
    pub fn dispatch_fault_count() -> u64 {
        0
    }
}

pub use backend::{
    dispatch_count, dispatch_fault_count, for_each_chunk, num_threads, set_thread_target,
    spawn_count,
};

/// Validates a chunk boundary list against an output slice: starts at
/// 0, ends at `len`, non-decreasing.
///
/// # Panics
///
/// Panics when the bounds are malformed.
#[inline]
pub(crate) fn validate_bounds(bounds: &[usize], len: usize) {
    assert!(bounds.len() >= 2, "bounds must have at least two entries");
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().expect("non-empty"),
        len,
        "bounds must end at the slice length"
    );
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "bounds must be non-decreasing"
    );
}

/// Runs `f(chunk_index, &mut y[bounds[i]..bounds[i + 1]])` for every
/// chunk, in parallel over the execution backend.
///
/// This replaces the old `split_by_bounds` + parallel-iterator pattern
/// without allocating the intermediate `Vec` of sub-slices: chunks are
/// carved from the raw output pointer inside this one audited helper.
/// Disjointness holds because the bounds are validated non-decreasing
/// and the backend hands out each chunk index exactly once.
///
/// # Panics
///
/// Panics when the bounds are malformed, and re-throws any panic from
/// `f` on the calling thread.
pub fn for_each_row_chunk<T, F>(y: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    validate_bounds(bounds, y.len());
    // Serial fast path: a single-chunk plan is the whole output slice,
    // so call the body directly instead of paying the pool's wake/park
    // handshake (or the fallback's scoped-thread spawn) for no
    // parallelism. Keeps `dispatch_count` flat for serial plans.
    if bounds.len() == 2 {
        return f(0, y);
    }
    let base = y.as_mut_ptr() as usize;
    for_each_chunk(bounds.len() - 1, &|ci| {
        let (b0, b1) = (bounds[ci], bounds[ci + 1]);
        // SAFETY: bounds are validated non-decreasing within
        // `0..=y.len()`, and the backend claims each chunk index
        // exactly once, so these sub-slices are in-bounds and disjoint.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(b0), b1 - b0) };
        f(ci, chunk);
    });
}

/// [`for_each_row_chunk`] for row-major multi-RHS outputs: `bounds`
/// are *row* boundaries, and chunk `i` receives
/// `&mut y[bounds[i] * k..bounds[i + 1] * k]` — the `k` output columns
/// of its rows, carved from the flat `rows * k` buffer without
/// allocating scaled boundary lists.
///
/// # Panics
///
/// Panics when `k == 0`, `y.len()` is not `rows * k` for the bounds'
/// row count, or the bounds are malformed; re-throws any panic from
/// `f` on the calling thread.
pub fn for_each_row_chunk_scaled<T, F>(y: &mut [T], bounds: &[usize], k: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(k >= 1, "at least one RHS column required");
    assert_eq!(y.len() % k, 0, "y length must be a multiple of k");
    validate_bounds(bounds, y.len() / k);
    if bounds.len() == 2 {
        return f(0, y);
    }
    let base = y.as_mut_ptr() as usize;
    for_each_chunk(bounds.len() - 1, &|ci| {
        let (b0, b1) = (bounds[ci] * k, bounds[ci + 1] * k);
        // SAFETY: row bounds are validated non-decreasing within
        // `0..=rows`, so the scaled ranges stay within `0..=y.len()`
        // and disjoint; the backend claims each chunk index once.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(b0), b1 - b0) };
        f(ci, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive_and_stable() {
        let n = num_threads();
        assert!(n >= 1);
        assert_eq!(num_threads(), n, "cached value must not drift");
    }

    #[test]
    fn row_chunks_cover_the_slice_disjointly() {
        let mut y = vec![0usize; 103];
        let bounds = [0, 17, 17, 60, 103];
        for_each_row_chunk(&mut y, &bounds, |ci, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = 1000 * (ci + 1) + i;
            }
        });
        for (r, &v) in y.iter().enumerate() {
            let ci = match r {
                0..=16 => 0,
                17..=59 => 2,
                _ => 3,
            };
            assert_eq!(v, 1000 * (ci + 1) + (r - bounds[ci]), "row {r}");
        }
    }

    #[test]
    fn scaled_row_chunks_cover_the_buffer_disjointly() {
        let k = 3;
        let mut y = vec![0usize; 10 * k];
        let bounds = [0, 4, 4, 10];
        for_each_row_chunk_scaled(&mut y, &bounds, k, |ci, chunk| {
            assert_eq!(chunk.len() % k, 0);
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = 100 * (ci + 1) + i;
            }
        });
        for (e, &v) in y.iter().enumerate() {
            let ci = if e < 4 * k { 0 } else { 2 };
            assert_eq!(v, 100 * (ci + 1) + (e - bounds[ci] * k), "element {e}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn scaled_chunks_reject_ragged_buffers() {
        let mut y = [0u8; 7];
        for_each_row_chunk_scaled(&mut y, &[0, 3], 2, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "end at the slice length")]
    fn short_bounds_are_rejected() {
        let mut y = [0u8; 4];
        for_each_row_chunk(&mut y, &[0, 2], |_, _| {});
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_bounds_are_rejected() {
        let mut y = [0u8; 4];
        for_each_row_chunk(&mut y, &[0, 3, 1, 4], |_, _| {});
    }
}

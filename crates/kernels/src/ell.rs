//! ELL SpMV kernel variants.
//!
//! The sequential loop follows the paper's Figure 2(d): column-major
//! sweep over the packed slots, streaming through the dense `data` /
//! `indices` arrays. Parallel variants chunk the rows and keep the
//! column-major sweep inside each chunk.

use crate::exec;
use crate::partition::{default_parts, equal_row_bounds};
use crate::plan::ExecPlan;
use crate::registry::{KernelEntry, KernelFn};
use crate::strategy::{InnerLoop, Strategy, StrategySet};
use smat_matrix::{Ell, Scalar};

#[inline]
fn check_dims<T: Scalar>(m: &Ell<T>, x: &[T], y: &[T]) {
    assert_eq!(x.len(), m.cols(), "x length must equal matrix columns");
    assert_eq!(y.len(), m.rows(), "y length must equal matrix rows");
}

/// Basic serial ELL SpMV — the paper's Figure 2(d) loop.
pub fn basic<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    for p in 0..m.width() {
        let dcol = &data[p * rows..(p + 1) * rows];
        let icol = &idx[p * rows..(p + 1) * rows];
        for r in 0..rows {
            y[r] += dcol[r] * x[icol[r]];
        }
    }
}

/// One packed slot's sweep `y[r] += d[r] * x[i[r]]` through the
/// selected inner loop. Every element is an independent mul + add, so
/// all four bodies are bit-identical — the unroll depth and vector
/// width are pure throughput knobs here.
#[inline]
fn slab_step<T: Scalar>(dcol: &[T], icol: &[usize], x: &[T], y: &mut [T], inner: InnerLoop) {
    let n = y.len();
    match inner {
        InnerLoop::Scalar => {
            for r in 0..n {
                y[r] += dcol[r] * x[icol[r]];
            }
        }
        InnerLoop::Unroll4 => {
            let quads = n / 4;
            for q in 0..quads {
                let r = 4 * q;
                y[r] += dcol[r] * x[icol[r]];
                y[r + 1] += dcol[r + 1] * x[icol[r + 1]];
                y[r + 2] += dcol[r + 2] * x[icol[r + 2]];
                y[r + 3] += dcol[r + 3] * x[icol[r + 3]];
            }
            for r in 4 * quads..n {
                y[r] += dcol[r] * x[icol[r]];
            }
        }
        InnerLoop::Unroll8 => {
            let octs = n / 8;
            for q in 0..octs {
                let r = 8 * q;
                y[r] += dcol[r] * x[icol[r]];
                y[r + 1] += dcol[r + 1] * x[icol[r + 1]];
                y[r + 2] += dcol[r + 2] * x[icol[r + 2]];
                y[r + 3] += dcol[r + 3] * x[icol[r + 3]];
                y[r + 4] += dcol[r + 4] * x[icol[r + 4]];
                y[r + 5] += dcol[r + 5] * x[icol[r + 5]];
                y[r + 6] += dcol[r + 6] * x[icol[r + 6]];
                y[r + 7] += dcol[r + 7] * x[icol[r + 7]];
            }
            for r in 8 * octs..n {
                y[r] += dcol[r] * x[icol[r]];
            }
        }
        InnerLoop::Simd => crate::simd::axpy_gather(dcol, icol, x, y),
    }
}

#[inline]
fn run_serial<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], inner: InnerLoop) {
    y.fill(T::ZERO);
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    for p in 0..m.width() {
        let dcol = &data[p * rows..(p + 1) * rows];
        let icol = &idx[p * rows..(p + 1) * rows];
        slab_step(dcol, icol, x, y, inner);
    }
}

/// Serial ELL SpMV with a 4-way unrolled row sweep per packed slot.
pub fn unrolled<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Unroll4);
}

/// Serial ELL SpMV with an 8-way unrolled row sweep per packed slot.
pub fn unrolled8<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Unroll8);
}

/// Serial ELL SpMV through the runtime-dispatched vector backend
/// (bit-identical to [`unrolled`], see [`crate::simd`]).
pub fn simd<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_serial(m, x, y, InnerLoop::Simd);
}

#[inline]
fn run_chunks<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], bounds: &[usize], inner: InnerLoop) {
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    exec::for_each_row_chunk(y, bounds, |ci, y_chunk| {
        y_chunk.fill(T::ZERO);
        let (r0, r1) = (bounds[ci], bounds[ci + 1]);
        for p in 0..m.width() {
            let dcol = &data[p * rows + r0..p * rows + r1];
            let icol = &idx[p * rows + r0..p * rows + r1];
            slab_step(dcol, icol, x, y_chunk, inner);
        }
    });
}

#[inline]
fn run_parallel<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], inner: InnerLoop) {
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks(m, x, y, &bounds, inner);
}

/// Row-parallel ELL SpMV.
pub fn parallel<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Scalar);
}

/// Row-parallel ELL SpMV with unrolled sweeps.
pub fn parallel_unrolled<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Unroll4);
}

/// Row-parallel ELL SpMV with 8-way unrolled sweeps.
pub fn parallel_unrolled8<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Unroll8);
}

/// Row-parallel ELL SpMV through the vector backend.
pub fn parallel_simd<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    run_parallel(m, x, y, InnerLoop::Simd);
}

/// Serial ELL SpMV with slot-pair register blocking: two packed slots
/// are fused into one sweep over the rows, halving the passes over `y`.
pub fn blocked2<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    let width = m.width();
    let pairs = width / 2;
    for q in 0..pairs {
        let p = 2 * q;
        let d0 = &data[p * rows..(p + 1) * rows];
        let i0 = &idx[p * rows..(p + 1) * rows];
        let d1 = &data[(p + 1) * rows..(p + 2) * rows];
        let i1 = &idx[(p + 1) * rows..(p + 2) * rows];
        for r in 0..rows {
            y[r] += d0[r] * x[i0[r]] + d1[r] * x[i1[r]];
        }
    }
    if width % 2 == 1 {
        let p = width - 1;
        let dcol = &data[p * rows..(p + 1) * rows];
        let icol = &idx[p * rows..(p + 1) * rows];
        for r in 0..rows {
            y[r] += dcol[r] * x[icol[r]];
        }
    }
}

/// Slot-pair blocked ELL SpMV with a 4-way unrolled row sweep.
pub fn blocked2_unrolled<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    y.fill(T::ZERO);
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    let width = m.width();
    let pairs = width / 2;
    for q in 0..pairs {
        let p = 2 * q;
        let d0 = &data[p * rows..(p + 1) * rows];
        let i0 = &idx[p * rows..(p + 1) * rows];
        let d1 = &data[(p + 1) * rows..(p + 2) * rows];
        let i1 = &idx[(p + 1) * rows..(p + 2) * rows];
        let quads = rows / 4;
        for t in 0..quads {
            let r = 4 * t;
            y[r] += d0[r] * x[i0[r]] + d1[r] * x[i1[r]];
            y[r + 1] += d0[r + 1] * x[i0[r + 1]] + d1[r + 1] * x[i1[r + 1]];
            y[r + 2] += d0[r + 2] * x[i0[r + 2]] + d1[r + 2] * x[i1[r + 2]];
            y[r + 3] += d0[r + 3] * x[i0[r + 3]] + d1[r + 3] * x[i1[r + 3]];
        }
        for r in 4 * quads..rows {
            y[r] += d0[r] * x[i0[r]] + d1[r] * x[i1[r]];
        }
    }
    if width % 2 == 1 {
        let p = width - 1;
        let dcol = &data[p * rows..(p + 1) * rows];
        let icol = &idx[p * rows..(p + 1) * rows];
        for r in 0..rows {
            y[r] += dcol[r] * x[icol[r]];
        }
    }
}

#[inline]
fn run_chunks_blocked2<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T], bounds: &[usize]) {
    let rows = m.rows();
    let data = m.data();
    let idx = m.indices();
    let width = m.width();
    exec::for_each_row_chunk(y, bounds, |ci, y_chunk| {
        y_chunk.fill(T::ZERO);
        let (r0, r1) = (bounds[ci], bounds[ci + 1]);
        let n = r1 - r0;
        let pairs = width / 2;
        for q in 0..pairs {
            let p = 2 * q;
            let d0 = &data[p * rows + r0..p * rows + r1];
            let i0 = &idx[p * rows + r0..p * rows + r1];
            let d1 = &data[(p + 1) * rows + r0..(p + 1) * rows + r1];
            let i1 = &idx[(p + 1) * rows + r0..(p + 1) * rows + r1];
            for r in 0..n {
                y_chunk[r] += d0[r] * x[i0[r]] + d1[r] * x[i1[r]];
            }
        }
        if width % 2 == 1 {
            let p = width - 1;
            let dcol = &data[p * rows + r0..p * rows + r1];
            let icol = &idx[p * rows + r0..p * rows + r1];
            for r in 0..n {
                y_chunk[r] += dcol[r] * x[icol[r]];
            }
        }
    });
}

/// Row-parallel ELL SpMV with slot-pair blocking inside each chunk.
pub fn parallel_blocked2<T: Scalar>(m: &Ell<T>, x: &[T], y: &mut [T]) {
    check_dims(m, x, y);
    let bounds = equal_row_bounds(m.rows(), default_parts());
    run_chunks_blocked2(m, x, y, &bounds);
}

/// Runs a parallel ELL variant with precomputed row chunk bounds. The
/// strategy set picks the chunk body: `Block` selects the slot-pair
/// fused sweep, otherwise the [`InnerLoop`] it maps to.
pub(crate) fn run_planned<T: Scalar>(
    m: &Ell<T>,
    x: &[T],
    y: &mut [T],
    plan: &ExecPlan,
    strategies: StrategySet,
) {
    check_dims(m, x, y);
    if strategies.contains(Strategy::Block) {
        run_chunks_blocked2(m, x, y, &plan.bounds);
    } else {
        run_chunks(m, x, y, &plan.bounds, InnerLoop::of(strategies));
    }
}

/// The ELL kernel library.
pub fn kernels<T: Scalar>() -> Vec<KernelEntry<T, Ell<T>>> {
    use Strategy::*;
    vec![
        (
            "ell_basic",
            StrategySet::EMPTY,
            basic as KernelFn<T, Ell<T>>,
        ),
        ("ell_unroll", [Unroll].into_iter().collect(), unrolled),
        (
            "ell_unroll8",
            [Unroll, Wide].into_iter().collect(),
            unrolled8,
        ),
        ("ell_simd", [Unroll, Simd].into_iter().collect(), simd),
        ("ell_block2", [Block].into_iter().collect(), blocked2),
        (
            "ell_block2_unroll",
            [Block, Unroll].into_iter().collect(),
            blocked2_unrolled,
        ),
        ("ell_parallel", [Parallel].into_iter().collect(), parallel),
        (
            "ell_parallel_unroll",
            [Parallel, Unroll].into_iter().collect(),
            parallel_unrolled,
        ),
        (
            "ell_parallel_unroll8",
            [Parallel, Unroll, Wide].into_iter().collect(),
            parallel_unrolled8,
        ),
        (
            "ell_parallel_simd",
            [Parallel, Unroll, Simd].into_iter().collect(),
            parallel_simd,
        ),
        (
            "ell_parallel_block2",
            [Parallel, Block].into_iter().collect(),
            parallel_blocked2,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::fixed_degree;
    use smat_matrix::utils::max_abs_diff;
    use smat_matrix::Csr;

    fn reference(m: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        m.spmv(x, &mut y).unwrap();
        y
    }

    #[test]
    fn all_variants_match_reference() {
        let csr = fixed_degree::<f64>(307, 290, 11, 2, 19);
        let ell = Ell::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.21).cos()).collect();
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![f64::NAN; csr.rows()];
            k(&ell, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn ragged_rows_with_padding() {
        let csr = Csr::<f64>::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (0, 4, 2.0),
                (0, 2, 5.0),
                (2, 1, 3.0),
                (4, 4, 4.0),
            ],
        )
        .unwrap();
        let ell = Ell::from_csr(&csr).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let expect = reference(&csr, &x);
        for (name, _, k) in kernels::<f64>() {
            let mut y = vec![0.0; 5];
            k(&ell, &x, &mut y);
            assert!(max_abs_diff(&y, &expect) < 1e-12, "{name} diverges");
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = Csr::<f32>::from_triplets(3, 3, &[]).unwrap();
        let ell = Ell::from_csr(&csr).unwrap();
        for (name, _, k) in kernels::<f32>() {
            let mut y = [2.0f32; 3];
            k(&ell, &[1.0; 3], &mut y);
            assert_eq!(y, [0.0; 3], "{name}");
        }
    }
}

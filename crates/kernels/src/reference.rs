//! MKL-style reference baseline.
//!
//! The paper compares SMAT against the Intel MKL sparse BLAS, whose API
//! exposes one SpMV routine per storage format (its Figure 5 lists
//! `mkl_xcsrgemv`, `mkl_xdiagemv`, `mkl_xcoogemv`, ...). MKL is
//! proprietary, so this module provides clean per-format routines behind
//! the same API shape: straightforward implementations with vendor-style
//! threading for CSR (the routine MKL parallelizes) and sequential loops
//! for DIA/COO.
//!
//! Figure 10's baseline is [`best_of_reference`]: the maximum throughput
//! over the DIA, CSR and COO routines, exactly how the paper reports MKL
//! ("the maximum performance number of DIA, CSR, and COO SpMV functions
//! in this library").

use crate::timing::{gflops, reps_for_budget, time_median};
use smat_matrix::{Coo, Csr, Dia, Scalar};
use std::time::Duration;

/// A boxed SpMV routine `(x, y)` closed over its matrix.
type SpmvClosure<'a, T> = Box<dyn FnMut(&[T], &mut [T]) + 'a>;

/// Reference CSR SpMV (`mkl_xcsrgemv` stand-in): row-parallel basic
/// kernel.
///
/// # Panics
///
/// Panics if vector lengths do not match the matrix dimensions.
pub fn csrgemv<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    crate::csr::parallel(m, x, y);
}

/// Reference sequential CSR SpMV (single-threaded BLAS configuration).
///
/// # Panics
///
/// Panics if vector lengths do not match the matrix dimensions.
pub fn csrgemv_seq<T: Scalar>(m: &Csr<T>, x: &[T], y: &mut [T]) {
    crate::csr::basic(m, x, y);
}

/// Reference DIA SpMV (`mkl_xdiagemv` stand-in): sequential
/// diagonal-major kernel.
///
/// # Panics
///
/// Panics if vector lengths do not match the matrix dimensions.
pub fn diagemv<T: Scalar>(m: &Dia<T>, x: &[T], y: &mut [T]) {
    crate::dia::basic(m, x, y);
}

/// Reference COO SpMV (`mkl_xcoogemv` stand-in): sequential triplet
/// kernel.
///
/// # Panics
///
/// Panics if vector lengths do not match the matrix dimensions.
pub fn coogemv<T: Scalar>(m: &Coo<T>, x: &[T], y: &mut [T]) {
    crate::coo::basic(m, x, y);
}

/// Measured throughput of the best reference routine on a matrix given in
/// CSR (the paper's MKL number): max over the DIA, CSR and COO routines.
///
/// Returns `(gflops, routine_name)`. Formats whose conversion is refused
/// (oversized DIA fill) are skipped, as a library user would skip them.
pub fn best_of_reference<T: Scalar>(m: &Csr<T>, budget: Duration) -> (f64, &'static str) {
    let x = vec![T::ONE; m.cols()];
    let mut y = vec![T::ZERO; m.rows()];
    let nnz = m.nnz();
    let mut best = (0.0f64, "none");

    let mut consider = |name: &'static str, mut run: SpmvClosure<'_, T>| {
        let t0 = std::time::Instant::now();
        run(&x, &mut y);
        let one = t0.elapsed();
        let reps = reps_for_budget(one, budget, 3, 64);
        let med = time_median(|| run(&x, &mut y), 1, reps);
        let g = gflops(nnz, med);
        if g > best.0 {
            best = (g, name);
        }
    };

    consider("csrgemv", Box::new(|x, y| csrgemv(m, x, y)));
    let coo = Coo::from_csr(m);
    consider("coogemv", Box::new(|x, y| coogemv(&coo, x, y)));
    if let Ok(dia) = Dia::from_csr(m) {
        consider("diagemv", Box::new(move |x, y| diagemv(&dia, x, y)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{banded, random_uniform};
    use smat_matrix::utils::max_abs_diff;

    #[test]
    fn reference_routines_agree() {
        let m = random_uniform::<f64>(200, 180, 8, 5);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();

        let mut y = vec![0.0; m.rows()];
        csrgemv(&m, &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
        csrgemv_seq(&m, &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
        coogemv(&Coo::from_csr(&m), &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
    }

    #[test]
    fn diagemv_agrees_on_banded_input() {
        let m = banded::<f64>(300, &[-5, 0, 7], 1.0, 2);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut expect = vec![0.0; m.rows()];
        m.spmv(&x, &mut expect).unwrap();
        let mut y = vec![0.0; m.rows()];
        diagemv(&Dia::from_csr(&m).unwrap(), &x, &mut y);
        assert!(max_abs_diff(&y, &expect) < 1e-12);
    }

    #[test]
    fn best_of_reference_returns_positive_throughput() {
        let m = banded::<f64>(4096, &[-1, 0, 1], 1.0, 1);
        let (g, name) = best_of_reference(&m, Duration::from_millis(2));
        assert!(g > 0.0);
        assert!(["csrgemv", "coogemv", "diagemv"].contains(&name));
    }
}

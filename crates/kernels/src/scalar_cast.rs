//! `TypeId`-checked casts between a generic [`smat_matrix::Scalar`] and
//! the concrete float type an intrinsics body is written for.
//!
//! `Scalar` is sealed over `f32`/`f64` and `'static`, so a runtime
//! `TypeId` comparison is a complete dispatch: when it matches, `T` and
//! `U` are the same type and the casts below are identity conversions.

use std::any::TypeId;

/// Whether `T` is `f64`.
#[inline]
pub(crate) fn is_f64<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<f64>()
}

/// Whether `T` is `f32`.
#[inline]
pub(crate) fn is_f32<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<f32>()
}

/// Reinterprets `&[T]` as `&[U]`.
///
/// # Panics
///
/// Panics if `T` and `U` are not the same type.
#[inline]
pub(crate) fn cast_ref<T: 'static, U: 'static>(s: &[T]) -> &[U] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    // SAFETY: T and U are the identical type, so layout and validity
    // are trivially preserved.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const U, s.len()) }
}

/// Reinterprets `&mut [T]` as `&mut [U]`.
///
/// # Panics
///
/// Panics if `T` and `U` are not the same type.
#[inline]
pub(crate) fn cast_mut<T: 'static, U: 'static>(s: &mut [T]) -> &mut [U] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    // SAFETY: T and U are the identical type.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut U, s.len()) }
}

/// Converts a value of `T` to `U` where both are the same type.
///
/// # Panics
///
/// Panics if `T` and `U` are not the same type.
#[inline]
pub(crate) fn cast_val<T: Copy + 'static, U: Copy + 'static>(v: T) -> U {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    // SAFETY: T and U are the identical type.
    unsafe { std::mem::transmute_copy(&v) }
}

//! The kernel library: every SpMV implementation variant for every
//! format, addressable by `(Format, variant index)`.
//!
//! This is the "large kernel library" of the paper's Figure 4. The
//! offline kernel search ([`crate::search`]) picks one variant per format
//! for the host architecture; the runtime then dispatches through
//! [`KernelLibrary::run`].

use crate::partition::{default_parts, equal_row_bounds, merge_path_bounds, nnz_balanced_bounds};
pub use crate::plan::ChunkPolicy;
use crate::plan::ExecPlan;
use crate::strategy::{InnerLoop, Strategy, StrategySet};
use crate::{bcsr, coo, csr, dia, ell, exec, hyb, spmm};
use serde::{Deserialize, Serialize};
use smat_matrix::{AnyMatrix, Bcsr, Coo, Csr, Dia, Ell, Format, Hyb, Scalar};

/// Signature of every SpMV kernel: `run(matrix, x, y)` computing
/// `y = A * x`.
pub type KernelFn<T, M> = fn(&M, &[T], &mut [T]);

/// One registered kernel: name, strategy set and entry point.
pub type KernelEntry<T, M> = (&'static str, StrategySet, KernelFn<T, M>);

/// Signature of every SpMM kernel: `run(matrix, x, y, k)` computing
/// `Y = A * X` for `k` right-hand sides, with `X` (`cols * k`) and `Y`
/// (`rows * k`) stored row-major.
pub type SpmmFn<T, M> = fn(&M, &[T], &mut [T], usize);

/// One registered SpMM kernel: name, strategy set and entry point.
pub type SpmmEntry<T, M> = (&'static str, StrategySet, SpmmFn<T, M>);

/// The operation a kernel computes. SpMV and SpMM variants live in
/// separate per-format tables (their signatures differ by the RHS
/// count), but share one id space so the decision cache, health
/// breakers and install artifact address both uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Sparse matrix–vector product `y = A * x`.
    Spmv,
    /// Sparse matrix–multi-vector product `Y = A * X` (k RHS columns).
    Spmm,
}

/// Identifies one kernel implementation: an operation, a format, and
/// the index of a variant within that format's library for that op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelId {
    /// Operation the kernel computes.
    pub op: Op,
    /// Storage format the kernel operates on.
    pub format: Format,
    /// Index into [`KernelLibrary::variants`] (or
    /// [`KernelLibrary::spmm_variants`]) for that format.
    pub variant: usize,
}

impl KernelId {
    /// The basic (unoptimized) SpMV kernel of a format — always
    /// variant 0.
    pub fn basic(format: Format) -> Self {
        KernelId {
            op: Op::Spmv,
            format,
            variant: 0,
        }
    }

    /// The basic (column-at-a-time) SpMM kernel of a format — always
    /// variant 0 of the SpMM table.
    pub fn spmm_basic(format: Format) -> Self {
        KernelId {
            op: Op::Spmm,
            format,
            variant: 0,
        }
    }
}

/// Metadata describing one kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelInfo {
    /// Stable human-readable name (e.g. `"csr_parallel_balanced"`).
    pub name: &'static str,
    /// Optimization strategies the variant applies.
    pub strategies: StrategySet,
}

/// The complete kernel library for scalar type `T`.
///
/// # Examples
///
/// ```
/// use smat_kernels::KernelLibrary;
/// use smat_matrix::{AnyMatrix, Csr, Format};
///
/// let lib = KernelLibrary::<f64>::new();
/// assert!(lib.variant_count(Format::Csr) >= 4);
///
/// let a = Csr::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)])?;
/// let any = AnyMatrix::Csr(a);
/// let mut y = [0.0; 2];
/// lib.run(&any, 0, &[1.0, 1.0], &mut y);
/// assert_eq!(y, [3.0, 4.0]);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
pub struct KernelLibrary<T: Scalar> {
    csr: Vec<KernelEntry<T, Csr<T>>>,
    coo: Vec<KernelEntry<T, Coo<T>>>,
    dia: Vec<KernelEntry<T, Dia<T>>>,
    ell: Vec<KernelEntry<T, Ell<T>>>,
    hyb: Vec<KernelEntry<T, Hyb<T>>>,
    bcsr2: Vec<KernelEntry<T, Bcsr<T>>>,
    bcsr4: Vec<KernelEntry<T, Bcsr<T>>>,
    /// Multi-RHS (SpMM) tables. Formats without an entry here (COO,
    /// DIA, HYB) have no batched kernels; the engine falls back to
    /// per-column SpMV for them.
    csr_spmm: Vec<SpmmEntry<T, Csr<T>>>,
    ell_spmm: Vec<SpmmEntry<T, Ell<T>>>,
    bcsr2_spmm: Vec<SpmmEntry<T, Bcsr<T>>>,
    bcsr4_spmm: Vec<SpmmEntry<T, Bcsr<T>>>,
    /// Variant counts at construction. Only builtin variants have
    /// planned execution paths; user-registered ones (appended past
    /// these counts) always dispatch through their raw fn pointer.
    builtin: [usize; 7],
}

impl<T: Scalar> std::fmt::Debug for KernelLibrary<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelLibrary")
            .field("csr_variants", &self.csr.len())
            .field("coo_variants", &self.coo.len())
            .field("dia_variants", &self.dia.len())
            .field("ell_variants", &self.ell.len())
            .field("hyb_variants", &self.hyb.len())
            .field("bcsr2_variants", &self.bcsr2.len())
            .field("bcsr4_variants", &self.bcsr4.len())
            .field("spmm_variants", &self.total_spmm_variants())
            .finish()
    }
}

impl<T: Scalar> Default for KernelLibrary<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> KernelLibrary<T> {
    /// Builds the library with every registered variant.
    pub fn new() -> Self {
        let (csr, coo, dia, ell, hyb) = (
            csr::kernels(),
            coo::kernels(),
            dia::kernels(),
            ell::kernels(),
            hyb::kernels(),
        );
        let (bcsr2, bcsr4) = (bcsr::kernels2(), bcsr::kernels4());
        let builtin = [
            csr.len(),
            coo.len(),
            dia.len(),
            ell.len(),
            hyb.len(),
            bcsr2.len(),
            bcsr4.len(),
        ];
        Self {
            csr,
            coo,
            dia,
            ell,
            hyb,
            bcsr2,
            bcsr4,
            csr_spmm: spmm::csr_kernels(),
            ell_spmm: spmm::ell_kernels(),
            bcsr2_spmm: spmm::bcsr_kernels2(),
            bcsr4_spmm: spmm::bcsr_kernels4(),
            builtin,
        }
    }

    /// Whether `id` names a builtin variant (one with a planned
    /// execution path), as opposed to a user-registered extension.
    /// Every SpMM variant is builtin — there is no SpMM registration
    /// extension point.
    fn is_builtin(&self, id: KernelId) -> bool {
        if id.op == Op::Spmm {
            return id.variant < self.spmm_variant_count(id.format);
        }
        let slot = match id.format {
            Format::Csr => 0,
            Format::Coo => 1,
            Format::Dia => 2,
            Format::Ell => 3,
            Format::Hyb => 4,
            Format::Bcsr2 => 5,
            Format::Bcsr4 => 6,
        };
        id.variant < self.builtin[slot]
    }

    /// Strategy set of one variant without materializing the
    /// [`variants`](Self::variants) metadata `Vec` — the dispatch path
    /// reads this per call, and steady-state dispatch must not allocate.
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    fn strategies_of(&self, id: KernelId) -> StrategySet {
        if id.op == Op::Spmm {
            return match id.format {
                Format::Csr => self.csr_spmm[id.variant].1,
                Format::Ell => self.ell_spmm[id.variant].1,
                Format::Bcsr2 => self.bcsr2_spmm[id.variant].1,
                Format::Bcsr4 => self.bcsr4_spmm[id.variant].1,
                other => panic!("format {other} has no SpMM kernels"),
            };
        }
        match id.format {
            Format::Csr => self.csr[id.variant].1,
            Format::Coo => self.coo[id.variant].1,
            Format::Dia => self.dia[id.variant].1,
            Format::Ell => self.ell[id.variant].1,
            Format::Hyb => self.hyb[id.variant].1,
            Format::Bcsr2 => self.bcsr2[id.variant].1,
            Format::Bcsr4 => self.bcsr4[id.variant].1,
        }
    }

    /// Number of implementation variants for `format`.
    pub fn variant_count(&self, format: Format) -> usize {
        match format {
            Format::Csr => self.csr.len(),
            Format::Coo => self.coo.len(),
            Format::Dia => self.dia.len(),
            Format::Ell => self.ell.len(),
            Format::Hyb => self.hyb.len(),
            Format::Bcsr2 => self.bcsr2.len(),
            Format::Bcsr4 => self.bcsr4.len(),
        }
    }

    /// Total number of implementations across all formats (the paper
    /// reports "up to 24 in current SMAT system").
    pub fn total_variants(&self) -> usize {
        Format::ALL.into_iter().map(|f| self.variant_count(f)).sum()
    }

    /// Number of SpMM (multi-RHS) variants for `format`; 0 for formats
    /// without a batched tier (COO, DIA, HYB).
    pub fn spmm_variant_count(&self, format: Format) -> usize {
        match format {
            Format::Csr => self.csr_spmm.len(),
            Format::Ell => self.ell_spmm.len(),
            Format::Bcsr2 => self.bcsr2_spmm.len(),
            Format::Bcsr4 => self.bcsr4_spmm.len(),
            Format::Coo | Format::Dia | Format::Hyb => 0,
        }
    }

    /// Total number of SpMM implementations across all formats.
    pub fn total_spmm_variants(&self) -> usize {
        Format::ALL
            .into_iter()
            .map(|f| self.spmm_variant_count(f))
            .sum()
    }

    /// Metadata for every SpMM variant of `format`, indexed by variant
    /// id (empty for formats without a batched tier).
    pub fn spmm_variants(&self, format: Format) -> Vec<KernelInfo> {
        macro_rules! infos {
            ($v:expr) => {
                $v.iter()
                    .map(|&(name, strategies, _)| KernelInfo { name, strategies })
                    .collect()
            };
        }
        match format {
            Format::Csr => infos!(self.csr_spmm),
            Format::Ell => infos!(self.ell_spmm),
            Format::Bcsr2 => infos!(self.bcsr2_spmm),
            Format::Bcsr4 => infos!(self.bcsr4_spmm),
            Format::Coo | Format::Dia | Format::Hyb => Vec::new(),
        }
    }

    /// Metadata for every variant of `format`, indexed by variant id.
    pub fn variants(&self, format: Format) -> Vec<KernelInfo> {
        macro_rules! infos {
            ($v:expr) => {
                $v.iter()
                    .map(|&(name, strategies, _)| KernelInfo { name, strategies })
                    .collect()
            };
        }
        match format {
            Format::Csr => infos!(self.csr),
            Format::Coo => infos!(self.coo),
            Format::Dia => infos!(self.dia),
            Format::Ell => infos!(self.ell),
            Format::Hyb => infos!(self.hyb),
            Format::Bcsr2 => infos!(self.bcsr2),
            Format::Bcsr4 => infos!(self.bcsr4),
        }
    }

    /// Metadata for a specific kernel, dispatching on the id's op so
    /// SpMM ids resolve names like SpMV ids do (health reports, the
    /// serve daemon's kernel field).
    ///
    /// # Panics
    ///
    /// Panics if the variant index is out of range.
    pub fn info(&self, id: KernelId) -> KernelInfo {
        match id.op {
            Op::Spmv => self.variants(id.format)[id.variant],
            Op::Spmm => self.spmm_variants(id.format)[id.variant],
        }
    }

    /// Registers an additional CSR kernel variant, returning its id.
    ///
    /// Extension point for the paper's "add new kernels" claim and for
    /// fault-injection tests; the new variant participates in the
    /// guarded search like any built-in one.
    pub fn register_csr(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Csr<T>>,
    ) -> KernelId {
        self.csr.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Csr,
            variant: self.csr.len() - 1,
        }
    }

    /// Registers an additional COO kernel variant, returning its id.
    pub fn register_coo(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Coo<T>>,
    ) -> KernelId {
        self.coo.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Coo,
            variant: self.coo.len() - 1,
        }
    }

    /// Registers an additional DIA kernel variant, returning its id.
    pub fn register_dia(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Dia<T>>,
    ) -> KernelId {
        self.dia.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Dia,
            variant: self.dia.len() - 1,
        }
    }

    /// Registers an additional ELL kernel variant, returning its id.
    pub fn register_ell(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Ell<T>>,
    ) -> KernelId {
        self.ell.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Ell,
            variant: self.ell.len() - 1,
        }
    }

    /// Registers an additional HYB kernel variant, returning its id.
    pub fn register_hyb(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Hyb<T>>,
    ) -> KernelId {
        self.hyb.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Hyb,
            variant: self.hyb.len() - 1,
        }
    }

    /// Registers an additional BCSR 2x2 kernel variant, returning its id.
    pub fn register_bcsr2(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Bcsr<T>>,
    ) -> KernelId {
        self.bcsr2.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Bcsr2,
            variant: self.bcsr2.len() - 1,
        }
    }

    /// Registers an additional BCSR 4x4 kernel variant, returning its id.
    pub fn register_bcsr4(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Bcsr<T>>,
    ) -> KernelId {
        self.bcsr4.push((name, strategies, f));
        KernelId {
            op: Op::Spmv,
            format: Format::Bcsr4,
            variant: self.bcsr4.len() - 1,
        }
    }

    /// Runs variant `variant` of the matrix's own format: `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range for the matrix's format or if
    /// the vector lengths do not match the matrix dimensions.
    pub fn run(&self, m: &AnyMatrix<T>, variant: usize, x: &[T], y: &mut [T]) {
        match m {
            AnyMatrix::Csr(m) => (self.csr[variant].2)(m, x, y),
            AnyMatrix::Coo(m) => (self.coo[variant].2)(m, x, y),
            AnyMatrix::Dia(m) => (self.dia[variant].2)(m, x, y),
            AnyMatrix::Ell(m) => (self.ell[variant].2)(m, x, y),
            AnyMatrix::Hyb(m) => (self.hyb[variant].2)(m, x, y),
            AnyMatrix::Bcsr2(m) => (self.bcsr2[variant].2)(m, x, y),
            AnyMatrix::Bcsr4(m) => (self.bcsr4[variant].2)(m, x, y),
        }
    }

    /// Runs a CSR kernel directly (avoids wrapping in [`AnyMatrix`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variant or mismatched vector lengths.
    pub fn run_csr(&self, m: &Csr<T>, variant: usize, x: &[T], y: &mut [T]) {
        (self.csr[variant].2)(m, x, y)
    }

    /// Classifies how kernel `id` partitions `m` — the memoizable
    /// "shape" of its [`ExecPlan`]. Two kernels with the same policy
    /// (at the same thread count) share identical plans, which is what
    /// lets [`Planner`] reuse bounds across a whole variant sweep.
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    pub fn chunk_policy(&self, m: &AnyMatrix<T>, id: KernelId) -> ChunkPolicy {
        if !self.is_builtin(id) || id.format != m.format() {
            return ChunkPolicy::Serial;
        }
        if id.op == Op::Spmm {
            let s = self.strategies_of(id);
            if !s.contains(Strategy::Parallel) {
                return ChunkPolicy::Serial;
            }
            return match m {
                AnyMatrix::Csr(_) => {
                    if s.contains(Strategy::Merge) {
                        ChunkPolicy::MergePath
                    } else {
                        ChunkPolicy::EqualRows
                    }
                }
                AnyMatrix::Ell(_) => ChunkPolicy::EqualRows,
                AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => ChunkPolicy::BlockAligned(m.br()),
                _ => ChunkPolicy::Serial,
            };
        }
        if !self.strategies_of(id).contains(Strategy::Parallel) {
            return ChunkPolicy::Serial;
        }
        match m {
            AnyMatrix::Csr(_) => {
                let s = self.strategies_of(id);
                if s.contains(Strategy::Merge) {
                    ChunkPolicy::MergePath
                } else if s.contains(Strategy::Balance) {
                    ChunkPolicy::NnzBalanced
                } else {
                    ChunkPolicy::EqualRows
                }
            }
            AnyMatrix::Coo(_) => ChunkPolicy::EntryAligned,
            AnyMatrix::Dia(_) | AnyMatrix::Ell(_) | AnyMatrix::Hyb(_) => ChunkPolicy::EqualRows,
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => ChunkPolicy::BlockAligned(m.br()),
        }
    }

    /// Materializes the [`ExecPlan`] for a given chunk policy on `m`.
    ///
    /// Policies that don't apply to the matrix's physical format (for
    /// example [`ChunkPolicy::NnzBalanced`] on a non-CSR matrix) fall
    /// back to equal row chunks, so a stale policy can never produce
    /// bounds that fail validation.
    pub fn build_plan(&self, m: &AnyMatrix<T>, policy: ChunkPolicy) -> ExecPlan {
        self.build_plan_sized(m, policy, default_parts())
    }

    /// [`build_plan`](Self::build_plan) with an explicit chunk count —
    /// the fan-out width is a searched dimension (see
    /// [`crate::search::search_plan`]), so callers can size a plan
    /// narrower or wider than the backend default.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` and the policy is not serial.
    pub fn build_plan_sized(
        &self,
        m: &AnyMatrix<T>,
        policy: ChunkPolicy,
        parts: usize,
    ) -> ExecPlan {
        let rows = m.rows();
        if policy == ChunkPolicy::Serial {
            return ExecPlan::serial(rows);
        }
        let threads = exec::num_threads();
        match (policy, m) {
            (ChunkPolicy::NnzBalanced, AnyMatrix::Csr(m)) => ExecPlan {
                bounds: nnz_balanced_bounds(m, parts),
                entry_bounds: None,
                threads,
                policy: ChunkPolicy::NnzBalanced,
            },
            (ChunkPolicy::MergePath, AnyMatrix::Csr(m)) => {
                let (entry_bounds, bounds) = merge_path_bounds(m, parts);
                ExecPlan {
                    bounds,
                    entry_bounds: Some(entry_bounds),
                    threads,
                    policy: ChunkPolicy::MergePath,
                }
            }
            (ChunkPolicy::EntryAligned, AnyMatrix::Coo(m)) => {
                let (entry_bounds, bounds) = coo::row_aligned_chunks(m, parts);
                ExecPlan {
                    bounds,
                    entry_bounds: Some(entry_bounds),
                    threads,
                    policy: ChunkPolicy::EntryAligned,
                }
            }
            (ChunkPolicy::BlockAligned(br), AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m)) => {
                ExecPlan {
                    bounds: bcsr::block_aligned_bounds(m, parts),
                    entry_bounds: None,
                    threads,
                    policy: ChunkPolicy::BlockAligned(br),
                }
            }
            // Policies that don't apply to the physical format fall
            // back to equal rows; record what was actually built.
            _ => ExecPlan {
                bounds: equal_row_bounds(rows, parts),
                entry_bounds: None,
                threads,
                policy: ChunkPolicy::EqualRows,
            },
        }
    }

    /// Builds the execution plan for running kernel `id` on `m`: the
    /// chunk boundaries the parallel variants would otherwise recompute
    /// on every call, frozen once.
    ///
    /// Serial variants, user-registered variants and mismatched
    /// format/matrix pairings get the trivial single-chunk plan — the
    /// planned dispatch then behaves exactly like [`run`](Self::run).
    ///
    /// When planning many variants for one matrix (e.g. during
    /// `prepare()`), use a [`Planner`] to avoid recomputing identical
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    pub fn plan_for(&self, m: &AnyMatrix<T>, id: KernelId) -> ExecPlan {
        self.build_plan(m, self.chunk_policy(m, id))
    }

    /// Runs variant `variant` with a precomputed [`ExecPlan`] — the
    /// zero-allocation steady-state dispatch.
    ///
    /// Builtin parallel variants replay the plan's frozen chunk bounds
    /// instead of re-partitioning; every other variant falls through to
    /// its plain fn pointer (identical to [`run`](Self::run)).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range, the vector lengths mismatch
    /// the matrix, or the plan's row bounds don't cover `y`.
    pub fn run_planned(
        &self,
        m: &AnyMatrix<T>,
        variant: usize,
        plan: &ExecPlan,
        x: &[T],
        y: &mut [T],
    ) {
        let id = KernelId {
            op: Op::Spmv,
            format: m.format(),
            variant,
        };
        if !self.is_builtin(id) {
            return self.run(m, variant, x, y);
        }
        let strategies = self.strategies_of(id);
        if !strategies.contains(Strategy::Parallel) {
            return self.run(m, variant, x, y);
        }
        let unroll = strategies.contains(Strategy::Unroll);
        let inner = InnerLoop::of(strategies);
        match m {
            AnyMatrix::Csr(m) if strategies.contains(Strategy::Merge) => {
                csr::run_merge_planned(m, x, y, plan)
            }
            AnyMatrix::Csr(m) => csr::run_planned(m, x, y, plan, inner),
            AnyMatrix::Coo(m) => coo::run_planned(m, x, y, plan, unroll),
            AnyMatrix::Dia(m) => dia::run_planned(m, x, y, plan, inner),
            AnyMatrix::Ell(m) => ell::run_planned(m, x, y, plan, strategies),
            AnyMatrix::Hyb(m) => hyb::run_planned(m, x, y, plan),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => bcsr::run_planned(m, x, y, plan, unroll),
        }
    }

    /// Runs SpMM variant `variant` of the matrix's own format:
    /// `Y = A * X` for `k` row-major RHS columns.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range, the matrix's format has no
    /// SpMM tier (COO, DIA, HYB), or the buffer lengths don't equal
    /// `cols * k` / `rows * k`.
    pub fn run_spmm(&self, m: &AnyMatrix<T>, variant: usize, x: &[T], y: &mut [T], k: usize) {
        match m {
            AnyMatrix::Csr(m) => (self.csr_spmm[variant].2)(m, x, y, k),
            AnyMatrix::Ell(m) => (self.ell_spmm[variant].2)(m, x, y, k),
            AnyMatrix::Bcsr2(m) => (self.bcsr2_spmm[variant].2)(m, x, y, k),
            AnyMatrix::Bcsr4(m) => (self.bcsr4_spmm[variant].2)(m, x, y, k),
            other => panic!("format {} has no SpMM kernels", other.format()),
        }
    }

    /// Runs an SpMM variant with a precomputed [`ExecPlan`] — the
    /// zero-allocation steady-state dispatch for the batched tier.
    /// Serial variants fall through to their plain fn pointer.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_spmm`](Self::run_spmm), plus malformed
    /// plan bounds.
    pub fn run_spmm_planned(
        &self,
        m: &AnyMatrix<T>,
        variant: usize,
        plan: &ExecPlan,
        x: &[T],
        y: &mut [T],
        k: usize,
    ) {
        let id = KernelId {
            op: Op::Spmm,
            format: m.format(),
            variant,
        };
        let strategies = self.strategies_of(id);
        if !strategies.contains(Strategy::Parallel) {
            return self.run_spmm(m, variant, x, y, k);
        }
        let width = strategies.tile_width();
        match m {
            AnyMatrix::Csr(m) if strategies.contains(Strategy::Merge) => {
                spmm::run_csr_merge_planned(m, x, y, k, plan, width)
            }
            AnyMatrix::Csr(m) => spmm::run_csr_planned(m, x, y, k, plan, strategies),
            AnyMatrix::Ell(m) => spmm::run_ell_planned(m, x, y, k, plan, width),
            AnyMatrix::Bcsr2(m) | AnyMatrix::Bcsr4(m) => {
                spmm::run_bcsr_planned(m, x, y, k, plan, width)
            }
            other => panic!("format {} has no SpMM kernels", other.format()),
        }
    }
}

/// Memoizes [`ExecPlan`]s by ([`ChunkPolicy`], thread count) for one
/// matrix.
///
/// A variant sweep over a 48-kernel library would otherwise recompute
/// the same equal-row bounds a dozen times; the planner computes each
/// distinct partition once and clones it afterwards. Scope a planner
/// to a single matrix — the cache key does not include the matrix
/// identity.
#[derive(Debug, Default)]
pub struct Planner {
    cache: Vec<(ChunkPolicy, usize, ExecPlan)>,
    computed: usize,
}

impl Planner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized equivalent of [`KernelLibrary::plan_for`].
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    pub fn plan_for<T: Scalar>(
        &mut self,
        lib: &KernelLibrary<T>,
        m: &AnyMatrix<T>,
        id: KernelId,
    ) -> ExecPlan {
        let policy = lib.chunk_policy(m, id);
        let threads = exec::num_threads();
        if let Some((_, _, plan)) = self
            .cache
            .iter()
            .find(|(p, t, _)| *p == policy && *t == threads)
        {
            return plan.clone();
        }
        let plan = lib.build_plan(m, policy);
        self.computed += 1;
        self.cache.push((policy, threads, plan.clone()));
        plan
    }

    /// How many plans were actually computed (cache misses).
    pub fn computed(&self) -> usize {
        self.computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::random_uniform;
    use smat_matrix::utils::max_abs_diff;

    #[test]
    fn library_is_well_formed() {
        let lib = KernelLibrary::<f64>::new();
        // The paper: "up to 24 in current SMAT system" for the four
        // basic formats; this implementation's wide-unroll, SIMD and
        // merge-path tiers push the basic-format count to 37, and the
        // HYB plus BCSR extensions bring the library total to 48.
        let basic_four: usize = Format::BASIC
            .into_iter()
            .map(|f| lib.variant_count(f))
            .sum();
        assert_eq!(basic_four, 37);
        assert_eq!(lib.total_variants(), 48);
        for f in Format::ALL {
            let infos = lib.variants(f);
            assert!(!infos.is_empty());
            assert!(
                infos[0].strategies.is_empty(),
                "variant 0 of {f} must be basic"
            );
            // Names unique per format.
            let names: std::collections::HashSet<_> = infos.iter().map(|i| i.name).collect();
            assert_eq!(names.len(), infos.len());
        }
    }

    #[test]
    fn run_dispatches_every_format_and_variant() {
        let lib = KernelLibrary::<f64>::new();
        let csr = random_uniform::<f64>(120, 100, 6, 3);
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut expect = vec![0.0; 120];
        csr.spmv(&x, &mut expect).unwrap();
        for f in Format::ALL {
            // Unlimited conversion limits: the scattered random pattern
            // would trip the BCSR fill-ratio guard under defaults.
            let any = AnyMatrix::convert_from_csr_with(
                &csr,
                f,
                &smat_matrix::ConversionLimits::unlimited(),
            )
            .unwrap();
            for v in 0..lib.variant_count(f) {
                let mut y = vec![f64::NAN; 120];
                lib.run(&any, v, &x, &mut y);
                assert!(
                    max_abs_diff(&y, &expect) < 1e-12,
                    "{} variant {v}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn kernel_id_basic() {
        let id = KernelId::basic(Format::Ell);
        assert_eq!(id.variant, 0);
        let lib = KernelLibrary::<f32>::new();
        assert_eq!(lib.info(id).name, "ell_basic");
    }

    #[test]
    fn registered_variants_dispatch_like_builtins() {
        let mut lib = KernelLibrary::<f64>::new();
        let before = lib.variant_count(Format::Csr);
        let id = lib.register_csr("csr_double", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
            for v in y.iter_mut() {
                *v *= 2.0;
            }
        });
        assert_eq!(id.format, Format::Csr);
        assert_eq!(id.variant, before);
        assert_eq!(lib.variant_count(Format::Csr), before + 1);
        assert_eq!(lib.info(id).name, "csr_double");
        let csr = random_uniform::<f64>(30, 30, 3, 5);
        let x = vec![1.0; 30];
        let mut expect = vec![0.0; 30];
        csr.spmv(&x, &mut expect).unwrap();
        let mut y = vec![0.0; 30];
        lib.run(&AnyMatrix::Csr(csr), id.variant, &x, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
        // The other formats register too.
        let id = lib.register_coo("coo_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Coo) - 1);
        let id = lib.register_dia("dia_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Dia) - 1);
        let id = lib.register_ell("ell_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Ell) - 1);
        let id = lib.register_hyb("hyb_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Hyb) - 1);
        let id = lib.register_bcsr2("bcsr2_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Bcsr2) - 1);
        let id = lib.register_bcsr4("bcsr4_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Bcsr4) - 1);
    }

    #[test]
    fn planner_memoizes_by_policy() {
        let lib = KernelLibrary::<f64>::new();
        let csr = random_uniform::<f64>(64, 64, 4, 9);
        let any = AnyMatrix::Csr(csr);
        let mut planner = Planner::new();
        let mut distinct = std::collections::HashSet::new();
        for v in 0..lib.variant_count(Format::Csr) {
            let id = KernelId {
                op: Op::Spmv,
                format: Format::Csr,
                variant: v,
            };
            let plan = planner.plan_for(&lib, &any, id);
            let direct = lib.plan_for(&any, id);
            assert_eq!(plan.bounds, direct.bounds, "variant {v}");
            distinct.insert(lib.chunk_policy(&any, id));
        }
        // One computation per distinct policy, not per variant.
        assert_eq!(planner.computed(), distinct.len());
        assert!(planner.computed() < lib.variant_count(Format::Csr));
    }

    #[test]
    fn bcsr_plans_are_block_aligned() {
        let lib = KernelLibrary::<f64>::new();
        let csr = random_uniform::<f64>(130, 130, 5, 11);
        for f in [Format::Bcsr2, Format::Bcsr4] {
            let any = AnyMatrix::convert_from_csr_with(
                &csr,
                f,
                &smat_matrix::ConversionLimits::unlimited(),
            )
            .unwrap();
            let br = if f == Format::Bcsr2 { 2 } else { 4 };
            for v in 0..lib.variant_count(f) {
                let id = KernelId {
                    op: Op::Spmv,
                    format: f,
                    variant: v,
                };
                let plan = lib.plan_for(&any, id);
                for &b in &plan.bounds {
                    assert!(
                        b % br == 0 || b == 130,
                        "{f} variant {v}: bound {b} not aligned to {br}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_variant_plans_carry_entry_bounds() {
        let lib = KernelLibrary::<f64>::new();
        let v = lib
            .variants(Format::Csr)
            .iter()
            .position(|i| i.name == "csr_merge")
            .expect("csr_merge registered");
        let m = smat_matrix::gen::power_law::<f64>(600, 150, 2.0, 7);
        let any = AnyMatrix::Csr(m);
        let id = KernelId {
            op: Op::Spmv,
            format: Format::Csr,
            variant: v,
        };
        assert_eq!(lib.chunk_policy(&any, id), ChunkPolicy::MergePath);
        let plan = lib.plan_for(&any, id);
        assert_eq!(plan.policy, ChunkPolicy::MergePath);
        let eb = plan
            .entry_bounds
            .as_ref()
            .expect("merge plans carry entry bounds");
        assert_eq!(eb.len(), plan.bounds.len());
        // Planned dispatch through the registry replays deterministically.
        let csr = match &any {
            AnyMatrix::Csr(m) => m,
            _ => unreachable!(),
        };
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut y1 = vec![f64::NAN; csr.rows()];
        let mut y2 = vec![f64::NAN; csr.rows()];
        lib.run_planned(&any, v, &plan, &x, &mut y1);
        lib.run_planned(&any, v, &plan, &x, &mut y2);
        assert!(
            y1.iter().zip(&y2).all(|(a, b)| a == b),
            "replay not bit-stable"
        );
    }

    #[test]
    fn sized_plans_honor_the_requested_width() {
        let lib = KernelLibrary::<f64>::new();
        let m = random_uniform::<f64>(256, 256, 8, 13);
        let any = AnyMatrix::Csr(m);
        for parts in [1usize, 2, 4] {
            for policy in [
                ChunkPolicy::EqualRows,
                ChunkPolicy::NnzBalanced,
                ChunkPolicy::MergePath,
            ] {
                let plan = lib.build_plan_sized(&any, policy, parts);
                assert!(plan.chunks() <= parts, "{policy:?} @ {parts}");
                assert!(plan.chunks() >= 1);
            }
        }
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let lib = KernelLibrary::<f32>::new();
        assert!(format!("{lib:?}").contains("csr_variants"));
    }

    #[test]
    fn spmm_library_is_well_formed() {
        let lib = KernelLibrary::<f64>::new();
        assert_eq!(lib.total_spmm_variants(), 29);
        for f in [Format::Csr, Format::Ell, Format::Bcsr2, Format::Bcsr4] {
            let infos = lib.spmm_variants(f);
            assert!(!infos.is_empty());
            assert!(
                infos[0].strategies.is_empty(),
                "spmm variant 0 of {f} must be basic"
            );
            let names: std::collections::HashSet<_> = infos.iter().map(|i| i.name).collect();
            assert_eq!(names.len(), infos.len());
            let sets: std::collections::HashSet<_> = infos.iter().map(|i| i.strategies).collect();
            assert_eq!(sets.len(), infos.len(), "{f} spmm strategy sets not unique");
        }
        for f in [Format::Coo, Format::Dia, Format::Hyb] {
            assert_eq!(lib.spmm_variant_count(f), 0);
            assert!(lib.spmm_variants(f).is_empty());
        }
        let id = KernelId::spmm_basic(Format::Csr);
        assert_eq!(id.op, Op::Spmm);
        assert_eq!(lib.info(id).name, "csr_spmm_basic");
    }

    #[test]
    fn run_spmm_matches_per_column_spmv() {
        let lib = KernelLibrary::<f64>::new();
        let csr = random_uniform::<f64>(90, 70, 5, 3);
        let k = 5usize;
        let x: Vec<f64> = (0..70 * k)
            .map(|i| 0.25 * ((i % 11) as f64) - 0.5)
            .collect();
        for f in [Format::Csr, Format::Ell, Format::Bcsr2, Format::Bcsr4] {
            let any = AnyMatrix::convert_from_csr_with(
                &csr,
                f,
                &smat_matrix::ConversionLimits::unlimited(),
            )
            .unwrap();
            let mut expect = vec![0.0; 90 * k];
            for j in 0..k {
                let xj: Vec<f64> = (0..70).map(|c| x[c * k + j]).collect();
                let mut yj = vec![0.0; 90];
                lib.run(&any, 0, &xj, &mut yj);
                for r in 0..90 {
                    expect[r * k + j] = yj[r];
                }
            }
            for v in 0..lib.spmm_variant_count(f) {
                let mut y = vec![f64::NAN; 90 * k];
                lib.run_spmm(&any, v, &x, &mut y, k);
                assert!(
                    max_abs_diff(&y, &expect) < 1e-12,
                    "{f} spmm variant {v} diverges"
                );
            }
        }
    }

    #[test]
    fn spmm_planned_dispatch_replays_bitwise() {
        let lib = KernelLibrary::<f64>::new();
        let m = smat_matrix::gen::power_law::<f64>(400, 120, 2.0, 7);
        let any = AnyMatrix::Csr(m);
        let k = 6usize;
        let x: Vec<f64> = (0..400 * k).map(|i| (i as f64 * 0.13).sin()).collect();
        for v in 0..lib.spmm_variant_count(Format::Csr) {
            let id = KernelId {
                op: Op::Spmm,
                format: Format::Csr,
                variant: v,
            };
            let plan = lib.plan_for(&any, id);
            let mut y1 = vec![f64::NAN; 400 * k];
            let mut y2 = vec![f64::NAN; 400 * k];
            lib.run_spmm_planned(&any, v, &plan, &x, &mut y1, k);
            lib.run_spmm_planned(&any, v, &plan, &x, &mut y2, k);
            assert!(
                y1.iter().zip(&y2).all(|(a, b)| a == b),
                "spmm variant {v} replay not bit-stable"
            );
        }
    }
}

//! The kernel library: every SpMV implementation variant for every
//! format, addressable by `(Format, variant index)`.
//!
//! This is the "large kernel library" of the paper's Figure 4. The
//! offline kernel search ([`crate::search`]) picks one variant per format
//! for the host architecture; the runtime then dispatches through
//! [`KernelLibrary::run`].

use crate::partition::{default_parts, equal_row_bounds, nnz_balanced_bounds};
use crate::plan::ExecPlan;
use crate::strategy::{Strategy, StrategySet};
use crate::{coo, csr, dia, ell, exec, hyb};
use serde::{Deserialize, Serialize};
use smat_matrix::{AnyMatrix, Coo, Csr, Dia, Ell, Format, Hyb, Scalar};

/// Signature of every SpMV kernel: `run(matrix, x, y)` computing
/// `y = A * x`.
pub type KernelFn<T, M> = fn(&M, &[T], &mut [T]);

/// One registered kernel: name, strategy set and entry point.
pub type KernelEntry<T, M> = (&'static str, StrategySet, KernelFn<T, M>);

/// Identifies one kernel implementation: a format plus the index of a
/// variant within that format's library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelId {
    /// Storage format the kernel operates on.
    pub format: Format,
    /// Index into [`KernelLibrary::variants`] for that format.
    pub variant: usize,
}

impl KernelId {
    /// The basic (unoptimized) kernel of a format — always variant 0.
    pub fn basic(format: Format) -> Self {
        KernelId { format, variant: 0 }
    }
}

/// Metadata describing one kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelInfo {
    /// Stable human-readable name (e.g. `"csr_parallel_balanced"`).
    pub name: &'static str,
    /// Optimization strategies the variant applies.
    pub strategies: StrategySet,
}

/// The complete kernel library for scalar type `T`.
///
/// # Examples
///
/// ```
/// use smat_kernels::KernelLibrary;
/// use smat_matrix::{AnyMatrix, Csr, Format};
///
/// let lib = KernelLibrary::<f64>::new();
/// assert!(lib.variant_count(Format::Csr) >= 4);
///
/// let a = Csr::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)])?;
/// let any = AnyMatrix::Csr(a);
/// let mut y = [0.0; 2];
/// lib.run(&any, 0, &[1.0, 1.0], &mut y);
/// assert_eq!(y, [3.0, 4.0]);
/// # Ok::<(), smat_matrix::MatrixError>(())
/// ```
pub struct KernelLibrary<T: Scalar> {
    csr: Vec<KernelEntry<T, Csr<T>>>,
    coo: Vec<KernelEntry<T, Coo<T>>>,
    dia: Vec<KernelEntry<T, Dia<T>>>,
    ell: Vec<KernelEntry<T, Ell<T>>>,
    hyb: Vec<KernelEntry<T, Hyb<T>>>,
    /// Variant counts at construction. Only builtin variants have
    /// planned execution paths; user-registered ones (appended past
    /// these counts) always dispatch through their raw fn pointer.
    builtin: [usize; 5],
}

impl<T: Scalar> std::fmt::Debug for KernelLibrary<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelLibrary")
            .field("csr_variants", &self.csr.len())
            .field("coo_variants", &self.coo.len())
            .field("dia_variants", &self.dia.len())
            .field("ell_variants", &self.ell.len())
            .field("hyb_variants", &self.hyb.len())
            .finish()
    }
}

impl<T: Scalar> Default for KernelLibrary<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> KernelLibrary<T> {
    /// Builds the library with every registered variant.
    pub fn new() -> Self {
        let (csr, coo, dia, ell, hyb) = (
            csr::kernels(),
            coo::kernels(),
            dia::kernels(),
            ell::kernels(),
            hyb::kernels(),
        );
        let builtin = [csr.len(), coo.len(), dia.len(), ell.len(), hyb.len()];
        Self {
            csr,
            coo,
            dia,
            ell,
            hyb,
            builtin,
        }
    }

    /// Whether `id` names a builtin variant (one with a planned
    /// execution path), as opposed to a user-registered extension.
    fn is_builtin(&self, id: KernelId) -> bool {
        let slot = match id.format {
            Format::Csr => 0,
            Format::Coo => 1,
            Format::Dia => 2,
            Format::Ell => 3,
            Format::Hyb => 4,
        };
        id.variant < self.builtin[slot]
    }

    /// Strategy set of one variant without materializing the
    /// [`variants`](Self::variants) metadata `Vec` — the dispatch path
    /// reads this per call, and steady-state dispatch must not allocate.
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    fn strategies_of(&self, id: KernelId) -> StrategySet {
        match id.format {
            Format::Csr => self.csr[id.variant].1,
            Format::Coo => self.coo[id.variant].1,
            Format::Dia => self.dia[id.variant].1,
            Format::Ell => self.ell[id.variant].1,
            Format::Hyb => self.hyb[id.variant].1,
        }
    }

    /// Number of implementation variants for `format`.
    pub fn variant_count(&self, format: Format) -> usize {
        match format {
            Format::Csr => self.csr.len(),
            Format::Coo => self.coo.len(),
            Format::Dia => self.dia.len(),
            Format::Ell => self.ell.len(),
            Format::Hyb => self.hyb.len(),
        }
    }

    /// Total number of implementations across all formats (the paper
    /// reports "up to 24 in current SMAT system").
    pub fn total_variants(&self) -> usize {
        Format::ALL.into_iter().map(|f| self.variant_count(f)).sum()
    }

    /// Metadata for every variant of `format`, indexed by variant id.
    pub fn variants(&self, format: Format) -> Vec<KernelInfo> {
        macro_rules! infos {
            ($v:expr) => {
                $v.iter()
                    .map(|&(name, strategies, _)| KernelInfo { name, strategies })
                    .collect()
            };
        }
        match format {
            Format::Csr => infos!(self.csr),
            Format::Coo => infos!(self.coo),
            Format::Dia => infos!(self.dia),
            Format::Ell => infos!(self.ell),
            Format::Hyb => infos!(self.hyb),
        }
    }

    /// Metadata for a specific kernel.
    ///
    /// # Panics
    ///
    /// Panics if the variant index is out of range.
    pub fn info(&self, id: KernelId) -> KernelInfo {
        self.variants(id.format)[id.variant]
    }

    /// Registers an additional CSR kernel variant, returning its id.
    ///
    /// Extension point for the paper's "add new kernels" claim and for
    /// fault-injection tests; the new variant participates in the
    /// guarded search like any built-in one.
    pub fn register_csr(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Csr<T>>,
    ) -> KernelId {
        self.csr.push((name, strategies, f));
        KernelId {
            format: Format::Csr,
            variant: self.csr.len() - 1,
        }
    }

    /// Registers an additional COO kernel variant, returning its id.
    pub fn register_coo(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Coo<T>>,
    ) -> KernelId {
        self.coo.push((name, strategies, f));
        KernelId {
            format: Format::Coo,
            variant: self.coo.len() - 1,
        }
    }

    /// Registers an additional DIA kernel variant, returning its id.
    pub fn register_dia(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Dia<T>>,
    ) -> KernelId {
        self.dia.push((name, strategies, f));
        KernelId {
            format: Format::Dia,
            variant: self.dia.len() - 1,
        }
    }

    /// Registers an additional ELL kernel variant, returning its id.
    pub fn register_ell(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Ell<T>>,
    ) -> KernelId {
        self.ell.push((name, strategies, f));
        KernelId {
            format: Format::Ell,
            variant: self.ell.len() - 1,
        }
    }

    /// Registers an additional HYB kernel variant, returning its id.
    pub fn register_hyb(
        &mut self,
        name: &'static str,
        strategies: StrategySet,
        f: KernelFn<T, Hyb<T>>,
    ) -> KernelId {
        self.hyb.push((name, strategies, f));
        KernelId {
            format: Format::Hyb,
            variant: self.hyb.len() - 1,
        }
    }

    /// Runs variant `variant` of the matrix's own format: `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range for the matrix's format or if
    /// the vector lengths do not match the matrix dimensions.
    pub fn run(&self, m: &AnyMatrix<T>, variant: usize, x: &[T], y: &mut [T]) {
        match m {
            AnyMatrix::Csr(m) => (self.csr[variant].2)(m, x, y),
            AnyMatrix::Coo(m) => (self.coo[variant].2)(m, x, y),
            AnyMatrix::Dia(m) => (self.dia[variant].2)(m, x, y),
            AnyMatrix::Ell(m) => (self.ell[variant].2)(m, x, y),
            AnyMatrix::Hyb(m) => (self.hyb[variant].2)(m, x, y),
        }
    }

    /// Runs a CSR kernel directly (avoids wrapping in [`AnyMatrix`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variant or mismatched vector lengths.
    pub fn run_csr(&self, m: &Csr<T>, variant: usize, x: &[T], y: &mut [T]) {
        (self.csr[variant].2)(m, x, y)
    }

    /// Builds the execution plan for running kernel `id` on `m`: the
    /// chunk boundaries the parallel variants would otherwise recompute
    /// on every call, frozen once.
    ///
    /// Serial variants, user-registered variants and mismatched
    /// format/matrix pairings get the trivial single-chunk plan — the
    /// planned dispatch then behaves exactly like [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `id.variant` is out of range for `id.format`.
    pub fn plan_for(&self, m: &AnyMatrix<T>, id: KernelId) -> ExecPlan {
        let rows = m.rows();
        if !self.is_builtin(id)
            || !self.strategies_of(id).contains(Strategy::Parallel)
            || id.format != m.format()
        {
            return ExecPlan::serial(rows);
        }
        let threads = exec::num_threads();
        let parts = default_parts();
        match m {
            AnyMatrix::Csr(m) => {
                let bounds = if self.strategies_of(id).contains(Strategy::Balance) {
                    nnz_balanced_bounds(m, parts)
                } else {
                    equal_row_bounds(rows, parts)
                };
                ExecPlan {
                    bounds,
                    entry_bounds: None,
                    threads,
                }
            }
            AnyMatrix::Coo(m) => {
                let (entry_bounds, bounds) = coo::row_aligned_chunks(m, parts);
                ExecPlan {
                    bounds,
                    entry_bounds: Some(entry_bounds),
                    threads,
                }
            }
            AnyMatrix::Dia(_) | AnyMatrix::Ell(_) | AnyMatrix::Hyb(_) => ExecPlan {
                bounds: equal_row_bounds(rows, parts),
                entry_bounds: None,
                threads,
            },
        }
    }

    /// Runs variant `variant` with a precomputed [`ExecPlan`] — the
    /// zero-allocation steady-state dispatch.
    ///
    /// Builtin parallel variants replay the plan's frozen chunk bounds
    /// instead of re-partitioning; every other variant falls through to
    /// its plain fn pointer (identical to [`run`](Self::run)).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range, the vector lengths mismatch
    /// the matrix, or the plan's row bounds don't cover `y`.
    pub fn run_planned(
        &self,
        m: &AnyMatrix<T>,
        variant: usize,
        plan: &ExecPlan,
        x: &[T],
        y: &mut [T],
    ) {
        let id = KernelId {
            format: m.format(),
            variant,
        };
        if !self.is_builtin(id) {
            return self.run(m, variant, x, y);
        }
        let strategies = self.strategies_of(id);
        if !strategies.contains(Strategy::Parallel) {
            return self.run(m, variant, x, y);
        }
        let unroll = strategies.contains(Strategy::Unroll);
        match m {
            AnyMatrix::Csr(m) => csr::run_planned(m, x, y, plan, unroll),
            AnyMatrix::Coo(m) => coo::run_planned(m, x, y, plan, unroll),
            AnyMatrix::Dia(m) => dia::run_planned(m, x, y, plan, unroll),
            AnyMatrix::Ell(m) => ell::run_planned(m, x, y, plan, strategies),
            AnyMatrix::Hyb(m) => hyb::run_planned(m, x, y, plan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::random_uniform;
    use smat_matrix::utils::max_abs_diff;

    #[test]
    fn library_is_well_formed() {
        let lib = KernelLibrary::<f64>::new();
        // The paper: "up to 24 in current SMAT system" for the four
        // basic formats; the HYB extension adds three more.
        let basic_four: usize = Format::BASIC
            .into_iter()
            .map(|f| lib.variant_count(f))
            .sum();
        assert_eq!(basic_four, 24);
        assert_eq!(lib.total_variants(), 27);
        for f in Format::ALL {
            let infos = lib.variants(f);
            assert!(!infos.is_empty());
            assert!(
                infos[0].strategies.is_empty(),
                "variant 0 of {f} must be basic"
            );
            // Names unique per format.
            let names: std::collections::HashSet<_> = infos.iter().map(|i| i.name).collect();
            assert_eq!(names.len(), infos.len());
        }
    }

    #[test]
    fn run_dispatches_every_format_and_variant() {
        let lib = KernelLibrary::<f64>::new();
        let csr = random_uniform::<f64>(120, 100, 6, 3);
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut expect = vec![0.0; 120];
        csr.spmv(&x, &mut expect).unwrap();
        for f in Format::ALL {
            let any = AnyMatrix::convert_from_csr(&csr, f).unwrap();
            for v in 0..lib.variant_count(f) {
                let mut y = vec![f64::NAN; 120];
                lib.run(&any, v, &x, &mut y);
                assert!(
                    max_abs_diff(&y, &expect) < 1e-12,
                    "{} variant {v}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn kernel_id_basic() {
        let id = KernelId::basic(Format::Ell);
        assert_eq!(id.variant, 0);
        let lib = KernelLibrary::<f32>::new();
        assert_eq!(lib.info(id).name, "ell_basic");
    }

    #[test]
    fn registered_variants_dispatch_like_builtins() {
        let mut lib = KernelLibrary::<f64>::new();
        let before = lib.variant_count(Format::Csr);
        let id = lib.register_csr("csr_double", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
            for v in y.iter_mut() {
                *v *= 2.0;
            }
        });
        assert_eq!(id.format, Format::Csr);
        assert_eq!(id.variant, before);
        assert_eq!(lib.variant_count(Format::Csr), before + 1);
        assert_eq!(lib.info(id).name, "csr_double");
        let csr = random_uniform::<f64>(30, 30, 3, 5);
        let x = vec![1.0; 30];
        let mut expect = vec![0.0; 30];
        csr.spmv(&x, &mut expect).unwrap();
        let mut y = vec![0.0; 30];
        lib.run(&AnyMatrix::Csr(csr), id.variant, &x, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
        // The other formats register too.
        let id = lib.register_coo("coo_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Coo) - 1);
        let id = lib.register_dia("dia_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Dia) - 1);
        let id = lib.register_ell("ell_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Ell) - 1);
        let id = lib.register_hyb("hyb_x", StrategySet::default(), |m, x, y| {
            m.spmv(x, y).expect("sized vectors");
        });
        assert_eq!(id.variant, lib.variant_count(Format::Hyb) - 1);
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let lib = KernelLibrary::<f32>::new();
        assert!(format!("{lib:?}").contains("csr_variants"));
    }
}

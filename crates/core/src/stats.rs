//! Accuracy and overhead analysis — the machinery behind the paper's
//! Table 3 and the §7.3 accuracy numbers.

use crate::cache::CacheStats;
use crate::health::HealthReport;
use crate::runtime::{DecisionPath, Smat, TunedSpmv};
use crate::train::label_best_format;
use smat_kernels::timing::{gflops, reps_for_budget, time_median};
use smat_matrix::{Csr, Format, Scalar};
use std::time::{Duration, Instant};

/// One-stop operability snapshot of a running [`Smat`] engine: the
/// decision-cache counters plus the runtime-health report (execution
/// faults, breaker state, pool degradation). Obtained from
/// [`Smat::stats`].
#[derive(Debug, Clone)]
pub struct SmatStats {
    /// Decision-cache counters (hits, misses, evictions, recoveries).
    pub cache: CacheStats,
    /// Runtime-health counters and the current quarantine set.
    pub health: HealthReport,
}

impl SmatStats {
    /// The health half of the snapshot (convenience for callers that
    /// only monitor fault containment).
    pub fn health_report(&self) -> &HealthReport {
        &self.health
    }
}

/// One row of the Table 3 analysis for a single matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRow {
    /// Matrix name.
    pub name: String,
    /// Format the model predicted confidently, if any ("Model Prediction
    /// Format"; `None` renders as "confidence < TH").
    pub model_prediction: Option<Format>,
    /// Formats benchmarked by the fallback ("Execution"; empty when the
    /// prediction was trusted).
    pub executed: Vec<Format>,
    /// The format SMAT finally used ("SMAT Prediction Format").
    pub smat_format: Format,
    /// The exhaustively measured best format ("Actual Best Format").
    pub best_format: Format,
    /// Whether SMAT's choice matches the exhaustive best ("Model
    /// Accuracy" R/W).
    pub correct: bool,
    /// Tuning overhead in multiples of one basic CSR SpMV ("SMAT
    /// Overhead").
    pub overhead: f64,
    /// Throughput of the tuned SpMV.
    pub smat_gflops: f64,
    /// Exhaustive per-format throughputs, indexed by [`Format::index`].
    pub format_gflops: [f64; Format::COUNT],
}

/// Measures the time of one basic (serial, unoptimized) CSR SpMV — the
/// denominator of the paper's overhead metric.
pub fn basic_csr_time<T: Scalar>(m: &Csr<T>, budget: Duration) -> Duration {
    let x = vec![T::ONE; m.cols()];
    let mut y = vec![T::ZERO; m.rows()];
    let t0 = Instant::now();
    smat_kernels::csr::basic(m, &x, &mut y);
    let one = t0.elapsed();
    let reps = reps_for_budget(one, budget, 3, 32);
    time_median(|| smat_kernels::csr::basic(m, &x, &mut y), 0, reps)
}

/// Measures the tuned SpMV's throughput.
pub fn tuned_gflops<T: Scalar>(engine: &Smat<T>, tuned: &TunedSpmv<T>, budget: Duration) -> f64 {
    let m = tuned.matrix();
    let x = vec![T::ONE; m.cols()];
    let mut y = vec![T::ZERO; m.rows()];
    let t0 = Instant::now();
    engine.spmv(tuned, &x, &mut y).expect("sized vectors");
    let one = t0.elapsed();
    let reps = reps_for_budget(one, budget, 3, 32);
    let med = time_median(
        || {
            engine.spmv(tuned, &x, &mut y).expect("sized vectors");
        },
        0,
        reps,
    );
    gflops(m.nnz(), med)
}

/// Runs the full Table 3 analysis for one matrix: SMAT's decision path,
/// the exhaustive ground truth, and the overhead ratio.
pub fn analyze<T: Scalar>(
    engine: &Smat<T>,
    name: &str,
    m: &Csr<T>,
    budget: Duration,
) -> AnalysisRow {
    let tuned = engine.prepare(m);
    // Unwrap a cache replay to the decision that populated the entry,
    // so a Table 3 row describes how the choice was made, not how it
    // was served.
    let (model_prediction, executed) = match tuned.decision().source() {
        DecisionPath::Predicted { .. } => (Some(tuned.format()), Vec::new()),
        DecisionPath::Measured { candidates, .. } => {
            (None, candidates.iter().map(|&(f, _)| f).collect())
        }
        // Degraded: nothing was predicted and nothing was successfully
        // measured; the row reports CSR with no executed candidates.
        DecisionPath::Degraded { .. } => (None, Vec::new()),
        DecisionPath::Cached { .. } => unreachable!("source() unwraps Cached"),
    };
    let (best_format, format_gflops) =
        label_best_format(engine.library(), &engine.model().kernel_choice, m, budget);
    let base = basic_csr_time(m, budget);
    let overhead = if base.is_zero() {
        0.0
    } else {
        tuned.prepare_time().as_secs_f64() / base.as_secs_f64()
    };
    AnalysisRow {
        name: name.to_string(),
        model_prediction,
        executed,
        smat_format: tuned.format(),
        best_format,
        correct: tuned.format() == best_format,
        overhead,
        smat_gflops: tuned_gflops(engine, &tuned, budget),
        format_gflops,
    }
}

/// Overall prediction accuracy over a set of matrices (the §7.3 metric:
/// fraction of matrices where SMAT lands on the exhaustive best format).
pub fn accuracy<T: Scalar>(
    engine: &Smat<T>,
    matrices: &[(String, &Csr<T>)],
    budget: Duration,
) -> (f64, Vec<AnalysisRow>) {
    let rows: Vec<AnalysisRow> = matrices
        .iter()
        .map(|(name, m)| analyze(engine, name, m, budget))
        .collect();
    let correct = rows.iter().filter(|r| r.correct).count();
    let acc = if rows.is_empty() {
        1.0
    } else {
        correct as f64 / rows.len() as f64
    };
    (acc, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmatConfig;
    use crate::train::Trainer;
    use smat_matrix::gen::{power_law, random_uniform, tridiagonal};

    fn engine() -> Smat<f64> {
        let trainer = Trainer::new(SmatConfig::fast());
        let a = tridiagonal::<f64>(500);
        let b = random_uniform::<f64>(400, 400, 8, 1);
        let c = power_law::<f64>(400, 80, 2.0, 2);
        let out = trainer.train(&[&a, &b, &c, &a, &b, &c]).unwrap();
        Smat::with_config(out.model, SmatConfig::fast()).unwrap()
    }

    #[test]
    fn analysis_row_is_internally_consistent() {
        let e = engine();
        let m = tridiagonal::<f64>(800);
        let row = analyze(&e, "tri", &m, Duration::from_micros(300));
        assert_eq!(row.name, "tri");
        assert_eq!(row.correct, row.smat_format == row.best_format);
        assert!(row.overhead > 0.0);
        assert!(row.smat_gflops > 0.0);
        assert!(row.format_gflops[row.best_format.index()] > 0.0);
        match row.model_prediction {
            Some(f) => assert_eq!(f, row.smat_format),
            None => assert!(!row.executed.is_empty()),
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let e = engine();
        let m1 = tridiagonal::<f64>(600);
        let m2 = random_uniform::<f64>(500, 500, 6, 7);
        let set = vec![("m1".to_string(), &m1), ("m2".to_string(), &m2)];
        let (acc, rows) = accuracy(&e, &set, Duration::from_micros(300));
        assert_eq!(rows.len(), 2);
        let manual = rows.iter().filter(|r| r.correct).count() as f64 / 2.0;
        assert_eq!(acc, manual);
    }

    #[test]
    fn basic_csr_time_is_positive() {
        let m = tridiagonal::<f64>(1000);
        assert!(basic_csr_time(&m, Duration::from_micros(200)) > Duration::ZERO);
    }
}

//! The persisted installation phase.
//!
//! The paper's offline stage runs the §5.2 kernel search once per
//! machine — the scoreboard's verdict depends on the hardware, not on
//! any particular input matrix. This module serializes that verdict
//! (the per-format [`PerfTable`]s and the selected [`KernelChoice`]) to
//! a JSON file so the search cost is paid at *installation* rather than
//! once per process: [`Installation::load_or_run`] reloads the file
//! when present and regenerates + saves it when not, and
//! [`crate::Smat`] applies it automatically when
//! [`crate::SmatConfig::install_path`] is set.

use crate::config::SmatConfig;
use crate::error::Result;
use crate::train::Trainer;
use serde::{Deserialize, Serialize};
use smat_kernels::{KernelChoice, KernelLibrary, PerfTable};
use smat_matrix::Scalar;
use std::path::Path;

/// The machine-specific artifact of the offline kernel search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Installation {
    /// Precision the search ran under ("single" or "double"); kernels
    /// behave differently per precision, so tables are not shared.
    pub precision: String,
    /// Probe-matrix dimension the search used.
    pub probe_dim: usize,
    /// The selected kernel variant per format.
    pub kernel_choice: KernelChoice,
    /// The full performance-record tables behind the selection, kept
    /// for diagnostics (the CLI's `install` report).
    pub tables: Vec<PerfTable>,
}

impl Installation {
    /// Runs the kernel search now, without touching disk.
    pub fn run<T: Scalar>(config: &SmatConfig) -> Self {
        let lib = KernelLibrary::<T>::new();
        let trainer = Trainer::new(config.clone());
        let (kernel_choice, tables) = trainer.search_kernels(&lib);
        Installation {
            precision: T::PRECISION_NAME.to_string(),
            probe_dim: config.probe_dim,
            kernel_choice,
            tables,
        }
    }

    /// Saves the installation as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SmatError::Persist`] on I/O or serialization
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        smat_learn::save_json(self, path)?;
        Ok(())
    }

    /// Loads a previously saved installation.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SmatError::Persist`] on I/O or deserialization
    /// failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Ok(smat_learn::load_json(path)?)
    }

    /// Loads the installation from `path` if it exists and matches this
    /// precision; otherwise runs the search and persists the result.
    /// The boolean is `true` when the table came from disk.
    ///
    /// A stale file — wrong precision, or unreadable — is regenerated
    /// rather than trusted.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SmatError::Persist`] only when *writing* a
    /// fresh installation fails; unreadable existing files fall back to
    /// regeneration.
    pub fn load_or_run<T: Scalar>(
        path: impl AsRef<Path>,
        config: &SmatConfig,
    ) -> Result<(Self, bool)> {
        let path = path.as_ref();
        if path.exists() {
            if let Ok(installed) = Self::load(path) {
                if installed.precision == T::PRECISION_NAME {
                    return Ok((installed, true));
                }
            }
        }
        let fresh = Self::run::<T>(config);
        fresh.save(path)?;
        Ok((fresh, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::Format;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("smat_install_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trip() {
        let install = Installation::run::<f64>(&SmatConfig::fast());
        assert_eq!(install.precision, "double");
        assert_eq!(install.tables.len(), Format::COUNT);
        let path = tmp("roundtrip.json");
        install.save(&path).unwrap();
        let back = Installation::load(&path).unwrap();
        assert_eq!(back, install);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_or_run_reuses_the_file() {
        let path = tmp("reuse.json");
        std::fs::remove_file(&path).ok();
        let cfg = SmatConfig::fast();
        let (first, from_disk) = Installation::load_or_run::<f64>(&path, &cfg).unwrap();
        assert!(!from_disk, "first call must run the search");
        let (second, from_disk) = Installation::load_or_run::<f64>(&path, &cfg).unwrap();
        assert!(from_disk, "second call must reload");
        assert_eq!(second.kernel_choice, first.kernel_choice);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn precision_mismatch_regenerates() {
        let path = tmp("precision.json");
        std::fs::remove_file(&path).ok();
        let cfg = SmatConfig::fast();
        let (_, _) = Installation::load_or_run::<f64>(&path, &cfg).unwrap();
        // A single-precision engine must not adopt double-precision tables.
        let (single, from_disk) = Installation::load_or_run::<f32>(&path, &cfg).unwrap();
        assert!(!from_disk);
        assert_eq!(single.precision, "single");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_regenerates() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{ not json").unwrap();
        let (fresh, from_disk) =
            Installation::load_or_run::<f64>(&path, &SmatConfig::fast()).unwrap();
        assert!(!from_disk);
        assert_eq!(fresh.precision, "double");
        // The bad file was replaced with a loadable one.
        assert!(Installation::load(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }
}

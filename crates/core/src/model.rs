//! The trained SMAT model: tailored rule groups plus the kernel choice —
//! everything the off-line stage of Figure 4 produces and the runtime
//! consumes.

use crate::config::GROUP_ORDER;
use crate::error::Result;
use serde::{Deserialize, Serialize};
use smat_features::FeatureVector;
use smat_kernels::KernelChoice;
use smat_learn::{GroupDecision, RuleGroups, RuleSet};
use smat_matrix::Format;
use std::path::Path;

/// Summary statistics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Number of training matrices.
    pub train_size: usize,
    /// Ruleset accuracy on the training set, before tailoring.
    pub train_accuracy: f64,
    /// Ruleset accuracy of the tailored prefix on the training set.
    pub tailored_accuracy: f64,
    /// Rules extracted from the tree.
    pub rules_total: usize,
    /// Rules kept after tailoring.
    pub rules_kept: usize,
    /// Label distribution of the training set, indexed by
    /// [`Format::index`].
    pub label_counts: [usize; Format::COUNT],
}

/// A complete trained model (per numerical precision).
///
/// Serializable to JSON so the expensive off-line stage runs once per
/// machine and is then reused — the paper's "reusability" property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// `"single"` or `"double"` — the paper trains one model per
    /// precision.
    pub precision: String,
    /// The full ordered ruleset (kept for inspection and ablations).
    pub ruleset: RuleSet,
    /// Tailored rules grouped in [`GROUP_ORDER`] — what the runtime
    /// consults.
    pub groups: RuleGroups,
    /// Kernel variant selected per format by the scoreboard search.
    pub kernel_choice: KernelChoice,
    /// Training statistics.
    pub stats: TrainStats,
}

impl TrainedModel {
    /// Predicts the best format for a feature vector via the grouped
    /// rules (no early-exit bookkeeping — the runtime handles lazy `R`).
    pub fn predict(&self, features: &FeatureVector) -> FormatDecision {
        let d = self.groups.decide(&features.as_array());
        FormatDecision::from_group_decision(d)
    }

    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SmatError::Persist`] on I/O or serialization
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        smat_learn::save_json(self, path)?;
        Ok(())
    }

    /// Loads a model saved by [`TrainedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::SmatError::Persist`] on I/O or deserialization
    /// failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Ok(smat_learn::load_json(path)?)
    }
}

/// A format prediction with its confidence factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatDecision {
    /// Predicted storage format.
    pub format: Format,
    /// The matched group's confidence factor (0 when the default class
    /// answered).
    pub confidence: f64,
    /// Whether a rule matched (as opposed to the default class).
    pub matched: bool,
}

impl FormatDecision {
    /// Converts a learner [`GroupDecision`] (class indices) into format
    /// terms.
    pub fn from_group_decision(d: GroupDecision) -> Self {
        FormatDecision {
            format: Format::from_index(d.class),
            confidence: d.confidence,
            matched: d.matched,
        }
    }
}

/// Class names for the learner's datasets, in [`Format::index`] order.
pub fn class_names() -> Vec<String> {
    Format::ALL.iter().map(|f| f.name().to_string()).collect()
}

/// The class-index consultation order corresponding to [`GROUP_ORDER`].
pub fn group_class_order() -> Vec<usize> {
    GROUP_ORDER.iter().map(|f| f.index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_learn::{Condition, Op, Rule};

    fn tiny_model() -> TrainedModel {
        // One hand-built rule: Ndiags <= 10 -> DIA.
        let attrs: Vec<String> = smat_features::ATTRIBUTE_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rule = Rule {
            conditions: vec![Condition {
                attr: 6, // Ndiags
                op: Op::Le,
                threshold: 10.0,
            }],
            class: Format::Dia.index(),
            covered: 10,
            correct: 9,
        };
        let ruleset = RuleSet {
            rules: vec![rule],
            default_class: Format::Csr.index(),
            attributes: attrs,
            classes: class_names(),
        };
        let groups = RuleGroups::from_ruleset(&ruleset, &group_class_order());
        TrainedModel {
            precision: "double".into(),
            ruleset,
            groups,
            kernel_choice: KernelChoice::basic(),
            stats: TrainStats {
                train_size: 10,
                train_accuracy: 0.9,
                tailored_accuracy: 0.9,
                rules_total: 1,
                rules_kept: 1,
                label_counts: [10, 0, 0, 0, 0, 0, 0],
            },
        }
    }

    fn features(ndiags: f64) -> FeatureVector {
        FeatureVector {
            m: 100.0,
            n: 100.0,
            nnz: 500.0,
            aver_rd: 5.0,
            max_rd: 5.0,
            var_rd: 0.0,
            ndiags,
            ntdiags_ratio: 1.0,
            er_dia: 1.0,
            er_ell: 1.0,
            r: smat_features::R_NOT_SCALE_FREE,
        }
    }

    #[test]
    fn predict_follows_rules_and_default() {
        let m = tiny_model();
        let d = m.predict(&features(5.0));
        assert_eq!(d.format, Format::Dia);
        assert!(d.matched);
        assert!((d.confidence - 0.9).abs() < 1e-12);

        let d = m.predict(&features(50.0));
        assert_eq!(d.format, Format::Csr);
        assert!(!d.matched);
        assert_eq!(d.confidence, 0.0);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("smat_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let m = tiny_model();
        m.save(&path).unwrap();
        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn class_order_matches_paper_plus_extension() {
        assert_eq!(group_class_order(), vec![0, 1, 4, 6, 5, 2, 3]);
        assert_eq!(
            class_names(),
            vec!["DIA", "ELL", "CSR", "COO", "HYB", "BCSR2", "BCSR4"]
        );
    }
}

//! Runtime health: execution-time fault containment state.
//!
//! PRs 2–3 contained faults at *tuning* time; this module contains them
//! at *serving* time. It tracks three cooperating mechanisms:
//!
//! 1. **Incident log** — every contained execution fault (a kernel
//!    panic caught by [`crate::Smat::spmv`]'s containment boundary, or
//!    a non-finite product flagged by output screening) is recorded as
//!    an [`ExecIncident`] in a bounded ring.
//! 2. **Per-variant circuit breakers** — a `Closed → Open → HalfOpen`
//!    state machine keyed by [`KernelId`]. After
//!    [`crate::SmatConfig::breaker_threshold`] incidents a variant is
//!    *quarantined*: excluded from candidate sets like a
//!    `CandidateFailed` scoreboard row, its cached decisions evicted on
//!    hit. A call-counted exponential backoff paces the half-open
//!    re-probe that can readmit it.
//! 3. **Pool degradation ladder** — repeated pool dispatch faults
//!    demote the engine to serial plans; the same backoff policy paces
//!    pool re-probes.
//!
//! The happy path is lock-free and allocation-free: one relaxed
//! counter increment per call plus one load of the attention gate.
//! Breaker locks are only touched while at least one breaker is away
//! from `Closed` (or while recording a fault, which is never the happy
//! path).

use serde::{Deserialize, Serialize};
use smat_kernels::KernelId;
use smat_matrix::StructuralFingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Upper bound on the call-counted re-probe backoff, so a chronically
/// bad variant is still re-examined within a bounded horizon.
const MAX_BACKOFF_CALLS: u64 = 65_536;

/// How many contained incidents the report retains (oldest dropped).
const INCIDENT_RING: usize = 32;

/// What kind of execution fault was contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The kernel panicked mid-call; the unwind was caught at the
    /// containment boundary.
    Panic,
    /// Output screening found a non-finite product from finite inputs.
    NonFinite,
}

/// One contained execution fault: which kernel, on which structure,
/// what happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecIncident {
    /// The kernel variant that faulted.
    pub kernel: KernelId,
    /// Structural fingerprint of the matrix being multiplied.
    pub fingerprint: StructuralFingerprint,
    /// Fault classification.
    pub kind: FaultKind,
    /// The panic payload (or a description of the screened output).
    pub payload: String,
}

/// Circuit-breaker state of one kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the variant runs normally.
    Closed,
    /// Quarantined: every call falls back to the reference path until
    /// the call-counted backoff elapses.
    Open,
    /// One guarded re-probe is in flight; concurrent calls still fall
    /// back.
    HalfOpen,
}

/// A quarantined (or probing) variant as surfaced by
/// [`HealthReport::quarantined_variants`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedVariant {
    /// The benched kernel.
    pub kernel: KernelId,
    /// Registry name of the variant (empty if unknown to this build).
    pub name: String,
    /// Current breaker state (never `Closed` in a report).
    pub state: BreakerState,
    /// Contained incidents attributed to the variant.
    pub incidents: u32,
    /// Engine call count at which the breaker half-opens for a
    /// re-probe.
    pub reopen_at: u64,
}

/// Everything the runtime knows about its own execution health, in one
/// serializable snapshot — the payload of `smat health --json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Total engine calls served (`spmv` + `spmm`).
    pub calls: u64,
    /// Single-RHS (`spmv`) calls served.
    pub spmv_calls: u64,
    /// Multi-RHS (`spmm`) calls served.
    pub spmm_calls: u64,
    /// Contained execution faults (panics + screened products).
    pub exec_faults: u64,
    /// Breakers tripped `Closed → Open`.
    pub breaker_trips: u64,
    /// Variants currently away from `Closed`.
    pub quarantined_variants: Vec<QuarantinedVariant>,
    /// Half-open (variant) and pool re-probes that readmitted.
    pub reprobe_successes: u64,
    /// Half-open (variant) and pool re-probes that faulted again.
    pub reprobe_failures: u64,
    /// Times the engine demoted itself to the serial backend after
    /// repeated pool dispatch faults.
    pub pool_demotions: u64,
    /// Whether the engine is currently serving on the serial rung.
    pub pool_demoted: bool,
    /// Cached decisions evicted because their kernel was quarantined.
    pub quarantine_evictions: u64,
    /// `prepare` calls that returned a degraded (reference-path)
    /// decision.
    pub degraded_prepares: u64,
    /// The most recent contained incidents (bounded ring, oldest
    /// first).
    pub recent_incidents: Vec<ExecIncident>,
    /// Mirror of the process-global
    /// [`smat_kernels::exec::dispatch_fault_count`]: pool chunk
    /// dispatches that faulted (worker panic transferred to the
    /// caller). Feeds the pool degradation ladder.
    pub dispatch_fault_count: u64,
    /// Mirror of [`crate::CacheStats::coalesced_waits`].
    pub coalesced_waits: u64,
    /// Mirror of [`crate::CacheStats::poison_recoveries`].
    pub poison_recoveries: u64,
    /// Mirror of [`crate::CacheStats::corrupt_evictions`].
    pub corrupt_evictions: u64,
    /// Mirror of [`crate::CacheStats::hits`].
    pub cache_hits: u64,
    /// Mirror of [`crate::CacheStats::misses`].
    pub cache_misses: u64,
}

/// What the breaker lets one call do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Breaker closed (or absent): run the tuned kernel.
    Run,
    /// This call claimed the half-open re-probe: run the tuned kernel
    /// under guard; the outcome decides readmission.
    Probe,
    /// Quarantined: serve the reference path, record nothing.
    Fallback,
}

/// Which plan the pool ladder hands the current call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PoolMode {
    /// Pool healthy: dispatch the tuned (parallel) plan.
    Normal,
    /// Demoted: substitute a serial plan.
    Demoted,
    /// This call claimed the pool re-probe: dispatch the tuned plan
    /// and report the outcome.
    Probe,
}

/// Per-variant breaker bookkeeping (behind the registry mutex).
#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    incidents: u32,
    backoff: u64,
    reopen_at: u64,
}

/// The engine's mutable health state. Interior-mutable and `Sync`:
/// counters are relaxed atomics, the breaker registry and incident
/// ring are mutexes touched only off the happy path.
#[derive(Debug)]
pub(crate) struct HealthState {
    /// Monotonic engine call clock (`spmv` + `spmm`); backoffs count in
    /// its units.
    calls: AtomicU64,
    /// Single-RHS calls, for the op-labeled metrics surface.
    spmv_calls: AtomicU64,
    /// Multi-RHS calls, for the op-labeled metrics surface.
    spmm_calls: AtomicU64,
    /// Number of breakers away from `Closed` — the happy-path gate:
    /// zero means no admission check (and no lock) is needed.
    attention: AtomicUsize,
    breakers: Mutex<HashMap<KernelId, Breaker>>,
    incidents: Mutex<Vec<ExecIncident>>,
    exec_faults: AtomicU64,
    breaker_trips: AtomicU64,
    reprobe_successes: AtomicU64,
    reprobe_failures: AtomicU64,
    quarantine_evictions: AtomicU64,
    degraded_prepares: AtomicU64,
    pool_demotions: AtomicU64,
    pool_demoted: AtomicBool,
    pool_probing: AtomicBool,
    pool_fault_streak: AtomicU32,
    pool_reprobe_at: AtomicU64,
    pool_backoff: AtomicU64,
    threshold: u32,
    backoff0: u64,
    pool_threshold: u32,
}

impl HealthState {
    pub(crate) fn new(threshold: u32, backoff_calls: u64, pool_threshold: u32) -> Self {
        Self {
            calls: AtomicU64::new(0),
            spmv_calls: AtomicU64::new(0),
            spmm_calls: AtomicU64::new(0),
            attention: AtomicUsize::new(0),
            breakers: Mutex::new(HashMap::new()),
            incidents: Mutex::new(Vec::new()),
            exec_faults: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            reprobe_successes: AtomicU64::new(0),
            reprobe_failures: AtomicU64::new(0),
            quarantine_evictions: AtomicU64::new(0),
            degraded_prepares: AtomicU64::new(0),
            pool_demotions: AtomicU64::new(0),
            pool_demoted: AtomicBool::new(false),
            pool_probing: AtomicBool::new(false),
            pool_fault_streak: AtomicU32::new(0),
            pool_reprobe_at: AtomicU64::new(0),
            pool_backoff: AtomicU64::new(backoff_calls.max(1)),
            threshold: threshold.max(1),
            backoff0: backoff_calls.max(1),
            pool_threshold: pool_threshold.max(1),
        }
    }

    /// Advances the call clock for one call of `op`; returns the
    /// current call number.
    pub(crate) fn tick(&self, op: smat_kernels::Op) -> u64 {
        match op {
            smat_kernels::Op::Spmv => self.spmv_calls.fetch_add(1, Ordering::Relaxed),
            smat_kernels::Op::Spmm => self.spmm_calls.fetch_add(1, Ordering::Relaxed),
        };
        self.calls.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// `true` while any breaker is away from `Closed`. The happy path
    /// checks this single atomic and skips every lock when it is
    /// `false`.
    pub(crate) fn needs_attention(&self) -> bool {
        self.attention.load(Ordering::Relaxed) != 0
    }

    fn lock_breakers(&self) -> std::sync::MutexGuard<'_, HashMap<KernelId, Breaker>> {
        self.breakers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Breaker admission for one call of `kernel` at clock `call`.
    pub(crate) fn admit(&self, kernel: KernelId, call: u64) -> Admission {
        if !self.needs_attention() {
            return Admission::Run;
        }
        let mut breakers = self.lock_breakers();
        match breakers.get_mut(&kernel) {
            None => Admission::Run,
            Some(b) => match b.state {
                BreakerState::Closed => Admission::Run,
                BreakerState::HalfOpen => Admission::Fallback,
                BreakerState::Open => {
                    if call >= b.reopen_at {
                        b.state = BreakerState::HalfOpen;
                        Admission::Probe
                    } else {
                        Admission::Fallback
                    }
                }
            },
        }
    }

    /// Whether `kernel` is currently quarantined (breaker away from
    /// `Closed`). Used by `prepare` to evict cached decisions and by
    /// kernel selection to substitute the reference variant.
    pub(crate) fn quarantined(&self, kernel: KernelId) -> bool {
        if !self.needs_attention() {
            return false;
        }
        self.lock_breakers()
            .get(&kernel)
            .is_some_and(|b| b.state != BreakerState::Closed)
    }

    /// Every variant currently away from `Closed` (the persisted
    /// quarantine set).
    pub(crate) fn quarantined_kernels(&self) -> Vec<KernelId> {
        if !self.needs_attention() {
            return Vec::new();
        }
        let mut list: Vec<KernelId> = self
            .lock_breakers()
            .iter()
            .filter(|(_, b)| b.state != BreakerState::Closed)
            .map(|(k, _)| *k)
            .collect();
        list.sort_by_key(|k| (k.format.index(), k.variant));
        list
    }

    /// Records a contained execution fault. `probing` marks a fault
    /// observed during a half-open re-probe. Returns `true` when the
    /// quarantine set changed (a breaker newly tripped or re-opened),
    /// so the caller can re-persist the install artifact.
    pub(crate) fn on_fault(&self, incident: ExecIncident, probing: bool, call: u64) -> bool {
        self.exec_faults.fetch_add(1, Ordering::Relaxed);
        let kernel = incident.kernel;
        {
            let mut ring = self
                .incidents
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= INCIDENT_RING {
                ring.remove(0);
            }
            ring.push(incident);
        }
        let mut breakers = self.lock_breakers();
        let b = breakers.entry(kernel).or_insert(Breaker {
            state: BreakerState::Closed,
            incidents: 0,
            backoff: self.backoff0,
            reopen_at: 0,
        });
        b.incidents = b.incidents.saturating_add(1);
        if probing || b.state == BreakerState::HalfOpen {
            // A failed re-probe re-opens with doubled (capped) backoff.
            b.state = BreakerState::Open;
            b.backoff = (b.backoff.saturating_mul(2)).min(MAX_BACKOFF_CALLS);
            b.reopen_at = call + b.backoff;
            self.reprobe_failures.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if b.state == BreakerState::Closed && b.incidents >= self.threshold {
            b.state = BreakerState::Open;
            b.backoff = self.backoff0;
            b.reopen_at = call + b.backoff;
            self.attention.fetch_add(1, Ordering::Relaxed);
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// A half-open re-probe completed cleanly: close the breaker and
    /// readmit the variant.
    pub(crate) fn on_probe_success(&self, kernel: KernelId) {
        let mut breakers = self.lock_breakers();
        if let Some(b) = breakers.get_mut(&kernel) {
            if b.state != BreakerState::Closed {
                b.state = BreakerState::Closed;
                b.incidents = 0;
                b.backoff = self.backoff0;
                self.attention.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.reprobe_successes.fetch_add(1, Ordering::Relaxed);
    }

    /// Seeds open breakers from a persisted quarantine set (install
    /// artifact adoption). Each seeded variant half-opens after one
    /// initial backoff window of this process's call clock.
    pub(crate) fn seed_quarantine(&self, kernels: &[KernelId]) {
        if kernels.is_empty() {
            return;
        }
        let mut breakers = self.lock_breakers();
        for &kernel in kernels {
            let entry = breakers.entry(kernel).or_insert(Breaker {
                state: BreakerState::Closed,
                incidents: 0,
                backoff: self.backoff0,
                reopen_at: 0,
            });
            if entry.state == BreakerState::Closed {
                entry.state = BreakerState::Open;
                entry.incidents = self.threshold;
                entry.backoff = self.backoff0;
                entry.reopen_at = self.backoff0;
                self.attention.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts a cached decision evicted because its kernel was
    /// quarantined.
    pub(crate) fn note_quarantine_eviction(&self) {
        self.quarantine_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a `prepare` call that returned a degraded decision.
    pub(crate) fn note_degraded_prepare(&self) {
        self.degraded_prepares.fetch_add(1, Ordering::Relaxed);
    }

    /// Pool-ladder gate for one call carrying a *parallel* plan.
    pub(crate) fn pool_mode(&self, call: u64) -> PoolMode {
        if !self.pool_demoted.load(Ordering::Relaxed) {
            return PoolMode::Normal;
        }
        if call >= self.pool_reprobe_at.load(Ordering::Relaxed)
            && self
                .pool_probing
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return PoolMode::Probe;
        }
        PoolMode::Demoted
    }

    /// Reports the pool-dispatch outcome of one call that went through
    /// the pool (mode `Normal` or `Probe`). `faulted` means the
    /// process-global dispatch-fault counter advanced during the call.
    pub(crate) fn pool_outcome(&self, faulted: bool, probe: bool, call: u64) {
        if probe {
            if faulted {
                let backoff = (self.pool_backoff.load(Ordering::Relaxed).saturating_mul(2))
                    .min(MAX_BACKOFF_CALLS);
                self.pool_backoff.store(backoff, Ordering::Relaxed);
                self.pool_reprobe_at
                    .store(call + backoff, Ordering::Relaxed);
                self.reprobe_failures.fetch_add(1, Ordering::Relaxed);
            } else {
                self.pool_demoted.store(false, Ordering::Relaxed);
                self.pool_fault_streak.store(0, Ordering::Relaxed);
                self.pool_backoff.store(self.backoff0, Ordering::Relaxed);
                self.reprobe_successes.fetch_add(1, Ordering::Relaxed);
            }
            self.pool_probing.store(false, Ordering::Relaxed);
            return;
        }
        if !faulted {
            self.pool_fault_streak.store(0, Ordering::Relaxed);
            return;
        }
        let streak = self.pool_fault_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.pool_threshold && !self.pool_demoted.swap(true, Ordering::Relaxed) {
            let backoff = self.backoff0;
            self.pool_backoff.store(backoff, Ordering::Relaxed);
            self.pool_reprobe_at
                .store(call + backoff, Ordering::Relaxed);
            self.pool_demotions.fetch_add(1, Ordering::Relaxed);
            self.pool_fault_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Whether the engine currently serves parallel plans serially.
    pub(crate) fn pool_is_demoted(&self) -> bool {
        self.pool_demoted.load(Ordering::Relaxed)
    }

    /// Assembles the serializable snapshot. `name_of` resolves a
    /// [`KernelId`] to its registry name for the report.
    pub(crate) fn report(&self, name_of: impl Fn(KernelId) -> String) -> HealthReport {
        let quarantined_variants: Vec<QuarantinedVariant> = {
            let breakers = self.lock_breakers();
            let mut list: Vec<QuarantinedVariant> = breakers
                .iter()
                .filter(|(_, b)| b.state != BreakerState::Closed)
                .map(|(&kernel, b)| QuarantinedVariant {
                    kernel,
                    name: name_of(kernel),
                    state: b.state,
                    incidents: b.incidents,
                    reopen_at: b.reopen_at,
                })
                .collect();
            list.sort_by_key(|q| (q.kernel.format.index(), q.kernel.variant));
            list
        };
        let recent_incidents = self
            .incidents
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        HealthReport {
            calls: self.calls.load(Ordering::Relaxed),
            spmv_calls: self.spmv_calls.load(Ordering::Relaxed),
            spmm_calls: self.spmm_calls.load(Ordering::Relaxed),
            exec_faults: self.exec_faults.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            quarantined_variants,
            reprobe_successes: self.reprobe_successes.load(Ordering::Relaxed),
            reprobe_failures: self.reprobe_failures.load(Ordering::Relaxed),
            pool_demotions: self.pool_demotions.load(Ordering::Relaxed),
            pool_demoted: self.pool_demoted.load(Ordering::Relaxed),
            quarantine_evictions: self.quarantine_evictions.load(Ordering::Relaxed),
            degraded_prepares: self.degraded_prepares.load(Ordering::Relaxed),
            recent_incidents,
            dispatch_fault_count: 0,
            coalesced_waits: 0,
            poison_recoveries: 0,
            corrupt_evictions: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

/// Renders a caught panic payload as a string (the common `&str` and
/// `String` payload types; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::Format;

    fn kid(variant: usize) -> KernelId {
        KernelId {
            op: smat_kernels::Op::Spmv,
            format: Format::Csr,
            variant,
        }
    }

    fn incident(variant: usize) -> ExecIncident {
        ExecIncident {
            kernel: kid(variant),
            fingerprint: StructuralFingerprint::of_pattern(1, 1, &[0, 1], &[0]),
            kind: FaultKind::Panic,
            payload: "boom".into(),
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_backs_off() {
        let h = HealthState::new(3, 8, 3);
        assert!(!h.needs_attention());
        assert!(!h.on_fault(incident(1), false, 1));
        assert!(!h.on_fault(incident(1), false, 2));
        // Third incident trips the breaker.
        assert!(h.on_fault(incident(1), false, 3));
        assert!(h.needs_attention());
        assert!(h.quarantined(kid(1)));
        assert_eq!(h.quarantined_kernels(), vec![kid(1)]);
        // Inside the backoff window: fallback. A different variant is
        // unaffected.
        assert_eq!(h.admit(kid(1), 5), Admission::Fallback);
        assert_eq!(h.admit(kid(2), 5), Admission::Run);
        // Past the window: exactly one call claims the probe; a racing
        // call still falls back.
        assert_eq!(h.admit(kid(1), 11), Admission::Probe);
        assert_eq!(h.admit(kid(1), 11), Admission::Fallback);
        // Failed probe doubles the backoff.
        assert!(h.on_fault(incident(1), true, 12));
        assert_eq!(h.admit(kid(1), 12 + 15), Admission::Fallback);
        assert_eq!(h.admit(kid(1), 12 + 16), Admission::Probe);
        // Successful probe closes and readmits.
        h.on_probe_success(kid(1));
        assert!(!h.quarantined(kid(1)));
        assert!(!h.needs_attention());
        assert_eq!(h.admit(kid(1), 100), Admission::Run);
        let r = h.report(|_| String::new());
        assert_eq!(r.exec_faults, 4);
        assert_eq!(r.breaker_trips, 1);
        assert_eq!(r.reprobe_failures, 1);
        assert_eq!(r.reprobe_successes, 1);
        assert!(r.quarantined_variants.is_empty());
    }

    #[test]
    fn seeded_quarantine_behaves_like_a_tripped_breaker() {
        let h = HealthState::new(3, 4, 3);
        h.seed_quarantine(&[kid(2)]);
        assert!(h.quarantined(kid(2)));
        assert_eq!(h.admit(kid(2), 1), Admission::Fallback);
        assert_eq!(h.admit(kid(2), 4), Admission::Probe);
        h.on_probe_success(kid(2));
        assert!(!h.quarantined(kid(2)));
        // Re-seeding an already-closed breaker re-opens it once.
        h.seed_quarantine(&[kid(2), kid(2)]);
        assert!(h.quarantined(kid(2)));
        assert_eq!(h.quarantined_kernels(), vec![kid(2)]);
    }

    #[test]
    fn pool_ladder_demotes_after_streak_and_reprobes() {
        let h = HealthState::new(3, 8, 3);
        assert_eq!(h.pool_mode(1), PoolMode::Normal);
        h.pool_outcome(true, false, 1);
        h.pool_outcome(true, false, 2);
        assert!(!h.pool_is_demoted());
        // A clean call resets the streak.
        h.pool_outcome(false, false, 3);
        h.pool_outcome(true, false, 4);
        h.pool_outcome(true, false, 5);
        h.pool_outcome(true, false, 6);
        assert!(h.pool_is_demoted());
        assert_eq!(h.pool_mode(7), PoolMode::Demoted);
        // Past the backoff, exactly one call probes.
        assert_eq!(h.pool_mode(14), PoolMode::Probe);
        assert_eq!(h.pool_mode(14), PoolMode::Demoted);
        // A faulted probe re-demotes with doubled backoff …
        h.pool_outcome(true, true, 14);
        assert_eq!(h.pool_mode(14 + 15), PoolMode::Demoted);
        assert_eq!(h.pool_mode(14 + 16), PoolMode::Probe);
        // … and a clean probe promotes.
        h.pool_outcome(false, true, 30);
        assert!(!h.pool_is_demoted());
        assert_eq!(h.pool_mode(31), PoolMode::Normal);
        let r = h.report(|_| String::new());
        assert_eq!(r.pool_demotions, 1);
        assert!(!r.pool_demoted);
    }

    #[test]
    fn incident_ring_is_bounded() {
        let h = HealthState::new(u32::MAX, 8, 3);
        for i in 0..(INCIDENT_RING + 10) {
            h.on_fault(incident(i % 3), false, i as u64);
        }
        let r = h.report(|_| String::new());
        assert_eq!(r.recent_incidents.len(), INCIDENT_RING);
        assert_eq!(r.exec_faults, (INCIDENT_RING + 10) as u64);
    }

    #[test]
    fn report_serializes_with_stable_keys() {
        let h = HealthState::new(1, 2, 3);
        h.on_fault(incident(1), false, 1);
        let r = h.report(|k| format!("csr_{}", k.variant));
        let json = serde_json::to_string(&r).unwrap();
        for key in [
            "calls",
            "spmv_calls",
            "spmm_calls",
            "exec_faults",
            "breaker_trips",
            "quarantined_variants",
            "reprobe_successes",
            "reprobe_failures",
            "pool_demotions",
            "pool_demoted",
            "quarantine_evictions",
            "degraded_prepares",
            "recent_incidents",
            "dispatch_fault_count",
            "coalesced_waits",
            "poison_recoveries",
            "corrupt_evictions",
            "cache_hits",
            "cache_misses",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
        assert!(json.contains("csr_1"));
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

//! The structural-fingerprint tuning cache.
//!
//! The paper's AMG application (§7.4, Table 4) re-tunes dynamically
//! generated operators whose sparsity structure recurs across setup
//! phases while values change. Every tuning input — the Table 2
//! features, the rule groups, even the execute-and-measure candidate
//! set — is a function of structure alone, so a decision computed once
//! per [`StructuralFingerprint`] can be replayed for any matrix with
//! the same pattern. A hit skips feature extraction, rule-group
//! evaluation and fallback measurement; only the (unavoidable) physical
//! conversion of the new values into the chosen format remains.
//!
//! The cache is bounded LRU with interior mutability (a [`Mutex`] map
//! plus atomic counters), which is what keeps the surrounding
//! [`crate::Smat`] engine `Send + Sync` behind a shared reference.

use crate::integrity::fnv1a64_of_debug;
use crate::runtime::DecisionPath;
use serde::{Deserialize, Serialize};
use smat_features::FeatureVector;
use smat_kernels::{ExecPlan, KernelId};
use smat_matrix::{Format, StructuralFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// A replayable multi-RHS (SpMM) pick: the winning tiled kernel and its
/// searched execution plan. Structure-only like the rest of the
/// decision — the rhs-tile width lives on the kernel's strategy bits
/// and the plan's chunk bounds depend only on the pattern, so a pick
/// computed once per fingerprint replays bit-identically for any
/// matrix sharing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CachedSpmm {
    /// The winning SpMM kernel (`op == Op::Spmm`).
    pub kernel: KernelId,
    /// The searched chunk plan for that kernel.
    pub plan: ExecPlan,
}

/// A replayable tuning decision, everything from a [`crate::TunedSpmv`]
/// except the matrix payload itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CachedDecision {
    /// The chosen storage format.
    pub format: Format,
    /// The searched kernel for that format.
    pub kernel: KernelId,
    /// Features extracted on the original miss (structure-only, so
    /// valid for every matrix sharing the fingerprint).
    pub features: FeatureVector,
    /// How the original decision was reached.
    pub source: DecisionPath,
    /// Precomputed chunk bounds for the chosen kernel. Structure-only
    /// like the features, so replayable across value changes; rebuilt
    /// on hit when stale (built for a different thread count).
    pub plan: ExecPlan,
    /// The multi-RHS pick, populated lazily by the first
    /// [`crate::Smat::spmm`] call on the structure (`None` until then,
    /// or when the format has no tiled SpMM kernels).
    pub spmm: Option<CachedSpmm>,
}

/// Hit/miss/latency counters for the tuning cache, as surfaced by
/// [`crate::Smat::cache_stats`] and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `prepare` calls answered from the cache.
    pub hits: u64,
    /// `prepare` calls that ran the full tuning pipeline.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (0 = caching disabled).
    pub capacity: usize,
    /// Total wall-clock spent in cache-hit `prepare` calls.
    pub hit_time: Duration,
    /// Total wall-clock spent in cache-miss `prepare` calls.
    pub miss_time: Duration,
    /// Entries evicted because their checksum no longer matched their
    /// contents (memory corruption / poisoning); each such lookup is
    /// answered as a miss and the matrix re-tuned.
    pub corrupt_evictions: u64,
    /// Times a poisoned cache mutex was recovered by discarding the
    /// resident entries instead of aborting the process. Non-zero means
    /// a panic unwound through a cache critical section.
    pub poison_recoveries: u64,
    /// `prepare` calls that joined an in-flight tuning run for the same
    /// fingerprint (single-flight deduplication) instead of tuning
    /// redundantly.
    pub coalesced_waits: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier`, for reporting the cache
    /// traffic of one phase (e.g. a single AMG setup).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            capacity: self.capacity,
            hit_time: self.hit_time.saturating_sub(earlier.hit_time),
            miss_time: self.miss_time.saturating_sub(earlier.miss_time),
            corrupt_evictions: self.corrupt_evictions - earlier.corrupt_evictions,
            poison_recoveries: self.poison_recoveries - earlier.poison_recoveries,
            coalesced_waits: self.coalesced_waits - earlier.coalesced_waits,
        }
    }
}

/// One resident cache entry: the decision plus the checksum taken at
/// insertion, verified on every hit.
#[derive(Debug)]
struct Slot {
    stamp: u64,
    checksum: u64,
    decision: CachedDecision,
}

/// Bounded LRU map from structural fingerprints to tuning decisions.
#[derive(Debug)]
pub(crate) struct TuningCache {
    /// fingerprint → checksummed slot. The stamp-scan eviction is
    /// O(len), fine at the small capacities tuning uses.
    map: Mutex<HashMap<StructuralFingerprint, Slot>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_nanos: AtomicU64,
    miss_nanos: AtomicU64,
    corrupt_evictions: AtomicU64,
    poison_recoveries: AtomicU64,
    coalesced_waits: AtomicU64,
}

impl TuningCache {
    /// An empty cache holding at most `capacity` decisions; 0 disables
    /// caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        TuningCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_nanos: AtomicU64::new(0),
            miss_nanos: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
        }
    }

    /// Locks the entry map, recovering from poisoning instead of
    /// propagating it.
    ///
    /// A poisoned lock means a panic unwound through a critical
    /// section, so a slot may be half-updated. Every cached decision is
    /// recomputable by re-tuning, so the safe recovery is cheap: drop
    /// all resident entries, clear the poison flag (later locks are
    /// clean again) and count the event so operators can see it in
    /// [`CacheStats::poison_recoveries`].
    fn lock_map(&self) -> MutexGuard<'_, HashMap<StructuralFingerprint, Slot>> {
        match self.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.map.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Looks up a fingerprint, refreshing its LRU stamp on hit. Does
    /// not touch the hit/miss counters — the runtime records those
    /// together with the elapsed prepare time via [`Self::record`].
    ///
    /// Every hit re-verifies the entry's checksum; an entry whose
    /// contents no longer match is evicted and the lookup answered as
    /// a miss, forcing a re-tune instead of replaying a poisoned
    /// decision.
    pub fn get(&self, key: &StructuralFingerprint) -> Option<CachedDecision> {
        if self.capacity == 0 {
            return None;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lock_map();
        let slot = map.get_mut(key)?;
        if fnv1a64_of_debug(&slot.decision) != slot.checksum {
            map.remove(key);
            self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        slot.stamp = stamp;
        Some(slot.decision.clone())
    }

    /// Inserts a decision, evicting the least-recently-used entry when
    /// full.
    pub fn insert(&self, key: StructuralFingerprint, decision: CachedDecision) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lock_map();
        // Failpoint `cache.insert` runs while the lock is held: a
        // scripted `panic` unwinds through this critical section and
        // poisons the mutex — exactly the condition `lock_map` must
        // recover from — while a scripted `fail` models an insertion
        // refusal (the decision is simply not cached).
        if let Some(_fault) = smat_failpoints::check("cache.insert") {
            return;
        }
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| *k)
            {
                map.remove(&oldest);
            }
        }
        let checksum = fnv1a64_of_debug(&decision);
        map.insert(
            key,
            Slot {
                stamp,
                checksum,
                decision,
            },
        );
    }

    /// Records the outcome and latency of one `prepare` call.
    pub fn record(&self, hit: bool, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_nanos.fetch_add(nanos, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.miss_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Counts one `prepare` call that joined an in-flight tuning run
    /// instead of tuning redundantly.
    pub fn record_coalesced_wait(&self) {
        self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.lock_map().len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
            hit_time: Duration::from_nanos(self.hit_nanos.load(Ordering::Relaxed)),
            miss_time: Duration::from_nanos(self.miss_nanos.load(Ordering::Relaxed)),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
        }
    }

    /// Removes one entry (e.g. a decision whose kernel was quarantined
    /// after it was cached); the next lookup re-tunes. Returns whether
    /// an entry was resident.
    pub fn remove(&self, key: &StructuralFingerprint) -> bool {
        self.lock_map().remove(key).is_some()
    }

    /// Drops every entry; counters are preserved.
    pub fn clear(&self) {
        self.lock_map().clear();
    }

    /// Copies out every resident entry, for persistence. Checksums are
    /// re-verified so a corrupt entry is dropped (and counted) rather
    /// than written to disk.
    pub fn snapshot(&self) -> Vec<(StructuralFingerprint, CachedDecision)> {
        let mut map = self.lock_map();
        let mut corrupt: Vec<StructuralFingerprint> = Vec::new();
        let mut out: Vec<(StructuralFingerprint, CachedDecision)> = Vec::new();
        for (key, slot) in map.iter() {
            if fnv1a64_of_debug(&slot.decision) == slot.checksum {
                out.push((*key, slot.decision.clone()));
            } else {
                corrupt.push(*key);
            }
        }
        for key in corrupt {
            map.remove(&key);
            self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
        }
        // Deterministic order for stable on-disk artifacts.
        out.sort_by_key(|(key, _)| fnv1a64_of_debug(key));
        out
    }

    /// Replays previously snapshotted entries into the cache (normal
    /// LRU insertion: capacity still applies).
    pub fn absorb(&self, entries: Vec<(StructuralFingerprint, CachedDecision)>) {
        for (key, decision) in entries {
            self.insert(key, decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_matrix::gen::{random_uniform, tridiagonal};

    fn decision(format: Format) -> CachedDecision {
        CachedDecision {
            format,
            kernel: KernelId {
                op: smat_kernels::Op::Spmv,
                format,
                variant: 0,
            },
            features: FeatureVector::from_array([1.0; 11]),
            source: DecisionPath::Predicted { confidence: 0.9 },
            plan: ExecPlan::serial(50),
            spmm: None,
        }
    }

    #[test]
    fn insert_then_get_round_trips() {
        let cache = TuningCache::new(4);
        let key = tridiagonal::<f64>(50).fingerprint();
        assert!(cache.get(&key).is_none());
        cache.insert(key, decision(Format::Dia));
        assert_eq!(cache.get(&key).unwrap().format, Format::Dia);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = TuningCache::new(0);
        let key = tridiagonal::<f64>(50).fingerprint();
        cache.insert(key, decision(Format::Dia));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = TuningCache::new(2);
        let k1 = tridiagonal::<f64>(10).fingerprint();
        let k2 = tridiagonal::<f64>(11).fingerprint();
        let k3 = tridiagonal::<f64>(12).fingerprint();
        cache.insert(k1, decision(Format::Dia));
        cache.insert(k2, decision(Format::Ell));
        // Touch k1 so k2 is now least recent.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3, decision(Format::Csr));
        assert!(cache.get(&k1).is_some(), "recently used entry survives");
        assert!(cache.get(&k2).is_none(), "LRU entry evicted");
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let cache = TuningCache::new(4);
        cache.record(false, Duration::from_micros(500));
        cache.record(true, Duration::from_micros(5));
        cache.record(true, Duration::from_micros(7));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(s.hit_time, Duration::from_micros(12));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.record(true, Duration::from_micros(1));
        let delta = cache.stats().since(&s);
        assert_eq!((delta.hits, delta.misses), (1, 0));
        assert_eq!(delta.hit_time, Duration::from_micros(1));
    }

    #[test]
    fn corrupt_entry_is_evicted_and_counted() {
        let cache = TuningCache::new(4);
        let key = tridiagonal::<f64>(60).fingerprint();
        cache.insert(key, decision(Format::Ell));
        assert!(cache.get(&key).is_some());
        // Simulate in-memory corruption: flip the stored decision
        // without refreshing its checksum.
        {
            let mut map = cache.map.lock().unwrap();
            let slot = map.get_mut(&key).unwrap();
            slot.decision.kernel.variant = 999;
        }
        assert!(cache.get(&key).is_none(), "corrupt entry must not replay");
        assert_eq!(cache.stats().corrupt_evictions, 1);
        assert_eq!(cache.stats().entries, 0, "corrupt entry is evicted");
        // The slot is reusable: a fresh insert round-trips again.
        cache.insert(key, decision(Format::Dia));
        assert_eq!(cache.get(&key).unwrap().format, Format::Dia);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_aborting() {
        let cache = std::sync::Arc::new(TuningCache::new(4));
        let key = tridiagonal::<f64>(30).fingerprint();
        cache.insert(key, decision(Format::Dia));
        // Poison the mutex: a thread panics while holding the lock.
        let poisoner = std::sync::Arc::clone(&cache);
        let joined = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap();
            panic!("poisoning the tuning cache");
        })
        .join();
        assert!(joined.is_err(), "the poisoning thread must have panicked");
        // The next access recovers: entries are dropped, the event is
        // counted, and the process does not abort.
        assert!(cache.get(&key).is_none(), "recovery drops resident entries");
        assert_eq!(cache.stats().poison_recoveries, 1);
        // The cache stays fully usable afterwards.
        cache.insert(key, decision(Format::Ell));
        assert_eq!(cache.get(&key).unwrap().format, Format::Ell);
        assert_eq!(
            cache.stats().poison_recoveries,
            1,
            "poison flag was cleared, so recovery fires once"
        );
    }

    #[test]
    fn snapshot_absorb_round_trips() {
        let cache = TuningCache::new(8);
        let k1 = tridiagonal::<f64>(20).fingerprint();
        let k2 = tridiagonal::<f64>(21).fingerprint();
        cache.insert(k1, decision(Format::Dia));
        cache.insert(k2, decision(Format::Csr));
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 2);

        let restored = TuningCache::new(8);
        restored.absorb(snap);
        assert_eq!(restored.get(&k1).unwrap().format, Format::Dia);
        assert_eq!(restored.get(&k2).unwrap().format, Format::Csr);
    }

    #[test]
    fn snapshot_drops_corrupt_entries() {
        let cache = TuningCache::new(8);
        let good = tridiagonal::<f64>(40).fingerprint();
        let bad = tridiagonal::<f64>(41).fingerprint();
        cache.insert(good, decision(Format::Dia));
        cache.insert(bad, decision(Format::Ell));
        {
            let mut map = cache.map.lock().unwrap();
            map.get_mut(&bad).unwrap().decision.kernel.variant = 999;
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 1, "corrupt entry must not be persisted");
        assert_eq!(snap[0].0, good);
        assert_eq!(cache.stats().corrupt_evictions, 1);
    }

    #[test]
    fn remove_evicts_a_single_entry() {
        let cache = TuningCache::new(4);
        let k1 = tridiagonal::<f64>(25).fingerprint();
        let k2 = tridiagonal::<f64>(26).fingerprint();
        cache.insert(k1, decision(Format::Dia));
        cache.insert(k2, decision(Format::Ell));
        assert!(cache.remove(&k1));
        assert!(!cache.remove(&k1), "already gone");
        assert!(cache.get(&k1).is_none());
        assert_eq!(cache.get(&k2).unwrap().format, Format::Ell);
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let cache = TuningCache::new(16);
        let a = random_uniform::<f64>(40, 40, 3, 1);
        let b = random_uniform::<f64>(40, 40, 3, 2);
        cache.insert(a.fingerprint(), decision(Format::Csr));
        assert!(cache.get(&b.fingerprint()).is_none());
    }
}
